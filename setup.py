"""Setup shim for environments without PEP 517 build isolation.

``pip install -e .`` needs the ``wheel`` package, which is not available
in the offline evaluation environment; ``python setup.py develop`` (or a
``.pth`` file pointing at ``src/``) achieves the same editable install.
Metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
