"""Assumption ablations run on the flit-level simulator.

Each of the paper's modelling assumptions that the simulator can toggle
gets a benchmark quantifying its effect (EXPERIMENTS.md records the
outcomes):

* assumption (iv) instantaneous ejection  → ``model_ejection=True``;
* unidirectional links (§2)              → ``bidirectional=True``;
* deterministic routing (assumption v)   → ``routing="adaptive"``;
* Poisson sources (assumption i)         → ON/OFF bursts.

These use a smaller 8x8 network so the whole group stays in benchmark
time; the effects are qualitative and scale with the 16x16 system.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import save_table
from repro.simulator import Simulation, SimulationConfig
from repro.traffic.burst import OnOffArrivals

BASE = SimulationConfig(
    k=8,
    n=2,
    message_length=16,
    rate=1.5e-3,
    hotspot_fraction=0.3,
    warmup_cycles=3_000,
    measure_cycles=40_000,
    seed=2005,
)


@pytest.mark.benchmark(group="assumptions")
def test_ejection_assumption(benchmark, results_dir):
    def compare():
        rows = []
        for rate in (5e-4, 1.5e-3, 2.2e-3):
            instant = Simulation(replace(BASE, rate=rate)).run()
            real = Simulation(
                replace(BASE, rate=rate, model_ejection=True)
            ).run()
            rows.append(
                (rate, instant.mean_latency, instant.saturated,
                 real.mean_latency, real.saturated)
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    report = "rate | instant-ejection | real-ejection-channel\n" + "\n".join(
        f"{r:.2e} | {a:.1f}{'*' if asat else ''} | {b:.1f}{'*' if bsat else ''}"
        for r, a, asat, b, bsat in rows
    ) + "\n(* = saturated)"
    save_table(results_dir, "assumption_ejection", report)
    print("\n" + report)
    # Real ejection can only slow things down.
    for _, a, asat, b, bsat in rows:
        if not (asat or bsat):
            assert b >= a - 1.0


@pytest.mark.benchmark(group="assumptions")
def test_bidirectional_extension(benchmark, results_dir):
    def compare():
        uni = Simulation(BASE).run()
        bi = Simulation(replace(BASE, bidirectional=True)).run()
        return uni, bi

    uni, bi = benchmark.pedantic(compare, rounds=1, iterations=1)
    report = (
        f"unidirectional: {uni.mean_latency:.1f} cycles, "
        f"{uni.mean_hops:.2f} mean hops\n"
        f"bidirectional : {bi.mean_latency:.1f} cycles, "
        f"{bi.mean_hops:.2f} mean hops"
    )
    save_table(results_dir, "assumption_bidirectional", report)
    print("\n" + report)
    assert bi.mean_hops < uni.mean_hops
    assert bi.mean_latency < uni.mean_latency


@pytest.mark.benchmark(group="assumptions")
def test_adaptive_comparator(benchmark, results_dir):
    def compare():
        rows = []
        for rate in (1.5e-3, 2.4e-3, 3.0e-3):
            det = Simulation(
                replace(BASE, rate=rate, num_vcs=4, hotspot_fraction=0.4)
            ).run()
            ada = Simulation(
                replace(
                    BASE,
                    rate=rate,
                    num_vcs=4,
                    hotspot_fraction=0.4,
                    routing="adaptive",
                )
            ).run()
            rows.append((rate, det, ada))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = ["rate | deterministic | adaptive"]
    for rate, det, ada in rows:
        d = "saturated" if det.saturated else f"{det.mean_latency:.1f}"
        a = "saturated" if ada.saturated else f"{ada.mean_latency:.1f}"
        lines.append(f"{rate:.2e} | {d} | {a}")
    report = "\n".join(lines)
    save_table(results_dir, "assumption_adaptive", report)
    print("\n" + report)
    # Somewhere past the deterministic knee, adaptive must still drain.
    gains = [
        (det.saturated and not ada.saturated) for _, det, ada in rows
    ]
    assert any(gains), "adaptive should outlast deterministic under hot-spots"


@pytest.mark.benchmark(group="assumptions")
def test_poisson_assumption(benchmark, results_dir):
    def compare():
        rate = 2.0e-3
        poisson = Simulation(replace(BASE, rate=rate)).run()
        bursty = Simulation(
            replace(BASE, rate=rate),
            arrival_model=OnOffArrivals(rate, burstiness=10.0, on_mean=2_000.0),
        ).run()
        return poisson, bursty

    poisson, bursty = benchmark.pedantic(compare, rounds=1, iterations=1)
    report = (
        f"Poisson : {poisson.mean_latency:.1f} cycles "
        f"(saturated={poisson.saturated})\n"
        f"ON/OFF  : {bursty.mean_latency:.1f} cycles "
        f"(saturated={bursty.saturated})"
    )
    save_table(results_dir, "assumption_poisson", report)
    print("\n" + report)
    if not (poisson.saturated or bursty.saturated):
        assert bursty.mean_latency > 0.9 * poisson.mean_latency
