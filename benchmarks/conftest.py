"""Shared benchmark fixtures: results directory and table persistence.

Each figure benchmark regenerates one panel of the paper (model +
simulation series), times it with pytest-benchmark, writes the series
table to ``benchmarks/results/<name>.txt`` and asserts the paper-shape
properties.  Run with ``pytest benchmarks/ --benchmark-only``; set
``REPRO_SIM_CYCLES`` to trade accuracy for time (default used by the
benchmarks: 60 000 measured cycles per point).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, content: str) -> None:
    (results_dir / f"{name}.txt").write_text(content + "\n")
