"""Shared benchmark fixtures: results directory and table persistence.

Each figure benchmark regenerates one panel of the paper (model +
simulation series) through the sweep engine, times it with
pytest-benchmark, writes the series table to
``benchmarks/results/<name>.txt`` and asserts the paper-shape
properties.  Run with ``pytest benchmarks/ --benchmark-only``.

Environment knobs:

* ``REPRO_SIM_CYCLES`` — measured cycles per simulation point (the
  benchmarks default to 60 000); trade accuracy for time.
* ``REPRO_JOBS`` — simulation worker processes per panel run (default
  1, the sequential path).  Results are bit-identical across values;
  only the wall-clock moves.

The on-disk sweep cache is never used here — a benchmark that reads
cached points would time the filesystem, not the simulator.
"""

import pathlib

import pytest

from repro.experiments.sweep import sim_jobs as bench_jobs  # noqa: F401 (re-export)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, content: str) -> None:
    (results_dir / f"{name}.txt").write_text(content + "\n")
