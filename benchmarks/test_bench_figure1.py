"""Benchmark: regenerate the paper's Figure 1 (Lm = 32 flits).

Three panels — h = 20%, 40%, 70% on the 256-node torus — each producing
the model-vs-simulation latency series the paper plots.  The assertions
encode the *shape* claims (not absolute numbers; see EXPERIMENTS.md):

* both curves rise monotonically and saturate within the panel's grid;
* the model tracks the simulation at light/moderate load;
* model and simulation saturation knees are within a factor ~[0.5, 2];
* panels saturate in the paper's order (h = 70% first, 20% last).
"""

import math

import pytest

from benchmarks.conftest import bench_jobs, save_table
from repro.experiments import format_panel_table, get_panel, run_panel, shape_metrics
from repro.experiments.runner import sim_measure_cycles

_SAT_KNEES = {}


def _run_and_check(benchmark, results_dir, panel_name):
    spec = get_panel(panel_name)
    measure = sim_measure_cycles(60_000)

    result = benchmark.pedantic(
        lambda: run_panel(
            spec, measure_cycles=measure, seed=2005, jobs=bench_jobs()
        ),
        rounds=1,
        iterations=1,
    )
    table = format_panel_table(result)
    metrics = shape_metrics(result)
    report = (
        f"{table}\n\n"
        f"mean relative error (light/moderate): {metrics.mean_rel_error_light:.3f}\n"
        f"mean relative error (all finite):     {metrics.mean_rel_error_all:.3f}\n"
        f"model saturation rate: {metrics.model_saturation_rate}\n"
        f"sim   saturation rate: {metrics.sim_saturation_rate}\n"
        f"saturation ratio (model/sim): {metrics.saturation_ratio}\n"
    )
    save_table(results_dir, panel_name, report)
    print("\n" + report)

    benchmark.extra_info["rel_err_light"] = metrics.mean_rel_error_light
    benchmark.extra_info["model_sat"] = metrics.model_saturation_rate
    benchmark.extra_info["sim_sat"] = metrics.sim_saturation_rate

    # --- paper-shape assertions -------------------------------------
    # Model-side claims are exact and always hold; the simulation-side
    # claims are statistical and only asserted when the measurement
    # window is long enough to mean anything (CI-sized runs with
    # REPRO_SIM_CYCLES=2000 smoke the plumbing, not the statistics).
    assert metrics.monotone_model, "model curve must be monotone"
    assert metrics.model_saturation_rate is not None, "model must saturate in grid"
    if measure >= 20_000:
        assert metrics.monotone_sim, "simulated curve must be monotone"
        if not math.isnan(metrics.mean_rel_error_light):
            assert metrics.mean_rel_error_light < 0.5, (
                "model must track simulation at light/moderate load"
            )
        if metrics.saturation_ratio is not None:
            assert 0.5 <= metrics.saturation_ratio <= 2.0
    _SAT_KNEES[panel_name] = metrics.model_saturation_rate
    return result


@pytest.mark.benchmark(group="figure1")
def test_fig1_h20(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig1_h20")


@pytest.mark.benchmark(group="figure1")
def test_fig1_h40(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig1_h40")


@pytest.mark.benchmark(group="figure1")
def test_fig1_h70(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig1_h70")


@pytest.mark.benchmark(group="figure1")
def test_fig1_saturation_ordering(benchmark, results_dir):
    """Across panels: saturation load falls as h rises (the paper's
    axes: 0.0006 -> 0.0004 -> 0.0002)."""

    def check():
        # Panels may run in any order; compute independently if needed.
        from repro.core.model import HotSpotLatencyModel

        knees = {}
        for h in (0.2, 0.4, 0.7):
            m = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=h)
            knees[h] = m.saturation_rate(hi=0.01)
        return knees

    knees = benchmark.pedantic(check, rounds=1, iterations=1)
    report = "model saturation knees, Lm=32: " + ", ".join(
        f"h={h:.0%}: {r:.6f}" for h, r in sorted(knees.items())
    )
    save_table(results_dir, "fig1_saturation_ordering", report)
    print("\n" + report)
    assert knees[0.2] > knees[0.4] > knees[0.7]
    # Paper's implied ratios from axis ends (0.0006 / 0.0004 / 0.0002):
    assert knees[0.2] / knees[0.4] == pytest.approx(0.0006 / 0.0004, rel=0.35)
    assert knees[0.2] / knees[0.7] == pytest.approx(0.0006 / 0.0002, rel=0.35)
