"""Benchmarks for the sweep engine itself.

Two timings that justify the engine's sequential-cost mechanisms:

* warm-started vs cold-started model sweep (fixed-point iterations and
  wall-clock over a dense Figure-1-style grid);
* a cached panel re-run (should be dominated by file reads, not
  simulation).

The third mechanism — parallel simulation via ``--jobs`` — is timed
through the figure benchmarks instead: run them with ``REPRO_JOBS=N``
on a multi-core host and compare against the sequential default (the
results are bit-identical; only the wall-clock moves).
"""

import numpy as np
import pytest

from repro.core.model import HotSpotLatencyModel
from repro.experiments import SweepEngine, get_panel


@pytest.mark.benchmark(group="sweep")
def test_warm_started_model_sweep(benchmark):
    """Warm starting must cut total fixed-point iterations on a dense
    Figure-1-style grid while reproducing the cold curve."""
    spec = get_panel("fig1_h20")
    model = HotSpotLatencyModel(
        k=spec.k,
        message_length=spec.message_length,
        hotspot_fraction=spec.hotspot_fraction,
        num_vcs=spec.num_vcs,
    )
    rates = [float(r) for r in np.linspace(0.08, 1.0, 32) * spec.paper_axis_max_rate]

    warm = benchmark(lambda: model.sweep(rates, warm_start=True))
    cold = model.sweep(rates, warm_start=False)

    benchmark.extra_info["warm_iterations"] = warm.total_iterations
    benchmark.extra_info["cold_iterations"] = cold.total_iterations
    assert warm.total_iterations < cold.total_iterations
    for w, c in zip(warm.points, cold.points):
        assert w.saturated == c.saturated
        if not w.saturated:
            assert w.latency == pytest.approx(c.latency, rel=1e-7)


@pytest.mark.benchmark(group="sweep")
def test_cached_panel_rerun(benchmark, tmp_path):
    """A second run of the same panel must come from the on-disk cache
    (no simulation), so it should be orders of magnitude faster."""
    spec = get_panel("fig1_h70")
    engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
    first = engine.run_panel(spec, measure_cycles=6_000, warmup_cycles=1_000)

    rerun = benchmark(
        lambda: engine.run_panel(spec, measure_cycles=6_000, warmup_cycles=1_000)
    )
    assert rerun.simulation == first.simulation
