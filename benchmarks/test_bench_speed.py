"""Throughput benchmarks: model solve speed and simulator cycle rate.

These are conventional pytest-benchmark timings (multiple rounds) of the
two engines a user pays for: one analytical evaluation at moderate load,
and flit-level simulation throughput in cycles/second (reported via
``extra_info``).

The configurations and the throughput arithmetic come from
:mod:`repro.bench` — the same timing path the ``repro bench``
subcommand records into ``BENCH_*.json`` reports — so pytest-benchmark
numbers and committed baselines are directly comparable.
"""

import pytest

from repro import bench
from repro.core.uniform import UniformLatencyModel
from repro.simulator.router import RouteTable
from repro.topology import KAryNCube


@pytest.mark.benchmark(group="speed")
def test_model_evaluate_speed(benchmark):
    model = bench.bench_model()
    result = benchmark(lambda: model.evaluate(2e-4))
    assert result.finite


@pytest.mark.benchmark(group="speed")
def test_model_saturation_search_speed(benchmark):
    from repro.core.model import HotSpotLatencyModel

    model = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.2)
    rate = benchmark.pedantic(
        lambda: model.saturation_rate(hi=0.01, tol=1e-6), rounds=3, iterations=1
    )
    assert 1e-5 < rate < 1e-2

@pytest.mark.benchmark(group="speed")
def test_uniform_model_speed(benchmark):
    model = UniformLatencyModel(k=16, n=2, message_length=32)
    result = benchmark(lambda: model.evaluate(1e-3))
    assert result.finite


@pytest.mark.benchmark(group="speed")
def test_simulator_cycle_rate(benchmark):
    cfg = bench.bench_sim_config()

    run = benchmark.pedantic(
        lambda: bench.run_sim_once(cfg), rounds=3, iterations=1
    )
    stats = bench.throughput_stats(run, benchmark.stats["mean"])
    benchmark.extra_info["cycles_per_second"] = stats["cycles_per_sec"]
    benchmark.extra_info["flits_per_second"] = stats["flits_per_sec"]
    benchmark.extra_info["engine"] = f"{run.engine}/{run.kernel}"
    benchmark.extra_info["completions"] = run.completed
    assert run.completed > 0


@pytest.mark.benchmark(group="speed")
def test_reference_engine_cycle_rate(benchmark):
    """The correctness oracle's throughput, tracked alongside the SoA
    engine so the recorded speedup ratio stays honest.  Same window as
    test_simulator_cycle_rate: per-run fixed costs amortize equally."""
    cfg = bench.bench_sim_config(engine="reference")

    run = benchmark.pedantic(
        lambda: bench.run_sim_once(cfg), rounds=3, iterations=1
    )
    stats = bench.throughput_stats(run, benchmark.stats["mean"])
    benchmark.extra_info["cycles_per_second"] = stats["cycles_per_sec"]
    assert run.completed > 0


@pytest.mark.benchmark(group="speed")
def test_route_table_throughput(benchmark):
    net = KAryNCube(k=16, n=2)
    table = RouteTable(net)
    pairs = [(s, (s * 37 + 11) % 256) for s in range(256)]
    pairs = [(s, d) for s, d in pairs if s != d]

    def route_all():
        total = 0
        for s, d in pairs:
            total += len(table.route(s, d)[0])
        return total

    total = benchmark(route_all)
    assert total > 0
