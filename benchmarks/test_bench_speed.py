"""Throughput benchmarks: model solve speed and simulator cycle rate.

These are conventional pytest-benchmark timings (multiple rounds) of the
two engines a user pays for: one analytical evaluation at moderate load,
and flit-level simulation throughput in cycles/second (reported via
``extra_info``).
"""

import pytest

from repro.core.model import HotSpotLatencyModel
from repro.core.uniform import UniformLatencyModel
from repro.simulator import Simulation, SimulationConfig
from repro.simulator.router import RouteTable
from repro.topology import KAryNCube


@pytest.mark.benchmark(group="speed")
def test_model_evaluate_speed(benchmark):
    model = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.4)
    result = benchmark(lambda: model.evaluate(2e-4))
    assert result.finite


@pytest.mark.benchmark(group="speed")
def test_model_saturation_search_speed(benchmark):
    model = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.2)
    rate = benchmark.pedantic(
        lambda: model.saturation_rate(hi=0.01, tol=1e-6), rounds=3, iterations=1
    )
    assert 1e-5 < rate < 1e-2

@pytest.mark.benchmark(group="speed")
def test_uniform_model_speed(benchmark):
    model = UniformLatencyModel(k=16, n=2, message_length=32)
    result = benchmark(lambda: model.evaluate(1e-3))
    assert result.finite


@pytest.mark.benchmark(group="speed")
def test_simulator_cycle_rate(benchmark):
    cfg = SimulationConfig(
        k=16,
        message_length=32,
        rate=3e-4,
        hotspot_fraction=0.2,
        warmup_cycles=0,
        measure_cycles=20_000,
        seed=99,
    )

    def run():
        return Simulation(cfg).run()

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    cycles_per_sec = res.cycles_run / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = cycles_per_sec
    benchmark.extra_info["completions"] = res.num_completed
    assert res.num_completed > 0


@pytest.mark.benchmark(group="speed")
def test_route_table_throughput(benchmark):
    net = KAryNCube(k=16, n=2)
    table = RouteTable(net)
    pairs = [(s, (s * 37 + 11) % 256) for s in range(256)]
    pairs = [(s, d) for s, d in pairs if s != d]

    def route_all():
        total = 0
        for s, d in pairs:
            total += len(table.route(s, d)[0])
        return total

    total = benchmark(route_all)
    assert total > 0
