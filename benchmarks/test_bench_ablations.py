"""Ablation benchmarks over the model's design choices (DESIGN.md §5).

All model-only (fast); each prints and persists the swept series:

* A — virtual-channel count;
* B — radix at fixed node-count intent;
* C — trip averaging vs the literal entrance reading;
* D — hot-spot fraction sweep at fixed load;
* E — blocking-service policy (transmission / holding / entrance);
* F — dimensionality via the n-dim extension.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.core.model import BlockingServicePolicy, HotSpotLatencyModel
from repro.core.ndim import NDimHotSpotModel
from repro.core.uniform import UniformLatencyModel


@pytest.mark.benchmark(group="ablations")
def test_vc_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for v in (2, 3, 4, 8):
            m = HotSpotLatencyModel(
                k=16, message_length=32, hotspot_fraction=0.4, num_vcs=v
            )
            rows.append((v, m.saturation_rate(hi=0.01), m.evaluate(2e-4).latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "V | saturation | latency@2e-4\n" + "\n".join(
        f"{v} | {s:.6f} | {l:.1f}" for v, s, l in rows
    )
    save_table(results_dir, "ablation_vc_sweep", report)
    print("\n" + report)
    sats = [s for _, s, _ in rows]
    # Bandwidth-bound: VCs cannot move the saturation point materially.
    assert max(sats) / min(sats) < 1.25


@pytest.mark.benchmark(group="ablations")
def test_radix_sweep(benchmark, results_dir):
    def sweep():
        rows = []
        for k in (8, 16, 32):
            m = HotSpotLatencyModel(k=k, message_length=32, hotspot_fraction=0.4)
            rows.append((k, m.saturation_rate(hi=0.05), m.evaluate(0.0).latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "k | saturation | zero-load latency\n" + "\n".join(
        f"{k} | {s:.6f} | {l:.1f}" for k, s, l in rows
    )
    save_table(results_dir, "ablation_radix_sweep", report)
    print("\n" + report)
    # Hot-sink bound ~ 1/(h k(k-1)(Lm+1)): saturation falls ~k^2.
    sat = {k: s for k, s, _ in rows}
    assert sat[8] / sat[16] == pytest.approx((16 * 15) / (8 * 7), rel=0.35)
    # Zero-load latency grows with k (longer trips).
    lat = [l for _, _, l in rows]
    assert lat[0] < lat[1] < lat[2]


@pytest.mark.benchmark(group="ablations")
def test_trip_averaging(benchmark, results_dir):
    def sweep():
        rows = []
        for rate in np.linspace(0.05e-3, 0.28e-3, 6):
            avg = HotSpotLatencyModel(
                k=16, message_length=32, hotspot_fraction=0.4, trip_averaging=True
            ).evaluate(float(rate))
            lit = HotSpotLatencyModel(
                k=16, message_length=32, hotspot_fraction=0.4, trip_averaging=False
            ).evaluate(float(rate))
            rows.append((float(rate), avg.latency, lit.latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "rate | averaged | literal-entrance\n" + "\n".join(
        f"{r:.6f} | {a:.1f} | {l:.1f}" for r, a, l in rows
    )
    save_table(results_dir, "ablation_trip_averaging", report)
    print("\n" + report)
    for _, a, l in rows:
        if np.isfinite(a) and np.isfinite(l):
            assert a < l  # literal charges the full-ring pipeline


@pytest.mark.benchmark(group="ablations")
def test_hotspot_fraction_sweep(benchmark, results_dir):
    def sweep():
        rate = 1e-4
        rows = []
        for h in (0.0, 0.1, 0.2, 0.4, 0.6, 0.8):
            if h == 0.0:
                m = UniformLatencyModel(k=16, n=2, message_length=32)
            else:
                m = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=h)
            res = m.evaluate(rate)
            rows.append((h, res.latency if res.finite else float("inf")))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "h | latency@1e-4\n" + "\n".join(
        f"{h:.1f} | {l:.1f}" for h, l in rows
    )
    save_table(results_dir, "ablation_hotspot_fraction", report)
    print("\n" + report)
    finite = [l for _, l in rows if np.isfinite(l)]
    assert all(a <= b * 1.02 for a, b in zip(finite, finite[1:])), (
        "latency must rise (weakly) with h at fixed load"
    )
    # A heavy hot-spot share multiplies latency at this fixed load
    # (h=0.8 sits just below its saturation knee of ~1.6e-4).
    assert rows[-1][1] > 2.0 * rows[0][1]


@pytest.mark.benchmark(group="ablations")
def test_blocking_policy(benchmark, results_dir):
    def sweep():
        from repro.core.fixed_point import FixedPointSolver

        rows = []
        for policy in BlockingServicePolicy:
            # A modest iteration budget: the self-referential policies
            # spend their time discovering divergence, which a few
            # hundred iterations establish just as well as 5000.
            m = HotSpotLatencyModel(
                k=16,
                message_length=32,
                hotspot_fraction=0.2,
                blocking_service=policy,
                solver=FixedPointSolver(tol=1e-8, max_iterations=400, damping=0.5),
            )
            rows.append((policy.value, m.saturation_rate(hi=0.01, tol=1e-5)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "policy | saturation rate\n" + "\n".join(
        f"{p} | {s:.6f}" for p, s in rows
    )
    save_table(results_dir, "ablation_blocking_policy", report)
    print("\n" + report)
    sat = dict(rows)
    assert sat["entrance"] <= sat["holding"] <= sat["transmission"]


@pytest.mark.benchmark(group="ablations")
def test_dimensionality(benchmark, results_dir):
    def sweep():
        rows = []
        for k, n in ((64, 1), (8, 2), (4, 3)):
            m = NDimHotSpotModel(k=k, n=n, message_length=32, hotspot_fraction=0.4)
            lo, hi = 0.0, 0.05
            for _ in range(40):
                mid = (lo + hi) / 2
                if m.evaluate(mid).saturated:
                    hi = mid
                else:
                    lo = mid
            rows.append((f"{k}^{n}", hi, m.evaluate(0.0).latency))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = "shape | saturation | zero-load latency\n" + "\n".join(
        f"{s} | {r:.6f} | {l:.1f}" for s, r, l in rows
    )
    save_table(results_dir, "ablation_dimensionality", report)
    print("\n" + report)
    assert len(rows) == 3
