"""Benchmark: regenerate the paper's Figure 2 (Lm = 100 flits).

Same three panels as Figure 1 with 100-flit messages; additionally
asserts the cross-figure claim that longer messages shrink every panel's
saturation load by ~Lm ratio (the paper's axes shrink from 0.0006 to
0.0002 at h = 20%, etc.).
"""

import math

import pytest

from benchmarks.conftest import bench_jobs, save_table
from repro.experiments import format_panel_table, get_panel, run_panel, shape_metrics
from repro.experiments.runner import sim_measure_cycles


def _run_and_check(benchmark, results_dir, panel_name):
    spec = get_panel(panel_name)
    measure = sim_measure_cycles(60_000)
    result = benchmark.pedantic(
        lambda: run_panel(
            spec, measure_cycles=measure, seed=2005, jobs=bench_jobs()
        ),
        rounds=1,
        iterations=1,
    )
    table = format_panel_table(result)
    metrics = shape_metrics(result)
    report = (
        f"{table}\n\n"
        f"mean relative error (light/moderate): {metrics.mean_rel_error_light:.3f}\n"
        f"mean relative error (all finite):     {metrics.mean_rel_error_all:.3f}\n"
        f"model saturation rate: {metrics.model_saturation_rate}\n"
        f"sim   saturation rate: {metrics.sim_saturation_rate}\n"
        f"saturation ratio (model/sim): {metrics.saturation_ratio}\n"
    )
    save_table(results_dir, panel_name, report)
    print("\n" + report)
    benchmark.extra_info["rel_err_light"] = metrics.mean_rel_error_light
    benchmark.extra_info["model_sat"] = metrics.model_saturation_rate
    benchmark.extra_info["sim_sat"] = metrics.sim_saturation_rate

    # Model-side claims always hold; simulation-side claims need a real
    # measurement window (see test_bench_figure1) — at Lm = 100 and the
    # paper's light loads a 2 000-cycle CI window completes only a
    # handful of messages.
    assert metrics.monotone_model
    assert metrics.model_saturation_rate is not None
    if measure >= 20_000:
        assert metrics.monotone_sim
        if not math.isnan(metrics.mean_rel_error_light):
            assert metrics.mean_rel_error_light < 0.5
        if metrics.saturation_ratio is not None:
            assert 0.5 <= metrics.saturation_ratio <= 2.0


@pytest.mark.benchmark(group="figure2")
def test_fig2_h20(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig2_h20")


@pytest.mark.benchmark(group="figure2")
def test_fig2_h40(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig2_h40")


@pytest.mark.benchmark(group="figure2")
def test_fig2_h70(benchmark, results_dir):
    _run_and_check(benchmark, results_dir, "fig2_h70")


@pytest.mark.benchmark(group="figure2")
def test_fig2_message_length_scaling(benchmark, results_dir):
    """Lm = 100 panels saturate ~Lm-ratio earlier than Lm = 32 ones —
    the paper's axes imply factors near 3 (0.0006/0.0002, 0.0004/0.00012,
    0.0002/0.00007)."""

    def compute():
        from repro.core.model import HotSpotLatencyModel

        ratios = {}
        for h in (0.2, 0.4, 0.7):
            s32 = HotSpotLatencyModel(
                k=16, message_length=32, hotspot_fraction=h
            ).saturation_rate(hi=0.01)
            s100 = HotSpotLatencyModel(
                k=16, message_length=100, hotspot_fraction=h
            ).saturation_rate(hi=0.01)
            ratios[h] = s32 / s100
        return ratios

    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    report = "saturation ratio Lm=32 / Lm=100: " + ", ".join(
        f"h={h:.0%}: {r:.2f}" for h, r in sorted(ratios.items())
    )
    save_table(results_dir, "fig2_message_length_scaling", report)
    print("\n" + report)
    # Bandwidth-bound scaling: (100+1)/(32+1) ~ 3.06.
    for h, r in ratios.items():
        assert r == pytest.approx(101 / 33, rel=0.25), h
