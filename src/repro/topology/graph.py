"""Graph views and structural metrics of k-ary n-cubes.

Utility layer over :class:`~repro.topology.kary_ncube.KAryNCube` used by
tests (cross-checking the closed-form hop formulas of the paper against
explicit shortest paths) and by examples that want to visualise or
inspect the network with :mod:`networkx`.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.kary_ncube import KAryNCube


def to_networkx(network: KAryNCube) -> nx.DiGraph:
    """Directed graph with one edge per physical channel.

    Edge attributes: ``dim`` (dimension index) and ``direction``.
    """
    g = nx.DiGraph(k=network.k, n=network.n, bidirectional=network.bidirectional)
    g.add_nodes_from(network.nodes())
    for ch in network.channels():
        g.add_edge(
            ch.src,
            network.channel_dst(ch),
            dim=ch.dim,
            direction=ch.direction,
        )
    return g


def diameter(network: KAryNCube) -> int:
    """Graph diameter computed exactly from the edge structure."""
    g = to_networkx(network)
    return nx.diameter(g)


def average_distance(network: KAryNCube) -> float:
    """Mean shortest-path distance over ordered pairs of distinct nodes.

    For the unidirectional network with uniform traffic this equals the
    exact mean message distance ``n(k-1)/2 * N/(N-1)``-adjusted; the
    paper's ``d = n*(k-1)/2`` (eqs 1-2) includes the possibility of a
    zero displacement per dimension but excludes the all-zero
    displacement only through the uniform-over-(N-1) destination choice.
    """
    g = to_networkx(network)
    return nx.average_shortest_path_length(g)


def bisection_channel_count(network: KAryNCube) -> int:
    """Directed channels crossing the bisection of the first dimension.

    The network is split by the first coordinate into halves
    ``v_0 < k/2`` and ``v_0 >= k/2`` (k even).  For a unidirectional
    k-ary n-cube the count is ``2 * k**(n-1)`` (one crossing at the cut
    and one at the wrap-around per ring of dimension 0), doubled again
    for bidirectional networks.
    """
    if network.k % 2:
        raise ValueError("bisection defined for even radix only")
    half = network.k // 2
    g = to_networkx(network)
    count = 0
    for u, v in g.edges():
        if (u[0] < half) != (v[0] < half):
            count += 1
    return count
