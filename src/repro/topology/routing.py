"""Deterministic dimension-order (e-cube) routing with dateline VC classes.

The paper assumes deterministic routing in which "regular and hot-spot
messages cross dimensions in a predefined order (without loss of
generality, messages cross dimension x first then y)" (assumption v) and
``V >= 2`` virtual channels per physical channel "to avoid message
deadlock in the torus due to the wrap-around channels" (assumption vi,
citing Dally & Seitz [5]).

This module computes full routes and assigns each hop the *deadlock
class* used by the simulator's virtual-channel allocator: the classic
dateline scheme, where a message travelling inside a ring uses class 0
until it crosses the wrap-around channel (the "dateline" between node
``k-1`` and node ``0``) and class 1 afterwards.  Because class numbers
only ever increase along a route within a ring and the rings of distinct
dimensions are visited in a fixed order, the channel-dependency graph is
acyclic and wormhole routing is deadlock-free (Dally & Seitz 1987).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.topology.kary_ncube import Channel, KAryNCube, Node


@dataclass(frozen=True)
class RouteHop:
    """One channel traversal of a route.

    Attributes
    ----------
    channel:
        The physical channel crossed.
    vc_class:
        Dateline deadlock class (0 before crossing the ring's wrap-around
        channel, 1 from the wrap-around hop onwards).
    """

    channel: Channel
    vc_class: int


@dataclass(frozen=True)
class Route:
    """A complete deterministic route from ``src`` to ``dst``."""

    src: Node
    dst: Node
    hops: Tuple[RouteHop, ...]

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    def channels(self) -> Tuple[Channel, ...]:
        return tuple(h.channel for h in self.hops)


def dateline_vc_class(position: int, k: int) -> int:
    """Deadlock class for the channel leaving ring position ``position``.

    The dateline sits on the wrap-around channel from node ``k-1`` to
    node ``0`` of each ring.  A message that *starts* a ring traversal at
    position ``p`` uses class 0 on channels ``p, p+1, ...`` until it
    crosses the dateline, after which it uses class 1.  This helper
    returns the class of the channel leaving ``position`` for a message
    currently in class 0; callers switch to 1 permanently (within the
    ring) after the hop from ``k-1``.
    """
    if not 0 <= position < k:
        raise ValueError(f"ring position {position} out of range [0, {k})")
    return 0


class DimensionOrderRouter:
    """Computes deterministic dimension-order routes on a k-ary n-cube.

    Dimensions are crossed in increasing index order (the paper's "x first
    then y").  On unidirectional networks every hop travels in the ``+1``
    direction; on bidirectional networks the minimal direction is chosen
    (ties broken towards ``+1``), which is the standard bidirectional
    e-cube variant.

    Examples
    --------
    >>> net = KAryNCube(k=4, n=2)
    >>> router = DimensionOrderRouter(net)
    >>> r = router.route((3, 1), (1, 2))
    >>> [h.channel.src for h in r.hops]
    [(3, 1), (0, 1), (1, 1)]
    >>> [h.vc_class for h in r.hops]
    [0, 1, 0]
    """

    def __init__(self, network: KAryNCube) -> None:
        self.network = network

    def next_dim(self, current: Node, dst: Node) -> int | None:
        """The dimension the header must route in next, or ``None`` at dst."""
        for d in range(self.network.n):
            if current[d] != dst[d]:
                return d
        return None

    def _direction(self, cur: int, dst: int) -> int:
        net = self.network
        if not net.bidirectional:
            return +1
        fwd = (dst - cur) % net.k
        bwd = (cur - dst) % net.k
        return +1 if fwd <= bwd else -1

    def route(self, src: Node, dst: Node) -> Route:
        """Full route from ``src`` to ``dst`` (empty for ``src == dst``)."""
        net = self.network
        net._check_node(src)
        net._check_node(dst)
        hops: List[RouteHop] = []
        current = src
        for dim in range(net.n):
            crossed_dateline = False
            direction = self._direction(current[dim], dst[dim])
            while current[dim] != dst[dim]:
                channel = Channel(src=current, dim=dim, direction=direction)
                vc_class = 1 if crossed_dateline else 0
                hops.append(RouteHop(channel=channel, vc_class=vc_class))
                nxt = net.neighbor(current, dim, direction)
                # Crossing the dateline: the wrap-around hop itself and all
                # later hops in this ring use class 1.
                if direction == +1 and current[dim] == net.k - 1:
                    crossed_dateline = True
                    hops[-1] = RouteHop(channel=channel, vc_class=1)
                elif direction == -1 and current[dim] == 0:
                    crossed_dateline = True
                    hops[-1] = RouteHop(channel=channel, vc_class=1)
                current = nxt
        return Route(src=src, dst=dst, hops=tuple(hops))

    def hop_count(self, src: Node, dst: Node) -> int:
        """Number of channels of the route without materialising it."""
        net = self.network
        total = 0
        for dim in range(net.n):
            fwd = (dst[dim] - src[dim]) % net.k
            if net.bidirectional:
                total += min(fwd, net.k - fwd)
            else:
                total += fwd
        return total
