"""k-ary n-cube topology, addressing and deterministic routing.

The paper studies unidirectional k-ary n-cubes (tori) with dimension-order
(e-cube) wormhole routing.  This subpackage provides:

* :class:`~repro.topology.kary_ncube.KAryNCube` — node addressing, ring
  decomposition, hop metrics and channel enumeration for uni- and
  bi-directional k-ary n-cubes.
* :mod:`~repro.topology.routing` — deterministic dimension-order route
  computation and the Dally–Seitz dateline virtual-channel classes that
  make wormhole routing deadlock-free on rings with wrap-around links.
* :mod:`~repro.topology.graph` — conversion to :mod:`networkx` digraphs
  plus structural metrics (diameter, average distance, bisection width).
"""

from repro.topology.kary_ncube import Channel, KAryNCube, Node
from repro.topology.routing import (
    DimensionOrderRouter,
    Route,
    RouteHop,
    dateline_vc_class,
)
from repro.topology.graph import (
    average_distance,
    bisection_channel_count,
    diameter,
    to_networkx,
)

__all__ = [
    "Channel",
    "KAryNCube",
    "Node",
    "DimensionOrderRouter",
    "Route",
    "RouteHop",
    "dateline_vc_class",
    "average_distance",
    "bisection_channel_count",
    "diameter",
    "to_networkx",
]
