"""The k-ary n-cube interconnection network.

A k-ary n-cube has ``N = k**n`` nodes arranged in ``n`` dimensions with
``k`` nodes per dimension (paper, §2).  Each node consists of a processing
element (PE) and a router.  In the *unidirectional* variant considered by
the paper's analysis, every node has one outgoing channel per dimension
(towards the next node modulo ``k``) plus an injection and an ejection
channel connecting the router to its PE.

Addressing follows the paper: a node is identified by its coordinate
vector ``(v_0, ..., v_{n-1})`` with ``0 <= v_i < k``.  Nodes are also given
a *rank* — the integer obtained by mixed-radix encoding of the coordinate
vector — which is what the simulator uses as a compact index.

The paper's hot-spot geometry is phrased in terms of *rings*: the network
is viewed as ``k`` rings along each dimension.  For the 2-D case the
columns are "y-rings" and the rows are "x-rings"; the y-ring containing
the hot-spot node is the *hot y-ring*.  The distance conventions of §3
("a channel is j hops away ...") are provided by
:meth:`KAryNCube.hops_to` and :meth:`KAryNCube.channel_distance`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

Node = Tuple[int, ...]


@dataclass(frozen=True)
class Channel:
    """A directed physical channel of the network.

    Attributes
    ----------
    src:
        Coordinate vector of the node owning the (outgoing) channel.
    dim:
        Dimension the channel travels along (0-based; the paper's 2-D
        analysis calls dimension 0 "x" and dimension 1 "y").
    direction:
        ``+1`` for the positive (the only one in unidirectional networks)
        and ``-1`` for the negative direction of bidirectional networks.
    """

    src: Node
    dim: int
    direction: int = +1


class KAryNCube:
    """A k-ary n-cube (torus) topology.

    Parameters
    ----------
    k:
        Radix — number of nodes per dimension (``k >= 2``).
    n:
        Number of dimensions (``n >= 1``).
    bidirectional:
        If ``True`` every dimension has channels in both directions.  The
        paper's analysis covers the unidirectional case (the default) and
        notes it "can be easily extended" to the bidirectional one.

    Examples
    --------
    >>> net = KAryNCube(k=4, n=2)
    >>> net.num_nodes
    16
    >>> net.neighbor((3, 0), dim=0)
    (0, 0)
    >>> net.hops_to((1, 1), (0, 1), dim=0)
    3
    """

    def __init__(self, k: int, n: int, *, bidirectional: bool = False) -> None:
        if k < 2:
            raise ValueError(f"radix k must be >= 2, got {k}")
        if n < 1:
            raise ValueError(f"dimension count n must be >= 1, got {n}")
        self.k = int(k)
        self.n = int(n)
        self.bidirectional = bool(bidirectional)

    # ------------------------------------------------------------------
    # Basic size properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count ``N = k**n``."""
        return self.k**self.n

    @property
    def num_channels(self) -> int:
        """Number of directed network channels (excluding injection/ejection)."""
        per_dir = self.num_nodes * self.n
        return per_dir * (2 if self.bidirectional else 1)

    @property
    def diameter(self) -> int:
        """Longest shortest-path distance between any node pair."""
        per_dim = self.k // 2 if self.bidirectional else self.k - 1
        return per_dim * self.n

    @property
    def mean_hops_per_dimension(self) -> float:
        """Average hops a uniform message makes in one dimension (eq 1).

        For the unidirectional ring the per-dimension displacement is
        uniform on ``{0, 1, ..., k-1}``, hence the mean is
        ``k̄ = (k-1)/2``.  For the bidirectional ring minimal routing
        halves the distances: ``k/4`` for even k (approximately).
        """
        k = self.k
        if not self.bidirectional:
            return sum(i for i in range(1, k)) / k
        # Minimal bidirectional distances: i -> min(i, k-i).
        return sum(min(i, k - i) for i in range(1, k)) / k

    @property
    def mean_message_hops(self) -> float:
        """Average channels crossed by a uniform (regular) message (eq 2)."""
        return self.n * self.mean_hops_per_dimension

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Iterate over all coordinate vectors in rank order."""
        return itertools.product(range(self.k), repeat=self.n)

    def rank(self, node: Node) -> int:
        """Mixed-radix encoding of a coordinate vector to ``range(N)``.

        The first coordinate is the most significant digit, so ranks
        enumerate nodes in the same order as :meth:`nodes`.
        """
        self._check_node(node)
        r = 0
        for c in node:
            r = r * self.k + c
        return r

    def unrank(self, rank: int) -> Node:
        """Inverse of :meth:`rank`."""
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} out of range [0, {self.num_nodes})")
        coords = []
        for _ in range(self.n):
            coords.append(rank % self.k)
            rank //= self.k
        return tuple(reversed(coords))

    def _check_node(self, node: Sequence[int]) -> None:
        if len(node) != self.n:
            raise ValueError(
                f"node {node!r} has {len(node)} coordinates, expected {self.n}"
            )
        for c in node:
            if not 0 <= c < self.k:
                raise ValueError(f"coordinate {c} out of range [0, {self.k})")

    # ------------------------------------------------------------------
    # Neighbourhood and channels
    # ------------------------------------------------------------------
    def neighbor(self, node: Node, dim: int, direction: int = +1) -> Node:
        """The node reached from ``node`` through its ``dim`` channel."""
        self._check_node(node)
        self._check_dim(dim)
        if direction == -1 and not self.bidirectional:
            raise ValueError("negative direction on a unidirectional network")
        if direction not in (+1, -1):
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        coords = list(node)
        coords[dim] = (coords[dim] + direction) % self.k
        return tuple(coords)

    def channel_dst(self, channel: Channel) -> Node:
        """Downstream node of a directed channel."""
        return self.neighbor(channel.src, channel.dim, channel.direction)

    def channels(self) -> Iterator[Channel]:
        """Iterate over every directed network channel."""
        dirs = (+1, -1) if self.bidirectional else (+1,)
        for node in self.nodes():
            for dim in range(self.n):
                for d in dirs:
                    yield Channel(src=node, dim=dim, direction=d)

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.n:
            raise ValueError(f"dimension {dim} out of range [0, {self.n})")

    # ------------------------------------------------------------------
    # Distances (paper §3 conventions)
    # ------------------------------------------------------------------
    def hops_to(self, src: Node, dst: Node, dim: int) -> int:
        """Unidirectional hop count from ``src`` to ``dst`` along ``dim``.

        This is the paper's "j hops away" in a given dimension:
        ``(dst_dim - src_dim) mod k``.
        """
        self._check_node(src)
        self._check_node(dst)
        self._check_dim(dim)
        return (dst[dim] - src[dim]) % self.k

    def distance(self, src: Node, dst: Node) -> int:
        """Total hop count of the deterministic (dimension-order) route."""
        return sum(self.hops_to(src, dst, d) for d in range(self.n))

    def channel_distance(self, channel: Channel, hot: Node) -> int:
        """Paper §3 distance of a channel to the hot-spot geometry.

        For a channel along the *last* dimension (the paper's y) this is
        the number of hops from the channel's source node to the hot-spot
        node along that dimension, **except** that the outgoing channel of
        the hot-spot node itself is defined to be ``k`` hops away.  For a
        channel along any earlier dimension the same convention applies to
        the distance to the *hot ring* (the hyperplane of nodes sharing
        the hot node's coordinate in that dimension).
        """
        self._check_node(hot)
        d = self.hops_to(channel.src, hot, channel.dim)
        return d if d != 0 else self.k

    def ring_of(self, node: Node, dim: int) -> Tuple[int, ...]:
        """Identifier of the ring through ``node`` along dimension ``dim``.

        A ring along dimension ``dim`` is the set of k nodes agreeing on
        every other coordinate; its identifier is that coordinate tuple.
        """
        self._check_node(node)
        self._check_dim(dim)
        return tuple(c for i, c in enumerate(node) if i != dim)

    def ring_nodes(self, ring_id: Tuple[int, ...], dim: int) -> Iterator[Node]:
        """Iterate the k nodes of the ring ``ring_id`` along ``dim``."""
        self._check_dim(dim)
        if len(ring_id) != self.n - 1:
            raise ValueError(
                f"ring id {ring_id!r} must have {self.n - 1} coordinates"
            )
        for v in range(self.k):
            coords = list(ring_id)
            coords.insert(dim, v)
            yield tuple(coords)

    def is_in_hot_ring(self, node: Node, hot: Node, dim: int) -> bool:
        """Whether ``node`` lies on the hot ring along dimension ``dim``.

        For the 2-D analysis the "hot y-ring" is the set of nodes sharing
        the hot node's x coordinate; generally, the hot ring along the
        *last* dimension consists of nodes matching the hot node in all
        dimensions except the last.
        """
        self._check_node(node)
        self._check_node(hot)
        self._check_dim(dim)
        return all(node[i] == hot[i] for i in range(self.n) if i != dim)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        tag = "bi" if self.bidirectional else "uni"
        return f"KAryNCube(k={self.k}, n={self.n}, {tag}directional)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KAryNCube):
            return NotImplemented
        return (self.k, self.n, self.bidirectional) == (
            other.k,
            other.n,
            other.bidirectional,
        )

    def __hash__(self) -> int:
        return hash((self.k, self.n, self.bidirectional))
