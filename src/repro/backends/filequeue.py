"""Crash-safe distributed sweep campaigns over a shared filesystem.

The :class:`FileQueueBackend` coordinates one sweep campaign between a
coordinator (the :class:`~repro.experiments.sweep.SweepEngine` process)
and any number of worker processes — started with ``repro worker
<campaign-dir>`` on the same host or on other hosts that share the
campaign directory (NFS and friends).  There is no network transport:
every message is a file, every handoff an atomic filesystem operation.

Campaign directory layout
-------------------------
::

    <campaign-dir>/
      meta.json            campaign header (protocol version, store path)
      queue/<unit>.json    work units awaiting claim (atomic tmp+rename)
      leases/<unit>.lease  claims: O_CREAT|O_EXCL created by one winner
      results/<unit>.json  completed payloads (atomic tmp+rename)
      heartbeats/<id>.json one per live worker, refreshed on a timer
      corrupt/             quarantined undecodable lease/result files
      logs/                stdout/stderr of coordinator-spawned workers
      stop                 drain sentinel: workers finish and exit

Protocol
--------
* **Claiming** is mutual exclusion by ``O_CREAT | O_EXCL``: exactly one
  worker's ``open`` of ``leases/<unit>.lease`` succeeds.  After winning,
  the claimer re-reads the queue file — the coordinator may have
  resolved or requeued the unit in between — and releases the lease if
  the unit vanished.  A claimer never *decodes* other leases, so a
  corrupt lease cannot crash it; the coordinator quarantines
  undecodable leases to ``corrupt/`` instead.
* **Liveness** is filesystem mtime, not wall clocks: workers refresh
  their heartbeat file and touch their held lease every
  ``heartbeat_interval``; the coordinator declares a worker dead when
  its heartbeat mtime goes stale and a lease orphaned when its mtime
  exceeds ``lease_timeout`` (plus a ``clock_skew`` allowance).  Because
  mtimes are assigned by the (shared) filesystem, skew between host
  clocks cannot expire a healthy worker's lease — the ``deadline``
  field inside the lease is advisory only.
* **Requeue** of orphaned work charges one attempt through the
  campaign's :class:`~repro.resilience.RetryPolicy` (capped exponential
  backoff, optional decorrelated jitter) and republishes the unit with
  the bumped attempt number, so fault-injection draws key afresh.  A
  unit that exhausts its budget becomes a structured
  :class:`~repro.resilience.TaskFailure` — never an exception.
* **Speculation**: a unit held past ``speculate_factor ×`` the median
  completed-unit duration gets a duplicate queue entry (own lease, same
  result path).  Results are pure functions of the configs, so
  whichever copy finishes first wins by atomic rename and the loser's
  identical payload is a no-op.
* **Determinism**: a unit computes the same points on every host, every
  attempt, every copy — campaigns with injected worker kills are
  bit-identical to clean single-process runs.

One coordinator per campaign directory at a time; workers may outlive
campaigns and serve the next one (the ``stop`` sentinel is only written
when the coordinator owns its workers, i.e. ``spawn_workers > 0``).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import statistics
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.backends.base import SweepBackend
from repro.core.results import SweepPoint
from repro.resilience import ExecutorStats, RetryPolicy, TaskFailure
from repro.simulator.config import SimulationConfig
from repro.store import atomic_write_json

__all__ = [
    "FileQueueBackend",
    "PROTOCOL_VERSION",
    "config_from_dict",
    "ensure_layout",
    "lease_path_for",
    "read_json",
    "release_lease",
    "sweep_stale",
    "try_claim",
]

#: Bump when the on-disk campaign protocol changes incompatibly.
PROTOCOL_VERSION = 1

#: Grace before an *undecodable* lease is quarantined: its writer may be
#: mid-write right now (the O_EXCL create and the payload write are two
#: steps).
UNDECODABLE_LEASE_GRACE = 2.0


# ----------------------------------------------------------------------
# Layout and shared low-level protocol helpers (coordinator + worker)
# ----------------------------------------------------------------------
def queue_dir(root: Path) -> Path:
    return Path(root) / "queue"


def leases_dir(root: Path) -> Path:
    return Path(root) / "leases"


def results_dir(root: Path) -> Path:
    return Path(root) / "results"


def heartbeats_dir(root: Path) -> Path:
    return Path(root) / "heartbeats"


def corrupt_dir(root: Path) -> Path:
    return Path(root) / "corrupt"


def logs_dir(root: Path) -> Path:
    return Path(root) / "logs"


def meta_path(root: Path) -> Path:
    return Path(root) / "meta.json"


def stop_path(root: Path) -> Path:
    return Path(root) / "stop"


def ensure_layout(root: "Path | str") -> Path:
    """Create the campaign directory skeleton (idempotent)."""
    root = Path(root)
    for d in (
        queue_dir(root),
        leases_dir(root),
        results_dir(root),
        heartbeats_dir(root),
        corrupt_dir(root),
        logs_dir(root),
    ):
        d.mkdir(parents=True, exist_ok=True)
    return root


def read_json(path: Path) -> Optional[dict]:
    """Decode a protocol file; ``None`` on any miss/corruption (never raises)."""
    try:
        raw = Path(path).read_text()
    except (OSError, UnicodeDecodeError):
        return None
    try:
        data = json.loads(raw)
    except ValueError:
        return None
    return data if isinstance(data, dict) else None


def quarantine(root: Path, path: Path, reason: str) -> None:
    """Move a corrupt protocol file to ``corrupt/`` (best-effort)."""
    try:
        dest = corrupt_dir(root)
        dest.mkdir(parents=True, exist_ok=True)
        path.replace(dest / f"{path.name}.{reason}")
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass


def lease_path_for(queue_file: Path) -> Path:
    """The lease guarding one queue entry (sibling ``leases/<stem>.lease``)."""
    queue_file = Path(queue_file)
    return leases_dir(queue_file.parent.parent) / f"{queue_file.stem}.lease"


def try_claim(lease_path: Path, payload: dict) -> bool:
    """Atomically claim a unit: ``O_CREAT | O_EXCL`` on the lease path.

    Exactly one concurrent claimer's ``open`` succeeds — the kernel (or
    the NFS server) arbitrates.  The payload (owner id, claim time,
    advisory deadline) is written just after; a claimer that dies inside
    that window leaves an undecodable lease, which expiry handling
    quarantines rather than decodes.
    """
    try:
        fd = os.open(str(lease_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    with os.fdopen(fd, "w") as fh:
        fh.write(json.dumps(payload, sort_keys=True))
        fh.flush()
        try:
            os.fsync(fh.fileno())
        except OSError:
            pass
    return True


def release_lease(lease_path: Path, worker_id: Optional[str] = None) -> bool:
    """Remove a lease, but only if ``worker_id`` still owns it.

    A worker whose lease was broken (expiry requeue, a ``lease-steal``
    fault) must not unlink the *successor's* lease when it finishes its
    now-orphaned copy of the work.  ``worker_id=None`` skips the
    ownership check (coordinator use).  Returns whether a file was
    removed; never raises.
    """
    lease_path = Path(lease_path)
    if worker_id is not None:
        payload = read_json(lease_path)
        if payload is not None and payload.get("worker") != worker_id:
            return False
    try:
        lease_path.unlink()
        return True
    except OSError:
        return False


def config_from_dict(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from its JSON form."""
    data = dict(data)
    if data.get("hotspot_node") is not None:
        data["hotspot_node"] = tuple(data["hotspot_node"])
    return SimulationConfig(**data)


def sweep_stale(
    root: "Path | str",
    *,
    lease_timeout: float = 60.0,
    heartbeat_timeout: float = 15.0,
    tmp_max_age: float = 600.0,
    now: Optional[float] = None,
) -> Dict[str, int]:
    """Startup sweep: clear debris a crashed campaign left behind.

    Mirrors the result store's ``*.tmp`` orphan sweep for the campaign
    directory: removes lease files older than ``lease_timeout`` and
    heartbeat files older than ``heartbeat_timeout`` (their owners are
    long dead), quarantines *undecodable* lease files of any age past
    the claim-write grace (a claimer that died between the ``O_EXCL``
    create and the payload write), and removes stale ``*.tmp`` orphans
    of interrupted atomic writers anywhere under the campaign.  Young
    files are left alone — they may belong to a live campaign.  Returns
    per-category removal counts; never raises.
    """
    root = Path(root)
    now = time.time() if now is None else now
    counts = {"leases": 0, "heartbeats": 0, "tmp": 0, "quarantined": 0}

    def _age(path: Path) -> Optional[float]:
        try:
            return now - path.stat().st_mtime
        except OSError:
            return None

    for lease in list(leases_dir(root).glob("*.lease")):
        age = _age(lease)
        if age is None:
            continue
        if read_json(lease) is None and age > UNDECODABLE_LEASE_GRACE:
            quarantine(root, lease, "undecodable")
            counts["quarantined"] += 1
        elif age > lease_timeout:
            try:
                lease.unlink()
                counts["leases"] += 1
            except OSError:
                pass
    for hb in list(heartbeats_dir(root).glob("*.json")):
        age = _age(hb)
        if age is not None and age > heartbeat_timeout:
            try:
                hb.unlink()
                counts["heartbeats"] += 1
            except OSError:
                pass
    for tmp in list(root.rglob("*.tmp")):
        age = _age(tmp)
        if age is not None and age > tmp_max_age:
            try:
                tmp.unlink()
                counts["tmp"] += 1
            except OSError:
                pass
    return counts


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class _Unit:
    """Coordinator-side state of one work unit."""

    uid: str
    key: Hashable
    mode: str  # "point" | "chunk"
    cfgs: List[SimulationConfig]
    attempt: int = 0  # charged attempts so far
    requeue_at: Optional[float] = None  # backoff gate for republish
    first_claim: Optional[float] = None
    speculated: bool = False
    copies: List[str] = field(default_factory=list)  # published file stems


class FileQueueBackend(SweepBackend):
    """Coordinate a campaign with file-queue workers on a shared filesystem.

    Parameters
    ----------
    campaign_dir:
        The shared campaign directory (created if missing).  One
        coordinator per directory at a time.
    spawn_workers:
        Local ``repro worker`` subprocesses to launch for the campaign
        (the jobs=N convenience case).  They are supervised — a dead
        worker is relaunched while work remains — drained via the
        ``stop`` sentinel at campaign end, and their heartbeats cleaned
        up.  ``0`` (default) expects externally provisioned workers,
        firesim-style: other hosts run ``repro worker <campaign-dir>``
        themselves and outlive the campaign.
    lease_timeout:
        Seconds a lease may go unrefreshed before the unit is requeued
        (charged).  Workers touch held leases with their heartbeat, so
        only a stalled or dead worker lets one expire.
    heartbeat_timeout:
        Seconds a worker heartbeat may go unrefreshed before the worker
        is declared dead and all its leases requeued (charged).
    poll_interval:
        Coordinator scan period (seconds).
    clock_skew:
        Extra allowance on lease expiry.  Expiry is measured against
        filesystem mtimes — already skew-free on one shared filesystem —
        so this merely widens the margin for slow metadata propagation.
    speculate_factor / speculate_min_seconds:
        A unit leased for longer than ``max(speculate_min_seconds,
        speculate_factor × median completed duration)`` gets a
        speculative duplicate; first result wins.  ``speculate_factor=None``
        disables speculation.
    wait_for_workers:
        With ``spawn_workers == 0``: raise if no worker heartbeat
        appears within this many seconds (``None`` waits forever).
    worker_heartbeat_interval / worker_poll_interval:
        Tuning forwarded to spawned workers.
    max_worker_restarts:
        Supervision budget — more respawns than this raises (a
        crash-looping fleet should fail loudly, not spin forever).
    """

    name = "file"

    def __init__(
        self,
        campaign_dir: "Path | str",
        *,
        spawn_workers: int = 0,
        lease_timeout: float = 60.0,
        heartbeat_timeout: float = 15.0,
        poll_interval: float = 0.2,
        clock_skew: float = 5.0,
        speculate_factor: Optional[float] = 6.0,
        speculate_min_seconds: float = 30.0,
        wait_for_workers: Optional[float] = None,
        worker_heartbeat_interval: Optional[float] = None,
        worker_poll_interval: Optional[float] = None,
        max_worker_restarts: int = 32,
    ) -> None:
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        if lease_timeout <= 0 or heartbeat_timeout <= 0 or poll_interval <= 0:
            raise ValueError("timeouts and poll_interval must be positive")
        self.root = Path(campaign_dir)
        self.spawn_workers = int(spawn_workers)
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.poll_interval = float(poll_interval)
        self.clock_skew = float(clock_skew)
        self.speculate_factor = speculate_factor
        self.speculate_min_seconds = float(speculate_min_seconds)
        self.wait_for_workers = wait_for_workers
        self.worker_heartbeat_interval = worker_heartbeat_interval
        self.worker_poll_interval = worker_poll_interval
        self.max_worker_restarts = int(max_worker_restarts)

    # -- unit (de)hydration --------------------------------------------
    @staticmethod
    def _split_task(args: tuple) -> Tuple[str, List[SimulationConfig]]:
        """Map an engine task-args tuple to (mode, configs)."""
        payload = args[0]
        if isinstance(payload, SimulationConfig):
            return "point", [payload]
        return "chunk", list(payload)

    def _unit_body(self, unit: _Unit) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "unit": unit.uid,
            "mode": unit.mode,
            "attempt": unit.attempt,
            "configs": [asdict(c) for c in unit.cfgs],
        }

    def _publish(
        self, unit: _Unit, stats: ExecutorStats, *, copy: str = ""
    ) -> None:
        stem = unit.uid + (f".{copy}" if copy else "")
        atomic_write_json(queue_dir(self.root) / f"{stem}.json", self._unit_body(unit))
        if stem not in unit.copies:
            unit.copies.append(stem)
        stats.submitted += 1

    def _retract(self, unit: _Unit) -> None:
        """Remove every published copy's queue file and lease (best-effort)."""
        for stem in unit.copies:
            for path in (
                queue_dir(self.root) / f"{stem}.json",
                leases_dir(self.root) / f"{stem}.lease",
            ):
                try:
                    path.unlink()
                except OSError:
                    pass
        unit.copies.clear()

    # -- spawned-worker management -------------------------------------
    def _spawn_worker(self, index: int, serial: int) -> "subprocess.Popen":
        import repro

        worker_id = f"fq-{os.getpid()}-{index}-{serial}"
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else os.pathsep.join([src_root, existing])
        )
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            str(self.root),
            "--id",
            worker_id,
            "--lease-duration",
            str(self.lease_timeout),
        ]
        if self.worker_heartbeat_interval is not None:
            cmd += ["--heartbeat", str(self.worker_heartbeat_interval)]
        if self.worker_poll_interval is not None:
            cmd += ["--poll", str(self.worker_poll_interval)]
        log = open(logs_dir(self.root) / f"{worker_id}.log", "ab")
        try:
            proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()
        proc._repro_worker_id = worker_id  # type: ignore[attr-defined]
        return proc

    # -- main coordination loop ----------------------------------------
    def run(
        self,
        fn: Callable,
        tasks: Mapping[Hashable, tuple],
        *,
        policy: RetryPolicy,
        stats: ExecutorStats,
        on_result: Optional[Callable] = None,
        on_retry: Optional[Callable] = None,
        store: Optional[object] = None,
    ) -> Tuple[Dict[Hashable, object], Dict[Hashable, TaskFailure]]:
        # ``fn`` executes on the *worker* side (the unit body names the
        # mode; workers run the engine's own point/chunk functions), so
        # it is unused here beyond having defined the task shapes.
        del fn
        ensure_layout(self.root)
        sweep_stale(
            self.root,
            lease_timeout=self.lease_timeout,
            heartbeat_timeout=self.heartbeat_timeout,
        )
        # Clear coordination debris of any previous campaign in this
        # directory (results are keyed by a campaign-unique unit id, so
        # even a straggling old worker cannot feed this campaign).
        for d in (queue_dir(self.root), results_dir(self.root)):
            for f in list(d.glob("*.json")):
                try:
                    f.unlink()
                except OSError:
                    pass
        try:
            stop_path(self.root).unlink()
        except OSError:
            pass

        # Hydrate units with campaign-unique ids.
        keys = list(tasks)
        salt_blob = json.dumps(
            [self._split_task(tasks[k])[0] for k in keys]
            + [[asdict(c) for c in self._split_task(tasks[k])[1]] for k in keys],
            sort_keys=True,
            default=str,
        )
        campaign = hashlib.sha256(salt_blob.encode()).hexdigest()[:8]
        atomic_write_json(
            meta_path(self.root),
            {
                "protocol": PROTOCOL_VERSION,
                "campaign": campaign,
                "store": str(getattr(store, "root", "")) or None,
                "created": time.time(),
            },
        )
        units: Dict[str, _Unit] = {}
        by_key: Dict[Hashable, str] = {}
        for i, key in enumerate(keys):
            mode, cfgs = self._split_task(tasks[key])
            uid = f"{campaign}-{i:05d}"
            units[uid] = _Unit(uid=uid, key=key, mode=mode, cfgs=cfgs)
            by_key[key] = uid

        results: Dict[Hashable, object] = {}
        failures: Dict[Hashable, TaskFailure] = {}
        finished: set = set()  # uids resolved (result, failure, or dropped)
        durations: List[float] = []
        procs: List[subprocess.Popen] = []
        restarts = 0
        started = time.monotonic()
        saw_worker = False

        def pending() -> List[_Unit]:
            return [u for u in units.values() if u.uid not in finished]

        def resolve(unit: _Unit) -> None:
            finished.add(unit.uid)
            self._retract(unit)
            try:
                (results_dir(self.root) / f"{unit.uid}.json").unlink()
            except OSError:
                pass

        def drop_keys(keys_to_drop) -> None:
            for key in keys_to_drop:
                uid = by_key.get(key)
                if uid is not None and uid not in finished:
                    resolve(units[uid])

        def requeue(unit: _Unit, kind: str, message: str, now: float) -> None:
            charged = unit.attempt + 1
            if kind == "lease-expired":
                stats.timeouts += 1
            if charged > policy.max_retries:
                failures[unit.key] = TaskFailure(
                    key=unit.key, kind=kind, attempts=charged, message=message
                )
                stats.failures += 1
                resolve(unit)
                return
            unit.attempt = charged
            stats.retries += 1
            if on_retry is not None:
                on_retry(unit.key, kind, charged - 1)
            self._retract(unit)
            unit.first_claim = None
            unit.speculated = False
            unit.requeue_at = now + policy.backoff(charged - 1)

        def discard_result(unit: _Unit) -> None:
            try:
                (results_dir(self.root) / f"{unit.uid}.json").unlink()
            except OSError:
                pass

        def consume_result(unit: _Unit, payload: dict) -> None:
            points = payload.get("points")
            if not isinstance(points, list) or len(points) != len(unit.cfgs):
                discard_result(unit)
                requeue(
                    unit,
                    "exception",
                    "malformed result payload",
                    time.monotonic(),
                )
                return
            try:
                pts = [
                    SweepPoint(
                        rate=float(p["rate"]),
                        latency=float(p["latency"]),
                        saturated=bool(p["saturated"]),
                    )
                    for p in points
                ]
            except (KeyError, TypeError, ValueError):
                discard_result(unit)
                requeue(
                    unit, "exception", "malformed result payload", time.monotonic()
                )
                return
            value: object = pts[0] if unit.mode == "point" else pts
            if unit.first_claim is not None:
                durations.append(time.monotonic() - unit.first_claim)
            results[unit.key] = value
            stats.completed += 1
            resolve(unit)
            if on_result is not None:
                drops = on_result(unit.key, value, unit.attempt + 1)
                if drops:
                    drop_keys(drops)

        # Initial publish + worker fleet.
        now = time.monotonic()
        for unit in units.values():
            self._publish(unit, stats)
        for i in range(self.spawn_workers):
            procs.append(self._spawn_worker(i, 0))

        try:
            while pending():
                now = time.monotonic()
                wall = time.time()

                # 1. Consume completed results (and worker-reported errors).
                for unit in pending():
                    rpath = results_dir(self.root) / f"{unit.uid}.json"
                    if not rpath.exists():
                        continue
                    payload = read_json(rpath)
                    if payload is None:
                        # Mid-rename torn read is impossible; this is a
                        # corrupt writer.  Quarantine; the unit stays
                        # pending and its lease/queue lifecycle recovers.
                        quarantine(self.root, rpath, "undecodable")
                        continue
                    if payload.get("status") == "ok":
                        consume_result(unit, payload)
                    else:
                        try:
                            rpath.unlink()
                        except OSError:
                            pass
                        release_lease(leases_dir(self.root) / f"{unit.uid}.lease")
                        requeue(
                            unit,
                            str(payload.get("kind") or "exception"),
                            str(payload.get("message") or "worker error"),
                            now,
                        )

                # 2. Dead-worker detection (stale heartbeat mtimes).
                dead_workers: set = set()
                live_workers: set = set()
                for hb in list(heartbeats_dir(self.root).glob("*.json")):
                    saw_worker = True
                    try:
                        age = wall - hb.stat().st_mtime
                    except OSError:
                        continue
                    if age > self.heartbeat_timeout:
                        dead_workers.add(hb.stem)
                        stats.pool_rebuilds += 1
                        try:
                            hb.unlink()
                        except OSError:
                            pass
                    else:
                        live_workers.add(hb.stem)

                # 3. Lease expiry / orphan requeue.
                for unit in pending():
                    if unit.uid in finished:
                        continue
                    expired: Optional[Tuple[str, str]] = None
                    claimed = False
                    for stem in list(unit.copies):
                        lease = leases_dir(self.root) / f"{stem}.lease"
                        try:
                            age = wall - lease.stat().st_mtime
                        except OSError:
                            continue
                        claimed = True
                        payload = read_json(lease)
                        if payload is None:
                            if age > UNDECODABLE_LEASE_GRACE:
                                quarantine(self.root, lease, "undecodable")
                                expired = (
                                    "lease-expired",
                                    "undecodable lease (claimer died mid-claim)",
                                )
                            continue
                        owner = str(payload.get("worker") or "")
                        if owner in dead_workers or (
                            owner
                            and owner not in live_workers
                            and age > self.heartbeat_timeout
                        ):
                            expired = (
                                "worker-dead",
                                f"worker {owner} heartbeat went stale",
                            )
                        elif age > self.lease_timeout + self.clock_skew:
                            expired = (
                                "lease-expired",
                                f"lease unrefreshed for {age:.1f}s",
                            )
                    if expired is not None:
                        requeue(unit, expired[0], expired[1], now)
                    elif claimed and unit.first_claim is None:
                        unit.first_claim = now

                # 4. Republish units whose backoff elapsed.
                for unit in pending():
                    if unit.requeue_at is not None and now >= unit.requeue_at:
                        unit.requeue_at = None
                        self._publish(unit, stats)

                # 5. Straggler speculation (first result wins).
                if self.speculate_factor is not None and durations:
                    threshold = max(
                        self.speculate_min_seconds,
                        self.speculate_factor * statistics.median(durations),
                    )
                    for unit in pending():
                        if (
                            not unit.speculated
                            and unit.first_claim is not None
                            and now - unit.first_claim > threshold
                        ):
                            unit.speculated = True
                            self._publish(unit, stats, copy="spec")

                # 6. Supervise spawned workers.
                if self.spawn_workers and pending():
                    for i, proc in enumerate(procs):
                        if proc.poll() is None:
                            continue
                        restarts += 1
                        if restarts > self.max_worker_restarts:
                            raise RuntimeError(
                                f"file-queue workers crash-looping: "
                                f"{restarts} restarts exceeded the budget "
                                f"of {self.max_worker_restarts}"
                            )
                        stats.pool_rebuilds += 1
                        procs[i] = self._spawn_worker(i, restarts)

                # 7. No-worker watchdog (externally-provisioned mode).
                if (
                    not self.spawn_workers
                    and self.wait_for_workers is not None
                    and not saw_worker
                    and now - started > self.wait_for_workers
                ):
                    raise RuntimeError(
                        f"no worker heartbeat appeared within "
                        f"{self.wait_for_workers:g}s — start workers with "
                        f"`repro worker {self.root}`"
                    )

                if pending():
                    time.sleep(self.poll_interval)
        finally:
            self._finalize(procs)
        return results, failures

    def _finalize(self, procs: List["subprocess.Popen"]) -> None:
        """Drain spawned workers and clear transient coordination state."""
        spawned_ids = [
            getattr(p, "_repro_worker_id", None) for p in procs
        ]
        if procs:
            try:
                stop_path(self.root).write_text("drain\n")
            except OSError:
                pass
            deadline = time.monotonic() + max(10.0, 2 * self.heartbeat_timeout)
            for proc in procs:
                remaining = deadline - time.monotonic()
                try:
                    proc.wait(timeout=max(0.1, remaining))
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            try:
                stop_path(self.root).unlink()
            except OSError:
                pass
        # Transient coordination state is campaign-scoped: clear it so a
        # completed campaign leaks no lease/queue/result/tmp files.
        for pattern, d in (
            ("*.json", queue_dir(self.root)),
            ("*.lease", leases_dir(self.root)),
            ("*.json", results_dir(self.root)),
        ):
            for f in list(d.glob(pattern)):
                try:
                    f.unlink()
                except OSError:
                    pass
        for tmp in list(self.root.rglob("*.tmp")):
            try:
                tmp.unlink()
            except OSError:
                pass
        for wid in spawned_ids:
            if wid:
                try:
                    (heartbeats_dir(self.root) / f"{wid}.json").unlink()
                except OSError:
                    pass
