"""The sweep-backend interface.

A :class:`SweepBackend` is the execution substrate of one sweep
campaign: the :class:`~repro.experiments.sweep.SweepEngine` hands it an
ordered mapping of *work units* (simulation points, or same-shape
chunks of points) and two streaming callbacks, and the backend runs
every unit to completion or terminal failure — however it likes:
in-process on a pool (:class:`~repro.backends.local.LocalPoolBackend`)
or cooperatively with any number of worker processes on a shared
filesystem (:class:`~repro.backends.filequeue.FileQueueBackend`).

The contract is exactly the one
:meth:`repro.resilience.ResilientExecutor.run` established — the local
backend *is* that executor, and every other backend must be
indistinguishable from it result-wise:

* retried units re-run identical configurations, so results are
  bit-identical to a fault-free run on any backend;
* ``on_result`` streams each completion (the engine checkpoints and
  caches there) and may return keys to *drop* (cancel);
* terminal failures surface as :class:`~repro.resilience.TaskFailure`
  records, never exceptions — one bad unit cannot discard a campaign.

The split is modelled on firesim's runtools run-farm layer: one
interface, a local implementation, and an externally-provisioned
implementation whose hosts merely run a worker agent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.resilience import ExecutorStats, RetryPolicy, TaskFailure

__all__ = ["SweepBackend"]


class SweepBackend(ABC):
    """Executes one campaign's work units under a retry policy."""

    #: Short selector string (``"local"``, ``"file"``) for CLI/report use.
    name: str = "backend"

    @abstractmethod
    def run(
        self,
        fn: Callable,
        tasks: Mapping[Hashable, tuple],
        *,
        policy: RetryPolicy,
        stats: ExecutorStats,
        on_result: Optional[Callable] = None,
        on_retry: Optional[Callable] = None,
        store: Optional[object] = None,
    ) -> Tuple[Dict[Hashable, object], Dict[Hashable, TaskFailure]]:
        """Run every task to completion or terminal failure.

        Parameters mirror :meth:`repro.resilience.ResilientExecutor.run`:
        ``fn(*tasks[key], attempt)`` is the unit of work, ``on_result``
        streams completions (and may return keys to drop), ``on_retry``
        observes every charged non-terminal failure, ``policy`` budgets
        retries/timeouts and ``stats`` accumulates counters.  ``store``
        is the campaign's shared :class:`~repro.store.ResultStore` (or
        ``None``): distributed backends advertise it to their workers so
        completed points are persisted at the worker, not just at the
        coordinator.

        Returns ``(results, failures)`` keyed like ``tasks``; every
        non-dropped key appears in exactly one of the two mappings.
        """
