"""The in-process backend: today's resilient pool, behind the interface.

:class:`LocalPoolBackend` wraps
:class:`~repro.resilience.ResilientExecutor` *unchanged* — the
``jobs=N`` process pool with per-attempt timeouts, capped-backoff
retries and pool rebuilds.  It is the degenerate case of the backend
split: a campaign run on it is byte-for-byte the campaign the engine
ran before backends existed.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.backends.base import SweepBackend
from repro.resilience import (
    ExecutorStats,
    ResilientExecutor,
    RetryPolicy,
    TaskFailure,
)

__all__ = ["LocalPoolBackend"]


class LocalPoolBackend(SweepBackend):
    """Run work units on a local resilient process pool.

    Parameters
    ----------
    jobs:
        Worker processes of the underlying pool.
    """

    name = "local"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def run(
        self,
        fn: Callable,
        tasks: Mapping[Hashable, tuple],
        *,
        policy: RetryPolicy,
        stats: ExecutorStats,
        on_result: Optional[Callable] = None,
        on_retry: Optional[Callable] = None,
        store: Optional[object] = None,
    ) -> Tuple[Dict[Hashable, object], Dict[Hashable, TaskFailure]]:
        # ``store`` is unused: the engine itself caches completions via
        # on_result, and pool workers share the engine's process image.
        executor = ResilientExecutor(self.jobs, policy, stats=stats)
        return executor.run(fn, tasks, on_result=on_result, on_retry=on_retry)
