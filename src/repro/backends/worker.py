"""The file-queue worker agent: ``repro worker <campaign-dir>``.

A :class:`FileQueueWorker` is the host-side half of the
:class:`~repro.backends.filequeue.FileQueueBackend` protocol.  Any
number of workers — on one host or on many hosts sharing the campaign
directory — run the same loop:

1. **Claim**: scan ``queue/`` in sorted order, skip entries whose lease
   exists, and try to create ``leases/<unit>.lease`` with
   ``O_CREAT | O_EXCL``; exactly one contender wins.  After winning,
   re-read the queue file — it is authoritative for the attempt number
   and may have been retracted by the coordinator in between — and
   release the lease if the unit vanished.
2. **Compute**: run the unit's configurations through the engine's own
   point/chunk functions (:func:`~repro.experiments.sweep._simulate_point`
   / ``_simulate_chunk``), so a distributed point is bit-identical to a
   local one.
3. **Persist**: write each completed point to the campaign's shared
   :class:`~repro.store.ResultStore` (if ``meta.json`` names one), then
   publish ``results/<unit>.json`` with an atomic tmp+rename — *before*
   releasing the lease, so there is no window where a unit is neither
   leased nor resolved.
4. **Release**: delete the lease only if this worker still owns it (the
   coordinator may have broken it; a ``lease-steal`` fault certainly
   has).

A heartbeat thread refreshes ``heartbeats/<id>.json`` and touches the
held lease every ``heartbeat_interval`` seconds; the coordinator reads
both files' mtimes for liveness, so a stalled worker (heartbeat thread
blocked) loses its lease and its work is requeued elsewhere.

``SIGTERM`` drains gracefully: the worker finishes the unit it is
computing, publishes the result, releases any lease it claimed but has
not started, removes its heartbeat file, and exits 0.  The coordinator's
``stop`` sentinel file drains the same way.

Fault injection (``REPRO_FAULTS``): the ``worker-kill``,
``heartbeat-stall`` and ``lease-steal`` kinds fire here, keyed on the
unit's first per-point seed and the attempt number — the same
deterministic SHA-256 draw scheme as the pool-worker ``crash``/``hang``
kinds, and like them gated so they only fire in a real ``repro worker``
process (:func:`repro.faults.mark_worker_process`), never inside a test
harness running the worker in-process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import uuid
from pathlib import Path
from typing import List, Optional, Tuple

from repro import faults
from repro.backends.filequeue import (
    PROTOCOL_VERSION,
    config_from_dict,
    ensure_layout,
    heartbeats_dir,
    lease_path_for,
    leases_dir,
    meta_path,
    queue_dir,
    read_json,
    release_lease,
    results_dir,
    stop_path,
    try_claim,
)
from repro.store import ResultStore, atomic_write_json

__all__ = ["FileQueueWorker"]


class _Heartbeat(threading.Thread):
    """Refresh the worker's heartbeat file and touch its held lease."""

    def __init__(self, worker: "FileQueueWorker", interval: float) -> None:
        super().__init__(name=f"heartbeat-{worker.worker_id}", daemon=True)
        self.worker = worker
        self.interval = interval
        self._wake = threading.Event()
        self._done = False
        self.suspended = False  # heartbeat-stall fault flips this
        self._seq = 0

    def beat(self) -> None:
        if self.suspended:
            return
        self._seq += 1
        atomic_write_json(
            self.worker.heartbeat_path,
            {
                "protocol": PROTOCOL_VERSION,
                "worker": self.worker.worker_id,
                "pid": os.getpid(),
                "seq": self._seq,
                "time": time.time(),
            },
        )
        lease = self.worker.held_lease
        if lease is not None:
            try:
                os.utime(lease)
            except OSError:
                pass  # lease was broken; the claim loop finds out later

    def run(self) -> None:
        while not self._done:
            try:
                self.beat()
            except OSError:
                pass
            self._wake.wait(self.interval)
            self._wake.clear()

    def stop(self) -> None:
        self._done = True
        self._wake.set()


class FileQueueWorker:
    """One worker process of a file-queue campaign.

    Parameters
    ----------
    campaign_dir:
        The shared campaign directory.
    worker_id:
        Stable identity used in lease/heartbeat files; generated when
        omitted.
    poll_interval:
        Sleep between queue scans when no work is claimable.
    heartbeat_interval:
        Heartbeat/lease refresh period.  Must comfortably undercut the
        coordinator's ``heartbeat_timeout`` and ``lease_timeout``.
    lease_duration:
        Advisory lease lifetime written into the lease payload
        (liveness is judged by lease mtime, which the heartbeat
        refreshes — see the filequeue module docstring).
    once:
        Exit after the queue is drained instead of idling for more work
        (the coordinator's ``stop`` sentinel also ends the loop).
    """

    def __init__(
        self,
        campaign_dir: "Path | str",
        *,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        heartbeat_interval: float = 5.0,
        lease_duration: float = 60.0,
        once: bool = False,
    ) -> None:
        if poll_interval <= 0 or heartbeat_interval <= 0 or lease_duration <= 0:
            raise ValueError("worker intervals must be positive")
        self.root = ensure_layout(campaign_dir)
        self.worker_id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.poll_interval = float(poll_interval)
        self.heartbeat_interval = float(heartbeat_interval)
        self.lease_duration = float(lease_duration)
        self.once = bool(once)
        self.heartbeat_path = heartbeats_dir(self.root) / f"{self.worker_id}.json"
        self.held_lease: Optional[Path] = None
        self.units_done = 0
        self._stop = False
        self._store: Optional[ResultStore] = None
        self._heartbeat: Optional[_Heartbeat] = None

    # -- lifecycle ------------------------------------------------------
    def request_stop(self, *_args: object) -> None:
        """SIGTERM handler: finish the current unit, then drain."""
        self._stop = True

    def _draining(self) -> bool:
        return self._stop or stop_path(self.root).exists()

    def _campaign_store(self) -> Optional[ResultStore]:
        """The shared result store named by ``meta.json`` (re-checked
        until one appears, so a worker may start before the coordinator)."""
        if self._store is None:
            meta = read_json(meta_path(self.root))
            store_root = (meta or {}).get("store")
            if store_root:
                self._store = ResultStore(store_root)
        return self._store

    # -- claim ----------------------------------------------------------
    def _claim_next(self) -> Optional[Tuple[Path, dict, Path]]:
        """Claim one queue entry; ``(queue_file, body, lease)`` or ``None``.

        Never decodes other workers' leases (a corrupt lease cannot
        crash the claimer — the coordinator quarantines it); loses the
        ``O_EXCL`` race silently and moves to the next entry.
        """
        for queue_file in sorted(queue_dir(self.root).glob("*.json")):
            lease = lease_path_for(queue_file)
            if lease.exists():
                continue
            body = read_json(queue_file)
            if body is None or body.get("protocol") != PROTOCOL_VERSION:
                continue  # mid-publish, retracted, or foreign protocol
            now = time.time()
            claimed = try_claim(
                lease,
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "unit": body.get("unit"),
                    "claimed_at": now,
                    # Advisory only: expiry is judged by lease *mtime*
                    # on the shared filesystem, so host clock skew
                    # cannot break a healthy worker's lease.
                    "deadline": now + self.lease_duration,
                },
            )
            if not claimed:
                continue
            # The queue file is authoritative (attempt number may have
            # been bumped, or the unit retracted, since we read it).
            fresh = read_json(queue_file)
            if fresh is None or fresh.get("protocol") != PROTOCOL_VERSION:
                release_lease(lease, self.worker_id)
                continue
            return queue_file, fresh, lease
        return None

    # -- compute --------------------------------------------------------
    def _run_unit(self, body: dict) -> dict:
        """Execute one unit body; returns the result-file payload."""
        # Lazy import: the engine module imports the backends package.
        from repro.experiments.sweep import _simulate_chunk, _simulate_point

        uid = str(body.get("unit"))
        attempt = int(body.get("attempt", 0))
        mode = body.get("mode")
        try:
            cfgs = [config_from_dict(c) for c in body.get("configs", [])]
            if not cfgs or mode not in ("point", "chunk"):
                raise ValueError(f"malformed unit body for {uid!r}")
            fault_key = cfgs[0].seed
            faults.maybe_worker_kill(fault_key, attempt)
            self._maybe_steal_lease(fault_key, attempt)
            self._maybe_stall(fault_key, attempt)
            if mode == "point":
                points = [_simulate_point(cfgs[0], attempt)]
            else:
                points = _simulate_chunk(cfgs, attempt)
            store = self._campaign_store()
            if store is not None:
                for cfg, point in zip(cfgs, points):
                    store.put(cfg, point)
            return {
                "protocol": PROTOCOL_VERSION,
                "unit": uid,
                "attempt": attempt,
                "worker": self.worker_id,
                "status": "ok",
                "points": [
                    {
                        "rate": p.rate,
                        "latency": p.latency,
                        "saturated": p.saturated,
                    }
                    for p in points
                ],
            }
        except Exception as exc:  # noqa: BLE001 - reported, never raised
            return {
                "protocol": PROTOCOL_VERSION,
                "unit": uid,
                "attempt": attempt,
                "worker": self.worker_id,
                "status": "error",
                "kind": "exception",
                "message": f"{type(exc).__name__}: {exc}",
            }

    # -- fault hooks ----------------------------------------------------
    def _maybe_stall(self, fault_key: object, attempt: int) -> None:
        """``heartbeat-stall``: freeze heartbeat + lease refresh, then sleep.

        The lease goes unrefreshed for ``secs``, so a stall longer than
        the coordinator's timeouts loses the work to requeue — exactly
        the "stalls without crashing" failure mode.
        """
        secs = faults.heartbeat_stall_secs(fault_key, attempt)
        if secs is None or self._heartbeat is None:
            return
        self._heartbeat.suspended = True
        try:
            time.sleep(secs)
        finally:
            self._heartbeat.suspended = False

    def _maybe_steal_lease(self, fault_key: object, attempt: int) -> None:
        """``lease-steal``: delete another worker's lease file.

        Simulates a hostile/byzantine peer breaking a claim.  The victim
        finishes its copy anyway; determinism makes both payloads
        identical and first-result-wins resolves the duplicate.
        """
        if not faults.lease_steal_triggers(fault_key, attempt):
            return
        for lease in sorted(leases_dir(self.root).glob("*.lease")):
            payload = read_json(lease)
            if payload is not None and payload.get("worker") == self.worker_id:
                continue  # never steal from ourselves
            try:
                lease.unlink()
            except OSError:
                continue
            return

    # -- main loop ------------------------------------------------------
    def run(self, max_units: Optional[int] = None) -> int:
        """Serve the campaign until drained/stopped; returns units done."""
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, self.request_stop)
        self._heartbeat = _Heartbeat(self, self.heartbeat_interval)
        self._heartbeat.beat()
        self._heartbeat.start()
        try:
            while not self._draining():
                if max_units is not None and self.units_done >= max_units:
                    break
                claim = self._claim_next()
                if claim is None:
                    if self.once:
                        break
                    time.sleep(self.poll_interval)
                    continue
                queue_file, body, lease = claim
                if self._draining():
                    # Claimed but not started: release, don't compute.
                    release_lease(lease, self.worker_id)
                    break
                self.held_lease = lease
                try:
                    result = self._run_unit(body)
                    # Publish the result *before* releasing the lease:
                    # there is never a moment where the unit is neither
                    # leased nor resolved.
                    atomic_write_json(
                        results_dir(self.root) / f"{body['unit']}.json", result
                    )
                finally:
                    self.held_lease = None
                release_lease(lease, self.worker_id)
                try:
                    queue_file.unlink()
                except OSError:
                    pass  # coordinator retracted it first
                self.units_done += 1
        finally:
            self._heartbeat.stop()
            self._heartbeat.join(timeout=2.0)
            try:
                self.heartbeat_path.unlink()  # deregister
            except OSError:
                pass
        return self.units_done
