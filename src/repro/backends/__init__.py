"""Sweep execution backends (see :mod:`repro.backends.base`).

``resolve_backend`` maps user-facing selector strings to instances:

* ``"local"`` — the in-process :class:`LocalPoolBackend` (default).
* ``"file:<campaign-dir>"`` — a :class:`FileQueueBackend` coordinating
  externally started ``repro worker`` processes on a shared filesystem.

The environment variable ``REPRO_BACKEND`` supplies the default
selector when the engine is constructed without an explicit backend.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.backends.base import SweepBackend
from repro.backends.filequeue import FileQueueBackend
from repro.backends.local import LocalPoolBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "FileQueueBackend",
    "LocalPoolBackend",
    "SweepBackend",
    "resolve_backend",
]

BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(
    selector: Optional[Union[str, SweepBackend]] = None, *, jobs: int = 1
) -> SweepBackend:
    """Build a backend from a selector string, instance, or the environment.

    ``None`` consults ``$REPRO_BACKEND`` and falls back to ``"local"``.
    ``jobs`` sizes the local pool (ignored by distributed backends,
    whose parallelism is however many workers join the campaign).
    """
    if isinstance(selector, SweepBackend):
        return selector
    if selector is None:
        selector = os.environ.get(BACKEND_ENV_VAR, "").strip() or "local"
    name, _, arg = selector.partition(":")
    name = name.strip().lower()
    if name == "local":
        if arg:
            raise ValueError(
                f"backend selector {selector!r}: 'local' takes no argument"
            )
        return LocalPoolBackend(jobs=jobs)
    if name == "file":
        if not arg:
            raise ValueError(
                f"backend selector {selector!r}: expected 'file:<campaign-dir>'"
            )
        return FileQueueBackend(arg)
    raise ValueError(
        f"unknown sweep backend {name!r} (expected 'local' or 'file:<dir>')"
    )
