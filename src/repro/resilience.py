"""Fault-tolerant execution primitives for long sweep campaigns.

The sweep engine fans thousands of simulation points out over a
:class:`~concurrent.futures.ProcessPoolExecutor`; at atlas scale a
campaign *will* see worker death, hangs and interrupted runs.  This
module is the resilience layer underneath
:class:`~repro.experiments.sweep.SweepEngine`:

:class:`RetryPolicy`
    Per-point wall-clock timeout plus capped exponential backoff
    retries.  Retries are deterministic by construction: a retried
    point re-runs the *same* configuration (including its SHA-256
    per-point seed), so a campaign that suffered faults produces
    bit-identical points to a fault-free run.

:class:`ResilientExecutor`
    A windowed wrapper around ``ProcessPoolExecutor`` that survives
    worker crashes (``BrokenProcessPool`` rebuilds the pool and resubmits
    only the unfinished tasks), enforces per-attempt timeouts (a hung
    worker is terminated and its pool rebuilt), retries failed attempts
    under the policy, and converts terminal failures into structured
    :class:`TaskFailure` records instead of propagating — one bad point
    never discards a panel's completed points.

:class:`CheckpointJournal`
    An append-only JSONL journal of per-point status (done / failed /
    retried, config hash, failure taxonomy) written next to the sweep
    cache.  An interrupted campaign resumed from its journal skips every
    checkpointed point — even with the result cache disabled.

Everything here is dependency-free (stdlib only) so it can be imported
from any layer, including pool workers.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

__all__ = [
    "CheckpointJournal",
    "ExecutorStats",
    "PointFailure",
    "ResilientExecutor",
    "RetryPolicy",
    "TaskFailure",
]

#: Failure taxonomy recorded on :class:`TaskFailure` / :class:`PointFailure`
#: and in the checkpoint journal.  ``lease-expired`` and ``worker-dead``
#: are charged by the distributed file-queue backend when orphaned work
#: is requeued (see :mod:`repro.backends.filequeue`).
FAILURE_KINDS = (
    "timeout",
    "worker-crash",
    "exception",
    "lease-expired",
    "worker-dead",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff parameters for one campaign.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first (``0`` disables retries).
    point_timeout:
        Wall-clock seconds allowed per attempt, measured from
        submission to a worker; ``None`` disables the deadline.  A
        timed-out attempt's worker is presumed hung and terminated.
    backoff_base / backoff_cap:
        Attempt ``n`` (0-based) sleeps ``min(cap, base * 2**n)`` seconds
        before its retry — capped exponential, jitter-free by default so
        campaign wall-clock is reproducible.
    jitter:
        When enabled, :meth:`backoff` draws a decorrelated delay
        uniformly from ``[base, min(cap, 3 × plain))`` instead of the
        fixed exponential — this de-synchronises resubmission when many
        distributed workers requeue leases after a mass expiry
        (thundering herd).  Off by default: deterministic chaos replay
        depends on jitter-free backoff.
    """

    max_retries: int = 2
    point_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive, got {self.point_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based).

        Deterministic capped exponential by default; with
        ``jitter=True``, a decorrelated draw from ``[base, min(cap,
        3 × plain))`` so simultaneous requeuers spread out.
        """
        plain = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        if not self.jitter:
            return plain
        import random

        high = min(self.backoff_cap, 3.0 * plain)
        if high <= self.backoff_base:
            return plain
        return random.uniform(self.backoff_base, high)


@dataclass
class ExecutorStats:
    """Counters accumulated by a campaign (exposed on ``SweepEngine.stats``)."""

    submitted: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "failures": self.failures,
        }

    @property
    def eventful(self) -> bool:
        """Anything worth reporting happened (retry/timeout/rebuild/failure)."""
        return bool(
            self.retries or self.timeouts or self.pool_rebuilds or self.failures
        )


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one executor task (all attempts exhausted)."""

    key: Hashable
    kind: str  # one of FAILURE_KINDS
    attempts: int
    message: str = ""


@dataclass(frozen=True)
class PointFailure:
    """Terminal failure of one sweep point, attached to ``SweepResult``.

    ``kind`` is the failure taxonomy (:data:`FAILURE_KINDS`): ``timeout``
    (every attempt exceeded the per-point deadline), ``worker-crash``
    (the point was in flight each time its pool died) or ``exception``
    (the point itself raised).  ``attempts`` counts attempts charged to
    the point, including ones where it was merely a crash victim.
    """

    panel: str
    index: int
    rate: float
    kind: str
    attempts: int
    message: str = ""


class ResilientExecutor:
    """Process-pool runner that survives crashes, hangs and exceptions.

    Tasks are submitted in a sliding window of at most ``jobs`` in-flight
    futures (so per-attempt deadlines measure actual execution, not queue
    time).  The pool is rebuilt whenever it breaks (a worker died) or an
    attempt exceeds ``policy.point_timeout`` (the hung worker is
    terminated); unfinished tasks are resubmitted, completed results are
    never recomputed.  A worker crash cannot be attributed to a single
    task, so every in-flight task is charged an attempt; innocent
    victims of a *timeout* rebuild are resubmitted free of charge.
    """

    def __init__(
        self,
        jobs: int,
        policy: Optional[RetryPolicy] = None,
        *,
        stats: Optional[ExecutorStats] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats if stats is not None else ExecutorStats()

    # ------------------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # already dead / not startable
                pass

    def _abandon_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Kill a broken/hung pool's workers and hand back a fresh pool."""
        self.stats.pool_rebuilds += 1
        self._terminate_workers(pool)
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        return self._new_pool()

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable,
        tasks: Mapping[Hashable, tuple],
        *,
        on_result: Optional[Callable] = None,
        on_retry: Optional[Callable] = None,
    ) -> Tuple[Dict[Hashable, object], Dict[Hashable, TaskFailure]]:
        """Run every task to completion or terminal failure.

        Parameters
        ----------
        fn:
            Picklable callable, invoked in a worker as
            ``fn(*tasks[key], attempt)`` — the 0-based attempt number is
            appended so deterministic fault injection can key on it.
        tasks:
            Ordered mapping ``key -> args tuple``.
        on_result:
            ``on_result(key, value, attempts)`` called as soon as each
            task completes (checkpoint/cache as you go).  It may return
            an iterable of keys to *drop*: dropped tasks are removed
            from the queue, never retried, and their eventual results
            ignored — how the sweep engine cancels points past a
            panel's first saturated rate.
        on_retry:
            ``on_retry(key, kind, attempt)`` called for every
            non-terminal failed attempt (``kind`` from
            :data:`FAILURE_KINDS`).

        Returns
        -------
        ``(results, failures)`` keyed like ``tasks``.  Every non-dropped
        key appears in exactly one of the two mappings.
        """
        results: Dict[Hashable, object] = {}
        failures: Dict[Hashable, TaskFailure] = {}
        queue = deque(tasks)
        attempts: Dict[Hashable, int] = {k: 0 for k in tasks}
        dropped: set = set()
        in_flight: Dict[object, Hashable] = {}
        deadlines: Dict[object, float] = {}
        pool = self._new_pool()
        rebuild_round = 0  # consecutive rebuilds, for the backoff delay

        def fail_or_requeue(key: Hashable, kind: str, message: str) -> bool:
            """Charge an attempt; terminal-fail or requeue.  True if terminal."""
            attempts[key] += 1
            if attempts[key] > self.policy.max_retries:
                failures[key] = TaskFailure(
                    key=key, kind=kind, attempts=attempts[key], message=message
                )
                self.stats.failures += 1
                return True
            self.stats.retries += 1
            if on_retry is not None:
                on_retry(key, kind, attempts[key] - 1)
            queue.append(key)
            return False

        def handle_success(key: Hashable, value: object) -> None:
            nonlocal rebuild_round
            rebuild_round = 0
            results[key] = value
            self.stats.completed += 1
            if on_result is not None:
                drops = on_result(key, value, attempts[key] + 1)
                if drops:
                    dropped.update(drops)

        try:
            while True:
                pending_live = any(k not in dropped for k in queue) or any(
                    k not in dropped for k in in_flight.values()
                )
                if not pending_live:
                    break

                # Top up the in-flight window.
                while queue and len(in_flight) < self.jobs:
                    key = queue.popleft()
                    if key in dropped:
                        continue
                    try:
                        future = pool.submit(fn, *tasks[key], attempts[key])
                    except (BrokenExecutor, RuntimeError):
                        # Pool died between completions: put the task back
                        # and fall through to the broken-pool handling.
                        queue.appendleft(key)
                        pool = self._on_pool_broken(
                            pool, in_flight, deadlines, queue, fail_or_requeue
                        )
                        rebuild_round += 1
                        time.sleep(self.policy.backoff(rebuild_round - 1))
                        continue
                    self.stats.submitted += 1
                    in_flight[future] = key
                    if self.policy.point_timeout is not None:
                        deadlines[future] = (
                            time.monotonic() + self.policy.point_timeout
                        )
                if not in_flight:
                    continue

                timeout = None
                if deadlines:
                    timeout = max(0.0, min(deadlines.values()) - time.monotonic())
                done, _ = wait(
                    list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                broken = False
                for future in done:
                    key = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        value = future.result()
                    except BrokenExecutor:
                        broken = True
                        if key not in dropped:
                            fail_or_requeue(
                                key, "worker-crash", "process pool broke"
                            )
                        continue
                    except BaseException as exc:  # noqa: BLE001 — taxonomy'd below
                        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                            raise
                        if key not in dropped:
                            terminal = fail_or_requeue(
                                key,
                                "exception",
                                f"{type(exc).__name__}: {exc}",
                            )
                            if not terminal:
                                time.sleep(
                                    self.policy.backoff(attempts[key] - 1)
                                )
                        continue
                    if key not in dropped:
                        handle_success(key, value)

                if broken:
                    pool = self._on_pool_broken(
                        pool, in_flight, deadlines, queue, fail_or_requeue
                    )
                    rebuild_round += 1
                    time.sleep(self.policy.backoff(rebuild_round - 1))
                    continue

                # Deadline sweep: any still-running future past its
                # deadline marks a hung worker.  Futures of running tasks
                # cannot be cancelled, so the pool is abandoned: hung
                # workers are terminated, innocent in-flight tasks are
                # resubmitted without being charged an attempt.
                if deadlines:
                    now = time.monotonic()
                    timed_out = [
                        f for f, d in deadlines.items() if d <= now and not f.done()
                    ]
                    if timed_out:
                        for future in timed_out:
                            key = in_flight.pop(future)
                            deadlines.pop(future, None)
                            self.stats.timeouts += 1
                            if key not in dropped:
                                fail_or_requeue(
                                    key,
                                    "timeout",
                                    f"attempt exceeded "
                                    f"{self.policy.point_timeout:g}s",
                                )
                        for future, key in list(in_flight.items()):
                            if key not in dropped:
                                queue.appendleft(key)
                        in_flight.clear()
                        deadlines.clear()
                        pool = self._abandon_pool(pool)
        finally:
            if in_flight:
                self._terminate_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        return results, failures

    def _on_pool_broken(
        self,
        pool: ProcessPoolExecutor,
        in_flight: Dict[object, Hashable],
        deadlines: Dict[object, float],
        queue: deque,
        fail_or_requeue: Callable[[Hashable, str, str], bool],
    ) -> ProcessPoolExecutor:
        """Account every in-flight task of a broken pool and rebuild it.

        A crashed worker takes the whole ``ProcessPoolExecutor`` down and
        the culprit cannot be identified, so every in-flight task is
        charged one attempt (tasks that persistently crash their worker
        exhaust their budget and surface as ``worker-crash`` failures).
        """
        for future, key in list(in_flight.items()):
            fail_or_requeue(key, "worker-crash", "process pool broke")
        in_flight.clear()
        deadlines.clear()
        return self._abandon_pool(pool)


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------

#: Bump when the journal line format changes incompatibly.
JOURNAL_VERSION = 1


class CheckpointJournal:
    """Append-only JSONL journal of a sweep campaign's per-point status.

    One file per campaign (named after the campaign hash), living next
    to the sweep cache.  The first line is a campaign header; every
    later line is an event: ``point`` (status ``done`` with the result
    payload, or ``failed`` with the failure taxonomy) or ``retry``.
    Lines are flushed as written, so a crashed campaign leaves at worst
    one truncated trailing line — :meth:`load` skips undecodable lines.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading -------------------------------------------------------
    @staticmethod
    def load(path: "Path | str") -> Tuple[Optional[dict], List[dict]]:
        """``(header, entries)`` of an existing journal.

        Undecodable lines (e.g. a truncated final line from an
        interrupted writer) are skipped; a missing file yields
        ``(None, [])``.
        """
        header: Optional[dict] = None
        entries: List[dict] = []
        try:
            raw = Path(path).read_text()
        except OSError:
            return None, []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict):
                continue
            if entry.get("event") == "campaign" and header is None:
                header = entry
            else:
                entries.append(entry)
        return header, entries

    # -- writing -------------------------------------------------------
    def start(self, header: dict, *, fresh: bool) -> None:
        """Open for writing; truncate and write ``header`` when ``fresh``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if fresh else "a")
        if fresh:
            self.record(header)

    def record(self, entry: dict) -> None:
        if self._fh is None:
            raise RuntimeError("journal is not open (call start() first)")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
