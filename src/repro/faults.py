"""Deterministic fault injection for chaos-testing the sweep stack.

Enabled by the environment variable ``REPRO_FAULTS`` — a semicolon-
separated list of fault specs::

    REPRO_FAULTS="crash:rate=0.2,seed=1;hang:rate=0.1,seed=2,secs=30"
    REPRO_FAULTS="solver:rate=0.05,seed=3;cache:rate=0.5,seed=4"
    REPRO_FAULTS="solver"            # rate defaults to 1.0 (always)

Fault kinds
-----------
``crash``
    A pool worker calls ``os._exit`` before simulating its point —
    the process dies abruptly and the parent sees ``BrokenProcessPool``.
    Only fires inside worker processes, never in the parent.
``hang``
    A pool worker sleeps ``secs`` (default 30) before simulating —
    long enough to trip the engine's per-point timeout.  Worker-only.
``solver``
    :class:`~repro.core.fixed_point.FixedPointSolver` raises an
    :class:`InjectedFault` for the affected solve (scalar) or rows
    (batched) — exercising the solver's failure-record path.
``cache``
    :class:`~repro.store.ResultStore` ``.put`` writes a corrupted entry
    (truncated body), so the next read must quarantine and recompute.
``worker-kill``
    A ``repro worker`` process calls ``os._exit`` before computing its
    claimed unit — its heartbeat goes stale and the coordinator
    requeues its leases.  Only fires in processes that called
    :func:`mark_worker_process` (the ``repro worker`` CLI), never in a
    test harness running the worker in-process.
``heartbeat-stall``
    A ``repro worker`` suspends heartbeat *and* lease refresh for
    ``secs`` (default 30) before computing — the "stalled without
    crashing" failure mode: long enough stalls trip the coordinator's
    lease expiry.  Worker-process-only, like ``worker-kill``.
``lease-steal``
    A ``repro worker`` deletes another worker's lease file before
    computing, simulating a byzantine peer breaking a claim; the victim
    still finishes and first-result-wins arbitration resolves the
    duplicate.  Worker-process-only.

Determinism
-----------
Every decision is a pure function of the spec's ``seed``, the fault
kind, and a stable key — for ``crash``/``hang`` (and the distributed
``worker-kill``/``heartbeat-stall``/``lease-steal`` kinds) the point's
SHA-256 per-point seed *and the attempt number*, so a point that
crashes on attempt 0 draws afresh on attempt 1 and the retried run
reproduces the fault-free result bit for bit.  ``solver`` draws are keyed on a
per-process call counter; ``cache`` draws on the cache key, so the same
entry is corrupted on every write (the cache stays ineffective for that
point, results stay correct).

All parse errors raise :class:`ValueError` naming ``REPRO_FAULTS``.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.fixed_point import UpdateFailure

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "corrupt_cache_body",
    "heartbeat_stall_secs",
    "lease_steal_triggers",
    "mark_worker_process",
    "maybe_solver_fault",
    "maybe_worker_kill",
    "on_point_attempt",
    "parse_faults",
    "solver_fault_flags",
]

ENV_VAR = "REPRO_FAULTS"
FAULT_KINDS = (
    "crash",
    "hang",
    "solver",
    "cache",
    "worker-kill",
    "heartbeat-stall",
    "lease-steal",
)

#: Exit status of an injected worker crash (visible in core dumps/logs).
CRASH_EXIT_CODE = 77


class InjectedFault(UpdateFailure):
    """An artificial failure raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault kind: probability, RNG seed, kind-specific knobs."""

    kind: str
    rate: float = 1.0
    seed: int = 0
    secs: float = 30.0  # hang duration; only meaningful for kind="hang"


class FaultPlan:
    """The active set of fault specs, with deterministic trigger draws."""

    def __init__(self, specs: Dict[str, FaultSpec]) -> None:
        self.specs = dict(specs)

    def spec(self, kind: str) -> Optional[FaultSpec]:
        return self.specs.get(kind)

    @staticmethod
    def draw(spec: FaultSpec, *key_parts: object) -> float:
        """Uniform [0, 1) value, a pure function of (kind, seed, key)."""
        blob = ":".join([spec.kind, str(spec.seed), *map(str, key_parts)])
        digest = hashlib.sha256(blob.encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2.0**64

    def triggers(self, kind: str, *key_parts: object) -> bool:
        spec = self.specs.get(kind)
        if spec is None or spec.rate <= 0.0:
            return False
        return self.draw(spec, *key_parts) < spec.rate


def parse_faults(raw: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
    specs: Dict[str, FaultSpec] = {}
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, params_raw = chunk.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"{ENV_VAR}: unknown fault kind {kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if kind in specs:
            raise ValueError(f"{ENV_VAR}: duplicate fault kind {kind!r}")
        fields: Dict[str, float] = {}
        for param in filter(None, (p.strip() for p in params_raw.split(","))):
            name, sep, value = param.partition("=")
            name = name.strip()
            if not sep or name not in ("rate", "seed", "secs"):
                raise ValueError(
                    f"{ENV_VAR}: bad parameter {param!r} for {kind!r} "
                    f"(expected rate=, seed= or secs=)"
                )
            try:
                fields[name] = float(value)
            except ValueError:
                raise ValueError(
                    f"{ENV_VAR}: {kind}:{name} must be a number, got {value!r}"
                ) from None
        rate = fields.get("rate", 1.0)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{ENV_VAR}: {kind}:rate must be in [0, 1], got {rate}")
        secs = fields.get("secs", 30.0)
        if secs <= 0:
            raise ValueError(f"{ENV_VAR}: {kind}:secs must be positive, got {secs}")
        specs[kind] = FaultSpec(
            kind=kind, rate=rate, seed=int(fields.get("seed", 0)), secs=secs
        )
    return FaultPlan(specs)


# Cache keyed on the raw env value so monkeypatched tests and freshly
# forked workers each parse at most once per distinct spec string.
_plan_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan parsed from ``$REPRO_FAULTS``, or ``None`` when unset."""
    global _plan_cache
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    if _plan_cache[0] != raw:
        _plan_cache = (raw, parse_faults(raw))
    return _plan_cache[1]


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


# ----------------------------------------------------------------------
# Injection hooks
# ----------------------------------------------------------------------
def on_point_attempt(point_key: object, attempt: int) -> None:
    """Crash/hang hook run at the top of every simulated point attempt.

    Only fires inside pool workers: killing or stalling the parent
    process would take down the campaign the harness exists to test.
    """
    plan = active_plan()
    if plan is None or not _in_worker():
        return
    if plan.triggers("crash", point_key, attempt):
        os._exit(CRASH_EXIT_CODE)
    hang = plan.spec("hang")
    if hang is not None and plan.triggers("hang", point_key, attempt):
        time.sleep(hang.secs)


_solver_calls = itertools.count()


def maybe_solver_fault() -> None:
    """Raise :class:`InjectedFault` for this scalar solve when drawn."""
    plan = active_plan()
    if plan is None:
        return
    call = next(_solver_calls)
    if plan.triggers("solver", call):
        raise InjectedFault(f"injected solver fault (call {call})")


def solver_fault_flags(count: int) -> Optional[List[bool]]:
    """Per-row injected-fault flags for a batched solve (``None`` if off)."""
    plan = active_plan()
    if plan is None or plan.spec("solver") is None:
        return None
    return [plan.triggers("solver", next(_solver_calls)) for _ in range(count)]


def corrupt_cache_body(cache_key: str, body: str) -> str:
    """Return ``body``, truncated to garbage when the cache fault draws."""
    plan = active_plan()
    if plan is None or not plan.triggers("cache", cache_key):
        return body
    return body[: max(1, len(body) // 2)]


# ----------------------------------------------------------------------
# Distributed (file-queue worker) fault hooks
# ----------------------------------------------------------------------
# Armed only in real ``repro worker`` processes: the CLI entry point
# calls mark_worker_process().  Tests that drive FileQueueWorker
# in-process stay immune — an injected os._exit must never take down
# the pytest process, just as crash/hang are gated to pool workers.
_is_worker_process = False


def mark_worker_process() -> None:
    """Arm the distributed fault hooks for this process (CLI entry only)."""
    global _is_worker_process
    _is_worker_process = True


def maybe_worker_kill(point_key: object, attempt: int) -> None:
    """``worker-kill`` hook: die abruptly before computing a claimed unit.

    Keyed like ``crash`` — the unit's first per-point seed and the
    attempt number — so the retried attempt draws afresh and the
    campaign converges to the bit-identical fault-free result.
    """
    plan = active_plan()
    if plan is None or not _is_worker_process:
        return
    if plan.triggers("worker-kill", point_key, attempt):
        os._exit(CRASH_EXIT_CODE)


def heartbeat_stall_secs(point_key: object, attempt: int) -> Optional[float]:
    """``heartbeat-stall`` duration for this unit attempt, or ``None``.

    The worker suspends heartbeat/lease refresh and sleeps this long —
    the decision and duration are returned (rather than slept here) so
    the worker can freeze its own heartbeat thread around the sleep.
    """
    plan = active_plan()
    if plan is None or not _is_worker_process:
        return None
    spec = plan.spec("heartbeat-stall")
    if spec is None or not plan.triggers("heartbeat-stall", point_key, attempt):
        return None
    return spec.secs


def lease_steal_triggers(point_key: object, attempt: int) -> bool:
    """``lease-steal`` draw: should this worker break a peer's lease now?"""
    plan = active_plan()
    if plan is None or not _is_worker_process:
        return False
    return plan.triggers("lease-steal", point_key, attempt)
