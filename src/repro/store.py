"""Shared content-addressed result store for sweep campaigns.

:class:`ResultStore` is the on-disk JSON point cache of the sweep
engine, promoted to a first-class shared store so that *any number of
concurrent writers* — the in-process engine, pool workers, and the
file-queue workers of :mod:`repro.backends` running on other hosts with
a shared filesystem — can populate one directory safely:

* Entries are **content-addressed**: the file name is the SHA-256 hash
  of the full :class:`~repro.simulator.config.SimulationConfig`
  (:func:`config_key`), which includes the deterministic per-point
  seed, so identical work maps to identical keys on every host.
* Writes are **crash-consistent**: every writer writes to a unique
  ``*.tmp`` name (pid + per-process counter, so two hosts or two
  processes never collide) and publishes with an atomic ``rename`` —
  readers see either the old entry, the new entry, or a miss, never a
  torn file.  Concurrent writers of the same key are harmless: the
  entries are bit-identical by construction (results are pure functions
  of the config), so last-rename-wins is a no-op.
* Reads are **validated**: entry bodies carry a schema version and a
  payload checksum; corrupt, truncated or stale-schema entries are
  quarantined to ``corrupt/<key>.<reason>.json`` and reported as a
  miss, never raised on.
* Interrupted writers leave ``*.tmp`` orphans; :meth:`clean_stale_tmp`
  sweeps ones older than :data:`TMP_MAX_AGE_SECONDS` on startup (young
  tmps may belong to a live concurrent writer).

The store root is ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro/sweeps`` (:func:`default_store_dir`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from repro import faults
from repro.core.results import SweepPoint
from repro.simulator.config import SimulationConfig

__all__ = [
    "CACHE_VERSION",
    "TMP_MAX_AGE_SECONDS",
    "ResultStore",
    "atomic_write_json",
    "atomic_write_text",
    "config_key",
    "default_store_dir",
    "payload_checksum",
]

#: Bump to orphan every existing store entry (format or semantics change).
#: Version 2 added the in-body schema/checksum envelope.
CACHE_VERSION = 2

#: ``*.tmp`` files older than this are orphans of an interrupted writer
#: and are removed by :meth:`ResultStore.clean_stale_tmp` (young ones may
#: belong to a concurrently running writer — possibly on another host).
TMP_MAX_AGE_SECONDS = 600.0

#: Per-process counter making tmp names unique even within one process.
_tmp_counter = itertools.count()


def default_store_dir() -> Path:
    """Store root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def config_key(cfg: SimulationConfig) -> str:
    """SHA-256 content address of a full simulation configuration.

    Derived from the JSON form of every config field (the per-point
    seed included) plus the store format version — the same function on
    every host, so distributed workers and the local engine share one
    key space.
    """
    payload = {"version": CACHE_VERSION, "config": asdict(cfg)}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_checksum(payload: dict) -> str:
    """SHA-256 checksum of an entry payload (stored in the entry body)."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _unique_tmp(path: Path) -> Path:
    """A writer-unique sibling ``*.tmp`` name for ``path``.

    pid + per-process counter: concurrent processes (or two writes from
    one process) never clobber each other's half-written file, even on a
    filesystem shared between hosts (pids may collide across hosts, but
    the counter plus the final atomic rename keep the protocol safe —
    worst case two writers race to publish bit-identical content).
    """
    return path.with_suffix(f".{os.getpid()}.{next(_tmp_counter)}.tmp")


def atomic_write_text(path: Path, body: str) -> None:
    """Crash-consistent write: unique tmp + fsync + atomic rename."""
    path = Path(path)
    tmp = _unique_tmp(path)
    with open(tmp, "w") as fh:
        fh.write(body)
        fh.flush()
        try:
            os.fsync(fh.fileno())
        except OSError:
            pass
    os.replace(tmp, path)


def atomic_write_json(path: Path, obj: object) -> None:
    """:func:`atomic_write_text` of a sorted-key JSON document."""
    atomic_write_text(Path(path), json.dumps(obj, sort_keys=True))


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class ResultStore:
    """One JSON file per simulated point, keyed by the config hash.

    Entry bodies are versioned and checksummed::

        {"schema": 2, "payload": {rate, latency, saturated}, "checksum": ...}

    :meth:`get` validates schema version, checksum and field types; any
    corrupt, truncated or stale-schema entry is *quarantined* — moved to
    ``<root>/corrupt/<key>.<reason>.json`` so the damage stays
    inspectable — and the point recomputed.  Reads never raise.

    Writes go through a unique ``*.tmp`` plus atomic rename
    (:func:`atomic_write_text`), so any number of concurrent writers —
    pool workers, distributed file-queue workers on other hosts, a
    speculative duplicate of a straggling point — can share one store
    directory: entries for the same key are bit-identical by
    construction and last-rename-wins is harmless.
    """

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    def _path(self, cfg: SimulationConfig) -> Path:
        return self.root / f"{config_key(cfg)}.json"

    def clean_stale_tmp(self, max_age: float = TMP_MAX_AGE_SECONDS) -> int:
        """Remove orphaned ``*.tmp`` files left by interrupted writers.

        Only files older than ``max_age`` seconds go (a young tmp may
        belong to a concurrently running writer).  Returns the count
        removed; never raises.
        """
        try:
            candidates = list(self.root.glob("*.tmp"))
        except OSError:
            return 0
        removed = 0
        now = time.time()
        for tmp in candidates:
            try:
                if now - tmp.stat().st_mtime >= max_age:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry to ``corrupt/`` (best-effort, never raises)."""
        try:
            dest_dir = self.root / "corrupt"
            dest_dir.mkdir(parents=True, exist_ok=True)
            path.replace(dest_dir / f"{path.stem}.{reason}.json")
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, cfg: SimulationConfig) -> Optional[SweepPoint]:
        path = self._path(cfg)
        try:
            raw = path.read_text()
        except OSError:
            return None  # plain miss
        except UnicodeDecodeError:
            self._quarantine(path, "parse")
            return None
        try:
            data = json.loads(raw)
        except ValueError:
            self._quarantine(path, "parse")
            return None
        if not isinstance(data, dict) or data.get("schema") != CACHE_VERSION:
            self._quarantine(path, "schema")
            return None
        payload = data.get("payload")
        if not isinstance(payload, dict) or data.get(
            "checksum"
        ) != payload_checksum(payload):
            self._quarantine(path, "checksum")
            return None
        rate = payload.get("rate")
        latency = payload.get("latency")
        saturated = payload.get("saturated")
        if (
            not _is_number(rate)
            or not _is_number(latency)
            or not isinstance(saturated, bool)
        ):
            self._quarantine(path, "fields")
            return None
        return SweepPoint(
            rate=float(rate), latency=float(latency), saturated=saturated
        )

    def put(self, cfg: SimulationConfig, point: SweepPoint) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(cfg)
        payload = {
            "rate": point.rate,
            "latency": point.latency,
            "saturated": point.saturated,
        }
        body = json.dumps(
            {
                "schema": CACHE_VERSION,
                "payload": payload,
                "checksum": payload_checksum(payload),
            },
            sort_keys=True,
        )
        # Chaos hook: the fault harness may hand back a truncated body,
        # which the next get() must quarantine and recompute.
        body = faults.corrupt_cache_body(path.stem, body)
        atomic_write_text(path, body)
