"""M/G/1 waiting time with the paper's variance approximation (eq 28).

The analytical model treats both network channels and the local injection
queue as M/G/1 servers.  The Pollaczek–Khinchine mean waiting time is

    W = rho * S * (1 + C_s^2) / (2 * (1 - rho)),    rho = lam * S,

with ``C_s^2`` the squared coefficient of variation of the service time.
Following Draper & Ghosh [6], the paper approximates the service-time
variance by ``(S - Lm)^2`` — the service time is the fixed message length
``Lm`` plus a fluctuating blocking component, and the fluctuation is
credited with the whole deviation — giving eq (28):

    W(lam, S) = lam * S^2 * (1 + (S - Lm)^2 / S^2) / (2 * (1 - lam * S)).

Loads at or beyond ``rho = 1`` have no finite stationary waiting time;
callers receive infinity, which the fixed-point solver interprets as
saturation.

Every function is array-native: arguments broadcast against each other
per the usual numpy rules, and the return preserves scalarity — float
in, float out; ndarray in, ndarray out.  The vectorized model kernel
evaluates whole ``k x k`` channel grids (or whole sweep batches) in one
call instead of one Python call per channel.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mg1_waiting_time", "mg1_waiting_time_cs2"]


def _scalarize(out: np.ndarray, scalar: bool) -> "float | np.ndarray":
    """Return a Python float for all-scalar inputs, the array otherwise."""
    return float(out) if scalar else out


def mg1_waiting_time(lam, service_time, message_length):
    """Mean waiting time of eq (28), elementwise over broadcast inputs.

    Parameters
    ----------
    lam:
        Arrival rate at the queue (messages/cycle); scalar or ndarray.
    service_time:
        Mean service time ``S`` (cycles); scalar or ndarray.
    message_length:
        Fixed message length ``Lm`` (flits == cycles at one flit/cycle);
        used by the variance approximation ``sigma^2 = (S - Lm)^2``.

    Returns
    -------
    float | np.ndarray
        Mean waiting time in cycles; ``inf`` where ``lam * S >= 1``
        (the queue is saturated); ``0.0`` where ``lam`` or ``S`` is
        zero.  Scalar inputs return a ``float``.
    """
    if not (
        isinstance(lam, np.ndarray)
        or isinstance(service_time, np.ndarray)
        or isinstance(message_length, np.ndarray)
    ):
        # Pure-float fast path: the scalar model kernel calls this once
        # per channel, so it must not pay ndarray dispatch overhead.
        if lam < 0:
            raise ValueError(f"arrival rate must be non-negative, got {lam}")
        if service_time < 0:
            raise ValueError(
                f"service time must be non-negative, got {service_time}"
            )
        if message_length < 0:
            raise ValueError(
                f"message length must be non-negative, got {message_length}"
            )
        if lam == 0.0 or service_time == 0.0:
            return 0.0
        rho = lam * service_time
        if rho >= 1.0:
            return math.inf
        variance = (service_time - message_length) ** 2
        second_moment = service_time**2 + variance
        return lam * second_moment / (2.0 * (1.0 - rho))
    lam_a = np.asarray(lam, dtype=float)
    s_a = np.asarray(service_time, dtype=float)
    lm_a = np.asarray(message_length, dtype=float)
    scalar = lam_a.ndim == 0 and s_a.ndim == 0 and lm_a.ndim == 0
    if np.any(lam_a < 0):
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if np.any(s_a < 0):
        raise ValueError(f"service time must be non-negative, got {service_time}")
    if np.any(lm_a < 0):
        raise ValueError(
            f"message length must be non-negative, got {message_length}"
        )
    rho = lam_a * s_a
    variance = (s_a - lm_a) ** 2
    second_moment = s_a**2 + variance
    # P-K formula written as lam * E[S^2] / (2 (1 - rho)); identical to the
    # eq (28) form lam S^2 (1 + (S-Lm)^2/S^2) / (2 (1 - lam S)).
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wait = lam_a * second_moment / (2.0 * (1.0 - rho))
        wait = np.where(rho >= 1.0, np.inf, wait)
    out = np.where((lam_a == 0.0) | (s_a == 0.0), 0.0, wait)
    return _scalarize(out, scalar)


def mg1_waiting_time_cs2(lam, service_time, cs2):
    """P-K mean waiting time with an explicit squared CV ``C_s^2``.

    Provided for baselines and tests that want the exact M/M/1
    (``cs2=1``) or M/D/1 (``cs2=0``) special cases rather than the
    paper's variance approximation.  Broadcasts like
    :func:`mg1_waiting_time`.
    """
    lam_a = np.asarray(lam, dtype=float)
    s_a = np.asarray(service_time, dtype=float)
    cs2_a = np.asarray(cs2, dtype=float)
    scalar = lam_a.ndim == 0 and s_a.ndim == 0 and cs2_a.ndim == 0
    if np.any(lam_a < 0):
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if np.any(s_a < 0):
        raise ValueError(f"service time must be non-negative, got {service_time}")
    if np.any(cs2_a < 0):
        raise ValueError(f"squared CV must be non-negative, got {cs2}")
    rho = lam_a * s_a
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wait = rho * s_a * (1.0 + cs2_a) / (2.0 * (1.0 - rho))
        wait = np.where(rho >= 1.0, np.inf, wait)
    out = np.where((lam_a == 0.0) | (s_a == 0.0), 0.0, wait)
    return _scalarize(out, scalar)
