"""M/G/1 waiting time with the paper's variance approximation (eq 28).

The analytical model treats both network channels and the local injection
queue as M/G/1 servers.  The Pollaczek–Khinchine mean waiting time is

    W = rho * S * (1 + C_s^2) / (2 * (1 - rho)),    rho = lam * S,

with ``C_s^2`` the squared coefficient of variation of the service time.
Following Draper & Ghosh [6], the paper approximates the service-time
variance by ``(S - Lm)^2`` — the service time is the fixed message length
``Lm`` plus a fluctuating blocking component, and the fluctuation is
credited with the whole deviation — giving eq (28):

    W(lam, S) = lam * S^2 * (1 + (S - Lm)^2 / S^2) / (2 * (1 - lam * S)).

Loads at or beyond ``rho = 1`` have no finite stationary waiting time;
callers receive :data:`math.inf`, which the fixed-point solver interprets
as saturation.
"""

from __future__ import annotations

import math

__all__ = ["mg1_waiting_time", "mg1_waiting_time_cs2"]


def mg1_waiting_time(lam: float, service_time: float, message_length: float) -> float:
    """Mean waiting time of eq (28).

    Parameters
    ----------
    lam:
        Arrival rate at the queue (messages/cycle).
    service_time:
        Mean service time ``S`` (cycles).
    message_length:
        Fixed message length ``Lm`` (flits == cycles at one flit/cycle);
        used by the variance approximation ``sigma^2 = (S - Lm)^2``.

    Returns
    -------
    float
        Mean waiting time in cycles; ``math.inf`` when ``lam * S >= 1``
        (the queue is saturated); ``0.0`` for ``lam <= 0``.
    """
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if service_time < 0:
        raise ValueError(f"service time must be non-negative, got {service_time}")
    if message_length < 0:
        raise ValueError(f"message length must be non-negative, got {message_length}")
    if lam == 0.0 or service_time == 0.0:
        return 0.0
    rho = lam * service_time
    if rho >= 1.0:
        return math.inf
    variance = (service_time - message_length) ** 2
    second_moment = service_time**2 + variance
    # P-K formula written as lam * E[S^2] / (2 (1 - rho)); identical to the
    # eq (28) form lam S^2 (1 + (S-Lm)^2/S^2) / (2 (1 - lam S)).
    return lam * second_moment / (2.0 * (1.0 - rho))


def mg1_waiting_time_cs2(lam: float, service_time: float, cs2: float) -> float:
    """P-K mean waiting time with an explicit squared CV ``C_s^2``.

    Provided for baselines and tests that want the exact M/M/1
    (``cs2=1``) or M/D/1 (``cs2=0``) special cases rather than the
    paper's variance approximation.
    """
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if service_time < 0:
        raise ValueError(f"service time must be non-negative, got {service_time}")
    if cs2 < 0:
        raise ValueError(f"squared CV must be non-negative, got {cs2}")
    if lam == 0.0 or service_time == 0.0:
        return 0.0
    rho = lam * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time * (1.0 + cs2) / (2.0 * (1.0 - rho))
