"""Per-channel blocking model of the paper (eqs 26, 27, 29, 30).

A network channel is shared by two traffic classes: *regular* messages
with rate ``lam`` requiring mean service time ``S_lam`` and *hot-spot*
messages with rate ``gam`` requiring ``S_gam``.  A message arriving at the
head of a channel is blocked when the channel is busy; the paper models

* the blocking probability as the channel utilisation (eq 27)

      Pb = lam * S_lam + gam * S_gam,

* the conditional waiting time as the M/G/1 waiting time of the merged
  arrival stream at the rate-weighted mean service time (eqs 29-30)

      S̄  = (lam * S_lam + gam * S_gam) / (lam + gam),
      wc = (lam+gam) S̄² (1 + (S̄ - Lm)²/S̄²) / (2 (1 - (lam+gam) S̄)),

* and the mean blocking delay as their product (eq 26): ``B = Pb * wc``.

Utilisation at or above one means the channel cannot drain its offered
load; the blocking delay is then infinite and the solver reports
saturation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.queueing.mg1 import mg1_waiting_time

__all__ = [
    "BlockingInputs",
    "weighted_service_time",
    "blocking_probability",
    "blocking_delay",
]


@dataclass(frozen=True)
class BlockingInputs:
    """Inputs of the blocking delay ``B(lam, gam, S_lam, S_gam)``.

    Bundles the two (rate, service-time) pairs so call sites that average
    blocking over many channel positions stay readable.
    """

    lam: float
    gam: float
    s_lam: float
    s_gam: float

    def __post_init__(self) -> None:
        if self.lam < 0 or self.gam < 0:
            raise ValueError(
                f"traffic rates must be non-negative, got {self.lam}, {self.gam}"
            )
        if self.s_lam < 0 or self.s_gam < 0:
            raise ValueError(
                f"service times must be non-negative, got {self.s_lam}, {self.s_gam}"
            )


def weighted_service_time(inputs: BlockingInputs) -> float:
    """Rate-weighted mean service time of the merged stream (eq 30)."""
    total = inputs.lam + inputs.gam
    if total == 0.0:
        return 0.0
    return (inputs.lam * inputs.s_lam + inputs.gam * inputs.s_gam) / total


def blocking_probability(inputs: BlockingInputs) -> float:
    """Probability the channel is busy on arrival (eq 27), clamped to 1."""
    pb = inputs.lam * inputs.s_lam + inputs.gam * inputs.s_gam
    return min(pb, 1.0)


def blocking_delay(inputs: BlockingInputs, message_length: float) -> float:
    """Mean blocking delay ``B = Pb * wc`` (eq 26).

    Returns ``math.inf`` when the merged utilisation reaches one — the
    channel is saturated.
    """
    total_rate = inputs.lam + inputs.gam
    if total_rate == 0.0:
        return 0.0
    s_bar = weighted_service_time(inputs)
    if total_rate * s_bar >= 1.0:
        return math.inf
    wc = mg1_waiting_time(total_rate, s_bar, message_length)
    return blocking_probability(inputs) * wc
