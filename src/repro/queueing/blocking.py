"""Per-channel blocking model of the paper (eqs 26, 27, 29, 30).

A network channel is shared by two traffic classes: *regular* messages
with rate ``lam`` requiring mean service time ``S_lam`` and *hot-spot*
messages with rate ``gam`` requiring ``S_gam``.  A message arriving at the
head of a channel is blocked when the channel is busy; the paper models

* the blocking probability as the channel utilisation (eq 27)

      Pb = lam * S_lam + gam * S_gam,

* the conditional waiting time as the M/G/1 waiting time of the merged
  arrival stream at the rate-weighted mean service time (eqs 29-30)

      S̄  = (lam * S_lam + gam * S_gam) / (lam + gam),
      wc = (lam+gam) S̄² (1 + (S̄ - Lm)²/S̄²) / (2 (1 - (lam+gam) S̄)),

* and the mean blocking delay as their product (eq 26): ``B = Pb * wc``.

Utilisation at or above one means the channel cannot drain its offered
load; the blocking delay is then infinite and the solver reports
saturation.

All entry points are array-native: the four inputs broadcast against
each other, so one call evaluates a whole ``k x k`` channel grid — or a
``points x k x k`` sweep batch — elementwise.  Scalar inputs return
floats, preserving the original scalar API.  The model's fixed-point
hot loop uses :func:`blocking_delay_raw`, the same arithmetic without
the input re-validation (its inputs are internally generated and
already checked once at model construction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.queueing.mg1 import _scalarize, mg1_waiting_time

__all__ = [
    "BlockingInputs",
    "weighted_service_time",
    "blocking_probability",
    "blocking_delay",
    "blocking_delay_raw",
]


@dataclass(frozen=True)
class BlockingInputs:
    """Inputs of the blocking delay ``B(lam, gam, S_lam, S_gam)``.

    Bundles the two (rate, service-time) pairs so call sites that average
    blocking over many channel positions stay readable.  Each field is a
    scalar or an ndarray; the four broadcast against each other.
    """

    lam: "float | np.ndarray"
    gam: "float | np.ndarray"
    s_lam: "float | np.ndarray"
    s_gam: "float | np.ndarray"

    def __post_init__(self) -> None:
        # Cache scalarity: the scalar model kernel constructs thousands
        # of these per solve and every accessor branches on it.
        object.__setattr__(
            self,
            "is_scalar",
            not (
                isinstance(self.lam, np.ndarray)
                or isinstance(self.gam, np.ndarray)
                or isinstance(self.s_lam, np.ndarray)
                or isinstance(self.s_gam, np.ndarray)
            ),
        )
        if self.is_scalar:
            if self.lam < 0 or self.gam < 0:
                raise ValueError(
                    f"traffic rates must be non-negative, got {self.lam}, {self.gam}"
                )
            if self.s_lam < 0 or self.s_gam < 0:
                raise ValueError(
                    f"service times must be non-negative, "
                    f"got {self.s_lam}, {self.s_gam}"
                )
            return
        if np.any(np.asarray(self.lam) < 0) or np.any(np.asarray(self.gam) < 0):
            raise ValueError(
                f"traffic rates must be non-negative, got {self.lam}, {self.gam}"
            )
        if np.any(np.asarray(self.s_lam) < 0) or np.any(np.asarray(self.s_gam) < 0):
            raise ValueError(
                f"service times must be non-negative, got {self.s_lam}, {self.s_gam}"
            )

    # ``is_scalar`` — no field is an ndarray (0-d arrays count as
    # arrays) — is computed once in ``__post_init__`` and stored on the
    # instance.
    is_scalar: bool = field(init=False, compare=False, default=True)


def weighted_service_time(inputs: BlockingInputs):
    """Rate-weighted mean service time of the merged stream (eq 30)."""
    if inputs.is_scalar:
        total = inputs.lam + inputs.gam
        if total == 0.0:
            return 0.0
        return (inputs.lam * inputs.s_lam + inputs.gam * inputs.s_gam) / total
    total = np.asarray(inputs.lam, dtype=float) + np.asarray(inputs.gam, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        s_bar = np.where(
            total == 0.0,
            0.0,
            (
                np.asarray(inputs.lam, dtype=float) * np.asarray(inputs.s_lam, dtype=float)
                + np.asarray(inputs.gam, dtype=float) * np.asarray(inputs.s_gam, dtype=float)
            )
            / np.where(total == 0.0, 1.0, total),
        )
    return s_bar


def blocking_probability(inputs: BlockingInputs):
    """Probability the channel is busy on arrival (eq 27), clamped to 1."""
    if inputs.is_scalar:
        return min(inputs.lam * inputs.s_lam + inputs.gam * inputs.s_gam, 1.0)
    return np.minimum(
        np.asarray(inputs.lam, dtype=float) * np.asarray(inputs.s_lam, dtype=float)
        + np.asarray(inputs.gam, dtype=float) * np.asarray(inputs.s_gam, dtype=float),
        1.0,
    )


def blocking_delay_raw(lam, gam, s_lam, s_gam, message_length):
    """Elementwise blocking delay ``B = Pb * wc`` without input validation.

    The arithmetic of :func:`blocking_delay` on already-validated
    broadcastable arrays — the fixed-point hot loop calls this once per
    channel *grid* per iteration, so it skips the per-call
    ``BlockingInputs`` construction, the non-negativity re-checks and
    the ``np.errstate`` guard (the caller brackets a whole model update
    in one; saturated entries divide by zero before being replaced with
    ``inf``).  Always returns an ndarray (no scalar conversion).
    """
    lam = np.asarray(lam, dtype=float)
    gam = np.asarray(gam, dtype=float)
    s_lam = np.asarray(s_lam, dtype=float)
    s_gam = np.asarray(s_gam, dtype=float)
    total = lam + gam
    occupancy = lam * s_lam + gam * s_gam  # eq 27 numerator == S̄ * total
    s_bar = occupancy / np.where(total == 0.0, 1.0, total)
    # Inline eq (28) at (total, s_bar): the merged-stream M/G/1 wait.
    rho = total * s_bar
    lm = np.asarray(message_length, dtype=float)
    second_moment = s_bar**2 + (s_bar - lm) ** 2
    wc = total * second_moment / (2.0 * (1.0 - rho))
    delay = np.minimum(occupancy, 1.0) * wc
    delay = np.where(rho >= 1.0, np.inf, delay)
    return np.where(total == 0.0, 0.0, delay)


def blocking_delay(inputs: BlockingInputs, message_length):
    """Mean blocking delay ``B = Pb * wc`` (eq 26), elementwise.

    Returns ``inf`` where the merged utilisation reaches one — the
    channel is saturated — and ``0.0`` where no traffic is offered.
    Scalar inputs return a ``float``.
    """
    if inputs.is_scalar and not isinstance(message_length, np.ndarray):
        # Pure-float fast path for the scalar model kernel's per-channel
        # calls; identical arithmetic to the array path, with eqs 27,
        # 29-30 inlined to avoid re-dispatching per component.
        if message_length < 0:
            raise ValueError(
                f"message length must be non-negative, got {message_length}"
            )
        lam, gam = inputs.lam, inputs.gam
        total = lam + gam
        if total == 0.0:
            return 0.0
        occupancy = lam * inputs.s_lam + gam * inputs.s_gam
        s_bar = occupancy / total
        rho = total * s_bar
        if rho >= 1.0:
            return math.inf
        if s_bar == 0.0:
            return 0.0
        # Eq (28) at (total, s_bar) — inputs already validated, so the
        # mg1_waiting_time re-checks are skipped.
        second_moment = s_bar**2 + (s_bar - message_length) ** 2
        wc = total * second_moment / (2.0 * (1.0 - rho))
        return min(occupancy, 1.0) * wc
    if np.any(np.asarray(message_length) < 0):
        raise ValueError(
            f"message length must be non-negative, got {message_length}"
        )
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = blocking_delay_raw(
            inputs.lam, inputs.gam, inputs.s_lam, inputs.s_gam, message_length
        )
    return _scalarize(out, inputs.is_scalar and np.ndim(message_length) == 0)
