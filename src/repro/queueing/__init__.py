"""Queueing-theoretic building blocks of the analytical model.

Three primitives, each mapping to a block of equations in the paper:

* :mod:`~repro.queueing.mg1` — the M/G/1 mean waiting time with the
  paper's ``(S - Lm)²`` service-time variance approximation (eq 28).
* :mod:`~repro.queueing.blocking` — the per-channel blocking probability
  and mean blocking delay for a channel shared by a *regular* and a
  *hot-spot* traffic class (eqs 26, 27, 29, 30).
* :mod:`~repro.queueing.vc_multiplexing` — Dally's Markov model of
  virtual-channel occupancy and the average multiplexing degree ``V̄``
  (eqs 33-35).
"""

from repro.queueing.mg1 import mg1_waiting_time, mg1_waiting_time_cs2
from repro.queueing.blocking import (
    BlockingInputs,
    blocking_delay,
    blocking_probability,
    weighted_service_time,
)
from repro.queueing.vc_multiplexing import (
    multiplexing_degree,
    vc_occupancy_probabilities,
)

__all__ = [
    "mg1_waiting_time",
    "mg1_waiting_time_cs2",
    "BlockingInputs",
    "blocking_delay",
    "blocking_probability",
    "weighted_service_time",
    "multiplexing_degree",
    "vc_occupancy_probabilities",
]
