"""Dally's virtual-channel multiplexing model (eqs 33-35).

``V`` virtual channels share one physical channel in a time-multiplexed
fashion.  Dally [3] models the number of busy virtual channels at a
physical channel as a birth-death Markov chain; with channel arrival rate
``lam`` and mean per-message service time ``S`` the unnormalised
stationary weights are (eq 33)

    q_0 = 1
    q_v = q_{v-1} * lam * S                    for 0 < v < V
    q_V = q_{V-1} * lam * S / (1 - lam * S)

(the last state absorbs the geometric tail of more messages wanting VCs
than exist).  Normalising gives occupancy probabilities ``P_v`` (eq 34),
and the *average multiplexing degree* — the factor by which latency is
stretched because a flit only gets a fraction of the physical channel
bandwidth — is (eq 35)

    V̄ = sum(v^2 P_v) / sum(v P_v).

``V̄`` is 1 at zero load (a lone message owns the channel) and approaches
``V`` as the channel saturates.  When ``lam*S >= 1`` the chain has no
stationary distribution; the model pins the channel at full occupancy,
returning ``V̄ = V``.

Array-native: ``lam`` and ``service_time`` broadcast against each other,
the occupancy axis is appended as the *last* axis of the result, and
:func:`multiplexing_degree` / :func:`mean_busy_vcs` preserve scalarity
(float in, float out).  The recurrence of eq (33) is evaluated as a
cumulative product along the occupancy axis — the same sequential
multiplications as the scalar loop, batched over every channel at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vc_occupancy_probabilities", "multiplexing_degree", "mean_busy_vcs"]


def _occupancy_weights(rho: np.ndarray, num_vcs: int) -> np.ndarray:
    """Unnormalised eq (33) weights ``q_0..q_V`` along a new last axis.

    ``rho`` entries at/above 1 produce a pinned distribution (all mass
    on the full-occupancy state) after normalisation in the caller.
    """
    head = np.ones(rho.shape + (num_vcs,))
    if num_vcs > 1:
        head[..., 1:] = rho[..., None]
        head = np.cumprod(head, axis=-1)  # [1, rho, rho^2, ..., rho^(V-1)]
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        tail = head[..., -1] * rho / (1.0 - rho)
    return np.concatenate([head, tail[..., None]], axis=-1)


def vc_occupancy_probabilities(lam, service_time, num_vcs: int) -> np.ndarray:
    """Stationary probabilities ``P_0..P_V`` of the busy-VC count (eq 34).

    Returns shape ``broadcast(lam, service_time).shape + (V+1,)``; the
    scalar call keeps its original ``(V+1,)`` shape.
    """
    if num_vcs < 1:
        raise ValueError(f"number of virtual channels must be >= 1, got {num_vcs}")
    lam_a = np.asarray(lam, dtype=float)
    s_a = np.asarray(service_time, dtype=float)
    if np.any(lam_a < 0):
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if np.any(s_a < 0):
        raise ValueError(f"service time must be non-negative, got {service_time}")
    rho = np.asarray(lam_a * s_a)
    q = _occupancy_weights(rho, num_vcs)
    saturated = rho >= 1.0
    if np.any(saturated):
        pinned = np.zeros(num_vcs + 1)
        pinned[num_vcs] = 1.0
        q = np.where(saturated[..., None], pinned, q)
    with np.errstate(invalid="ignore"):
        probs = q / q.sum(axis=-1, keepdims=True)
    return probs


def multiplexing_degree(lam, service_time, num_vcs: int):
    """Average multiplexing degree ``V̄`` of eq (35), elementwise.

    Returns 1.0 at zero load (no multiplexing penalty) and ``num_vcs``
    at/above saturation.  Scalar inputs return a ``float``.
    """
    scalar = np.ndim(lam) == 0 and np.ndim(service_time) == 0
    probs = vc_occupancy_probabilities(lam, service_time, num_vcs)
    v = np.arange(num_vcs + 1, dtype=float)
    denom = probs @ v
    with np.errstate(divide="ignore", invalid="ignore"):
        degree = (probs @ (v * v)) / denom
    # All mass at zero busy VCs: an arriving message multiplexes with
    # nobody, so the degree is 1.
    out = np.where(denom == 0.0, 1.0, degree)
    return float(out) if scalar else out


def mean_busy_vcs(lam, service_time, num_vcs: int):
    """Expected number of busy virtual channels, ``sum(v P_v)``."""
    scalar = np.ndim(lam) == 0 and np.ndim(service_time) == 0
    probs = vc_occupancy_probabilities(lam, service_time, num_vcs)
    v = np.arange(num_vcs + 1, dtype=float)
    out = probs @ v
    return float(out) if scalar else out
