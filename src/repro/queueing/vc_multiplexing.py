"""Dally's virtual-channel multiplexing model (eqs 33-35).

``V`` virtual channels share one physical channel in a time-multiplexed
fashion.  Dally [3] models the number of busy virtual channels at a
physical channel as a birth-death Markov chain; with channel arrival rate
``lam`` and mean per-message service time ``S`` the unnormalised
stationary weights are (eq 33)

    q_0 = 1
    q_v = q_{v-1} * lam * S                    for 0 < v < V
    q_V = q_{V-1} * lam * S / (1 - lam * S)

(the last state absorbs the geometric tail of more messages wanting VCs
than exist).  Normalising gives occupancy probabilities ``P_v`` (eq 34),
and the *average multiplexing degree* — the factor by which latency is
stretched because a flit only gets a fraction of the physical channel
bandwidth — is (eq 35)

    V̄ = sum(v^2 P_v) / sum(v P_v).

``V̄`` is 1 at zero load (a lone message owns the channel) and approaches
``V`` as the channel saturates.  When ``lam*S >= 1`` the chain has no
stationary distribution; the model pins the channel at full occupancy,
returning ``V̄ = V``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["vc_occupancy_probabilities", "multiplexing_degree"]


def vc_occupancy_probabilities(lam: float, service_time: float, num_vcs: int) -> np.ndarray:
    """Stationary probabilities ``P_0..P_V`` of the busy-VC count (eq 34)."""
    if num_vcs < 1:
        raise ValueError(f"number of virtual channels must be >= 1, got {num_vcs}")
    if lam < 0:
        raise ValueError(f"arrival rate must be non-negative, got {lam}")
    if service_time < 0:
        raise ValueError(f"service time must be non-negative, got {service_time}")
    rho = lam * service_time
    probs = np.zeros(num_vcs + 1)
    if rho >= 1.0:
        probs[num_vcs] = 1.0
        return probs
    q = np.empty(num_vcs + 1)
    q[0] = 1.0
    for v in range(1, num_vcs):
        q[v] = q[v - 1] * rho
    if num_vcs >= 1:
        base = q[num_vcs - 1] if num_vcs > 1 else 1.0
        q[num_vcs] = base * rho / (1.0 - rho)
    total = q.sum()
    return q / total


def multiplexing_degree(lam: float, service_time: float, num_vcs: int) -> float:
    """Average multiplexing degree ``V̄`` of eq (35).

    Returns 1.0 at zero load (no multiplexing penalty) and ``num_vcs``
    at/above saturation.
    """
    probs = vc_occupancy_probabilities(lam, service_time, num_vcs)
    v = np.arange(num_vcs + 1, dtype=float)
    denom = float(np.dot(v, probs))
    if denom == 0.0:
        # All mass at zero busy VCs: an arriving message multiplexes with
        # nobody, so the degree is 1.
        return 1.0
    return float(np.dot(v * v, probs)) / denom


def mean_busy_vcs(lam: float, service_time: float, num_vcs: int) -> float:
    """Expected number of busy virtual channels, ``sum(v P_v)``."""
    probs = vc_occupancy_probabilities(lam, service_time, num_vcs)
    v = np.arange(num_vcs + 1, dtype=float)
    return float(np.dot(v, probs))
