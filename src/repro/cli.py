"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``model``       evaluate the analytical model at one load or over a sweep
``saturation``  locate the model's saturation point
``simulate``    run one flit-level simulation
``panel``       regenerate a paper figure panel (model, optionally + sim)
``figure``      regenerate every panel of a figure in one parallel run
``list-panels`` show the available panels
``bench``       measure engine throughput, write/check a BENCH_*.json report
``worker``      serve a distributed sweep campaign directory

``panel`` and ``figure`` run on the sweep engine
(:class:`repro.experiments.sweep.SweepEngine`): ``--jobs N`` fans the
simulation points out over N worker processes (results are bit-identical
to ``--jobs 1``), and completed points are cached on disk under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro/sweeps``) so re-running a
figure is near-free; ``--no-cache`` bypasses the cache.

Sweeps are fault-tolerant: each simulation point is retried up to
``--max-retries`` times with capped exponential backoff (retried points
re-run the same per-point seed, so results stay bit-identical), a hung
point is killed after ``--point-timeout`` seconds, and every completed
point is checkpointed to a JSONL journal next to the cache — an
interrupted ``panel``/``figure`` run re-invoked with ``--resume`` picks
up where it left off.  Points that exhaust their retry budget are
reported per panel and fail the command (exit 1) unless
``--allow-failures`` opts back into shipping a partial sweep.

``--backend file:<campaign-dir>`` (or ``REPRO_BACKEND``) runs the sweep
on the distributed file-queue backend: start ``repro worker
<campaign-dir>`` on any hosts sharing that directory and they claim
work via atomic lease files, with heartbeat health monitoring and
crash-consistent requeue (see ``repro.backends``).

Examples
--------
::

    python -m repro model --k 16 --lm 32 --h 0.2 --rate 3e-4
    python -m repro model --k 16 --lm 32 --h 0.4 --sweep 8 --plot
    python -m repro saturation --k 16 --lm 100 --h 0.7
    python -m repro simulate --k 16 --lm 32 --h 0.2 --rate 3e-4 --cycles 50000
    python -m repro panel fig1_h40 --simulate --jobs 4
    python -m repro figure 1 --simulate --jobs 8 --cycles 30000
    python -m repro bench --output benchmarks/results/
    python -m repro bench --quick --check benchmarks/results/BENCH_baseline.json
    python -m repro figure 1 --simulate --backend file:/shared/campaign
    python -m repro worker /shared/campaign          # on each worker host
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

import numpy as np

from repro.core.model import HotSpotLatencyModel
from repro.core.uniform import UniformLatencyModel
from repro.experiments import (
    ALL_PANELS,
    FIGURES,
    SweepEngine,
    format_panel_table,
    get_panel,
    panels_of_figure,
    shape_metrics,
)
from repro.simulator import Simulation, SimulationConfig
from repro.viz import plot_sweeps

__all__ = ["main", "build_parser"]


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_network_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--k", type=int, default=16, help="radix (k x k torus)")
    p.add_argument("--lm", type=int, default=32, help="message length in flits")
    p.add_argument("--h", type=float, default=0.2, help="hot-spot fraction")
    p.add_argument("--vcs", type=int, default=2, help="virtual channels")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hot-spot traffic in deterministically-routed k-ary n-cubes "
            "(Loucif, Ould-Khaoua & Min, IPDPS 2005): analytical model and "
            "flit-level simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_model = sub.add_parser("model", help="evaluate the analytical model")
    _add_network_args(p_model)
    p_model.add_argument("--rate", type=float, help="one load (messages/cycle/node)")
    p_model.add_argument(
        "--sweep", type=int, metavar="N", help="sweep N loads up to saturation"
    )
    p_model.add_argument("--plot", action="store_true", help="ASCII chart")
    p_model.add_argument(
        "--literal-entrance",
        action="store_true",
        help="use the paper's literal entrance service times (no trip averaging)",
    )

    p_sat = sub.add_parser("saturation", help="locate the saturation point")
    _add_network_args(p_sat)

    p_sim = sub.add_parser("simulate", help="run one flit-level simulation")
    _add_network_args(p_sim)
    p_sim.add_argument("--rate", type=float, required=True)
    p_sim.add_argument("--cycles", type=int, default=120_000, help="measured cycles")
    p_sim.add_argument("--warmup", type=int, default=None)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--ejection", action="store_true", help="model a real ejection channel"
    )
    p_sim.add_argument(
        "--engine",
        choices=["auto", "soa", "reference"],
        default="auto",
        help="cycle engine (auto follows $REPRO_ENGINE, default soa)",
    )

    def _add_sweep_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--simulate", action="store_true", help="also run the simulator series"
        )
        p.add_argument("--cycles", type=int, default=None,
                       help="measured cycles per simulation point")
        p.add_argument("--jobs", type=_positive_int, default=1,
                       help="simulation worker processes (default 1)")
        p.add_argument("--batch", type=_positive_int, default=None,
                       metavar="B",
                       help="same-shape simulation points advanced per "
                       "batched engine call (default $REPRO_SIM_BATCH or 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk sweep result cache")
        p.add_argument("--seed", type=int, default=42,
                       help="base seed for the per-point simulation seeds")
        p.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="extra attempts per simulation point (default 2)")
        p.add_argument("--point-timeout", type=float, default=None,
                       metavar="SECS",
                       help="wall-clock seconds per point attempt before the "
                       "worker is presumed hung (needs --jobs > 1)")
        p.add_argument("--resume", action="store_true",
                       help="restore checkpointed points of an interrupted "
                       "run from the campaign journal")
        p.add_argument("--backend", default=None, metavar="SEL",
                       help="sweep backend: 'local' (default; also "
                       "$REPRO_BACKEND) or 'file:<campaign-dir>' for the "
                       "distributed file-queue backend (start workers "
                       "with `repro worker <campaign-dir>`)")
        p.add_argument("--allow-failures", action="store_true",
                       help="exit 0 even when some points exhausted their "
                       "retry budget (default: partial sweeps exit 1)")
        p.add_argument("--plot", action="store_true")

    p_panel = sub.add_parser("panel", help="regenerate a paper figure panel")
    p_panel.add_argument("name", choices=sorted(ALL_PANELS))
    _add_sweep_args(p_panel)

    p_fig = sub.add_parser(
        "figure", help="regenerate all panels of a figure (parallel with --jobs)"
    )
    p_fig.add_argument("number", type=int, choices=sorted(FIGURES))
    _add_sweep_args(p_fig)

    sub.add_parser("list-panels", help="list the paper's figure panels")

    p_worker = sub.add_parser(
        "worker",
        help="serve a distributed sweep campaign (file-queue backend)",
    )
    p_worker.add_argument(
        "campaign_dir",
        help="shared campaign directory (the --backend file:<dir> argument)",
    )
    p_worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="stable worker identity for lease/heartbeat files "
        "(default: generated)",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECS",
        help="queue scan period when idle (default 0.2)",
    )
    p_worker.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="SECS",
        help="heartbeat/lease refresh period (default 5)",
    )
    p_worker.add_argument(
        "--lease-duration", type=float, default=60.0, metavar="SECS",
        help="advisory lease lifetime written into claims (default 60)",
    )
    p_worker.add_argument(
        "--once", action="store_true",
        help="exit when the queue drains instead of waiting for more work",
    )
    p_worker.add_argument(
        "--max-units", type=_positive_int, default=None, metavar="N",
        help="exit after completing N work units",
    )

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator/model throughput and record a BENCH report",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="short measurement window (CI smoke runs)",
    )
    p_bench.add_argument(
        "--rounds", type=_positive_int, default=3, help="timing rounds (best-of)"
    )
    p_bench.add_argument(
        "--engine",
        choices=["auto", "soa", "reference"],
        default="auto",
        help="cycle engine to benchmark (auto follows $REPRO_ENGINE)",
    )
    p_bench.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the BENCH_*.json report here (file, or directory for "
        "an auto-generated name)",
    )
    p_bench.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="fail (exit 1) on a >2x cycles/sec regression vs this "
        "recorded BENCH_*.json baseline",
    )
    return parser


def _cmd_model(args: argparse.Namespace) -> int:
    model = HotSpotLatencyModel(
        k=args.k,
        message_length=args.lm,
        hotspot_fraction=args.h,
        num_vcs=args.vcs,
        trip_averaging=not args.literal_entrance,
    ) if args.h > 0 else UniformLatencyModel(
        k=args.k,
        n=2,
        message_length=args.lm,
        num_vcs=args.vcs,
        trip_averaging=not args.literal_entrance,
    )
    if args.rate is None and args.sweep is None:
        print("error: give --rate or --sweep N", file=sys.stderr)
        return 2
    if args.rate is not None:
        res = model.evaluate(args.rate)
        if res.saturated:
            print(f"rate {args.rate:g}: SATURATED (no finite steady state)")
        else:
            print(f"rate {args.rate:g}: latency {res.latency:.2f} cycles")
            if res.breakdown is not None:
                b = res.breakdown
                print(f"  regular {b.regular_total:.2f}  hot {b.hot_total:.2f}  "
                      f"source wait {b.regular_source_wait:.2f}")
        return 0
    sat = model.saturation_rate(hi=0.05)
    rates = np.linspace(0.08, 1.02, args.sweep) * sat
    sweep = model.sweep([float(r) for r in rates], label="model")
    print(f"{'rate':>14} | {'latency (cycles)':>16}")
    print("-" * 34)
    for p in sweep.points:
        lat = "saturated" if p.saturated else f"{p.latency:.1f}"
        print(f"{p.rate:>14.6g} | {lat:>16}")
    if args.plot:
        print()
        print(plot_sweeps([sweep]))
    return 0


def _cmd_saturation(args: argparse.Namespace) -> int:
    model = HotSpotLatencyModel(
        k=args.k, message_length=args.lm, hotspot_fraction=args.h, num_vcs=args.vcs
    )
    sat = model.saturation_rate(hi=0.05)
    bound = 1.0 / (args.h * args.k * (args.k - 1) * (args.lm + 1)) if args.h else None
    print(f"saturation rate: {sat:.6g} messages/cycle/node")
    if bound:
        print(f"hot-sink bandwidth bound lam*h*k(k-1)*(Lm+1)=1: {bound:.6g} "
              f"(model at {sat / bound:.0%} of it)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    cfg = SimulationConfig(
        k=args.k,
        message_length=args.lm,
        rate=args.rate,
        hotspot_fraction=args.h,
        num_vcs=args.vcs,
        warmup_cycles=args.warmup if args.warmup is not None else max(args.cycles // 8, 1_000),
        measure_cycles=args.cycles,
        seed=args.seed,
        model_ejection=args.ejection,
        engine=args.engine,
    )
    res = Simulation(cfg).run()
    print(f"completed {res.num_completed} messages over {res.cycles_run} cycles")
    if res.num_completed:
        ci = f" ± {res.ci95:.1f}" if res.ci95 is not None else ""
        print(f"mean latency: {res.mean_latency:.1f}{ci} cycles")
        if not math.isnan(res.mean_latency_hot):
            print(f"  hot {res.mean_latency_hot:.1f}  "
                  f"regular {res.mean_latency_regular:.1f}")
    print(f"max channel utilisation: {res.max_channel_utilization:.3f} "
          f"(hot sink {res.hot_sink_utilization:.3f})")
    print(f"saturated: {res.saturated}")
    return 0


def _sweep_engine(args: argparse.Namespace) -> SweepEngine:
    return SweepEngine(
        jobs=args.jobs,
        batch=args.batch,
        use_cache=not args.no_cache,
        max_retries=args.max_retries,
        point_timeout=args.point_timeout,
        resume=args.resume,
        backend=args.backend,
    )


def _failed_points(results) -> int:
    """Terminal point failures across one or more panel results."""
    total = 0
    for result in results:
        sim = result.simulation
        if sim is not None:
            total += len(sim.failures)
    return total


def _failure_exit(args: argparse.Namespace, failed: int) -> int:
    if failed and not args.allow_failures:
        print(
            f"error: {failed} point(s) exhausted their retry budget — "
            "partial sweep (pass --allow-failures to accept)",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_panel(result, args: argparse.Namespace) -> None:
    print(format_panel_table(result))
    sim = result.simulation
    if sim is not None and sim.failures:
        for f in sim.failures:
            print(f"FAILED point {f.index} (rate {f.rate:g}): {f.kind} "
                  f"after {f.attempts} attempt(s)"
                  + (f" — {f.message}" if f.message else ""))
    if args.simulate:
        m = shape_metrics(result)
        print(f"\nmean relative error (light/moderate load): "
              f"{m.mean_rel_error_light:.1%}")
    if args.plot:
        sweeps = [result.model] + (
            [result.simulation] if result.simulation is not None else []
        )
        print()
        print(plot_sweeps(sweeps))


def _print_resilience(engine: SweepEngine) -> None:
    stats = engine.stats
    if stats.eventful:
        print(f"\nresilience: {stats.retries} retries, {stats.timeouts} "
              f"timeouts, {stats.pool_rebuilds} pool rebuilds, "
              f"{stats.failures} failed points")


def _cmd_panel(args: argparse.Namespace) -> int:
    spec = get_panel(args.name)
    engine = _sweep_engine(args)
    result = engine.run_panel(
        spec, simulate=args.simulate, seed=args.seed, measure_cycles=args.cycles
    )
    _print_panel(result, args)
    _print_resilience(engine)
    return _failure_exit(args, _failed_points([result]))


def _cmd_figure(args: argparse.Namespace) -> int:
    specs = panels_of_figure(args.number)
    engine = _sweep_engine(args)
    results = engine.run_panels(
        specs, simulate=args.simulate, seed=args.seed, measure_cycles=args.cycles
    )
    for i, spec in enumerate(specs):
        if i:
            print()
        _print_panel(results[spec.name], args)
    _print_resilience(engine)
    return _failure_exit(
        args, _failed_points([results[s.name] for s in specs])
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro import bench

    report = bench.build_report(
        quick=args.quick, rounds=args.rounds, engine=args.engine
    )
    sim = report["simulator"]
    model = report["model"]
    window = "quick" if args.quick else "full"
    print(
        f"simulator [{sim['engine']}/{sim['kernel']}, {window}]: "
        f"{sim['cycles_per_sec']:,.0f} cycles/s, "
        f"{sim['flits_per_sec']:,.0f} flits/s "
        f"({sim['cycles_run']} cycles in {sim['seconds']:.3f}s, "
        f"{sim['completed']} deliveries)"
    )
    batch = report["model_batch"]
    print(
        f"model [{model['kernel']}]: {model['solves_per_sec']:,.1f} solves/s; "
        f"batched panel ({batch['points']} pts): "
        f"{batch['points_per_sec']:,.1f} points/s"
    )
    sb = report.get("sim_batch")
    if sb is not None:
        print(
            f"sim batch [{sb['kernel']}, B={sb['batch']}]: "
            f"{sb['cycles_per_sec_batched']:,.0f} cycles/s batched vs "
            f"{sb['cycles_per_sec_sequential']:,.0f} sequential "
            f"({sb['speedup']:.2f}x, "
            f"bit-identical={'yes' if sb['bit_identical'] else 'NO'})"
        )
    res = report.get("resilience")
    if res is not None:
        print(
            f"sweep [{res['jobs']} jobs]: {res['points_per_sec']:,.1f} "
            f"points/s ({res['points']} pts in {res['seconds']:.3f}s; "
            f"{res['retries']} retries, {res['pool_rebuilds']} rebuilds, "
            f"{res['failed_points']} failed)"
        )
    dist = report.get("distributed")
    if dist is not None:
        print(
            f"sweep [file-queue, {dist['workers']} workers]: "
            f"{dist['points_per_sec']:,.1f} points/s "
            f"({dist['points']} pts in {dist['seconds']:.3f}s; "
            f"{dist['retries']} retries, {dist['failed_points']} failed)"
        )
    print(f"config {report['config_hash']}  rev {report['git_rev']}")
    if args.output is not None:
        path = bench.write_report(report, args.output)
        print(f"report written to {path}")
    if args.check is not None:
        from pathlib import Path

        try:
            baseline = json.loads(Path(args.check).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        failures = bench.check_regression(report, baseline)
        if failures:
            for msg in failures:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(
            f"throughput OK vs baseline {args.check} "
            f"({float(baseline['simulator']['cycles_per_sec']):,.0f} cycles/s)"
        )
    return 0


def _cmd_list_panels() -> int:
    for name, spec in sorted(ALL_PANELS.items()):
        print(f"{name:10} {spec.description}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.backends.worker import FileQueueWorker

    # Arm the distributed fault hooks (worker-kill/heartbeat-stall/
    # lease-steal) — they only ever fire in a real worker process.
    faults.mark_worker_process()
    worker = FileQueueWorker(
        args.campaign_dir,
        worker_id=args.id,
        poll_interval=args.poll,
        heartbeat_interval=args.heartbeat,
        lease_duration=args.lease_duration,
        once=args.once,
    )
    done = worker.run(max_units=args.max_units)
    print(f"worker {worker.worker_id}: {done} unit(s) completed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "saturation":
        return _cmd_saturation(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "panel":
        return _cmd_panel(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "list-panels":
        return _cmd_list_panels()
    if args.command == "worker":
        return _cmd_worker(args)
    raise AssertionError(f"unhandled command {args.command!r}")
