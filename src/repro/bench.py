"""Performance benchmark harness: measure, record and gate throughput.

One timing path with two front-ends: the ``repro bench`` CLI subcommand
and ``benchmarks/test_bench_speed.py`` both run the same standard
configurations through :func:`run_sim_once` / :func:`throughput_stats`,
so the numbers they report are directly comparable.

``repro bench`` writes a ``BENCH_*.json`` report — simulator cycles/sec
and flits/sec, analytical-model solves/sec, the benchmark config hash,
the git revision and library versions — so the performance trajectory
of the repository is recorded PR over PR (committed baselines live in
``benchmarks/results/``).  ``repro bench --check BASELINE`` exits
non-zero when simulator throughput regressed more than
:data:`MAX_SLOWDOWN` versus a recorded baseline; CI runs that gate on
every push with ``--quick``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import HotSpotLatencyModel
from repro.simulator import Simulation, SimulationConfig

__all__ = [
    "MAX_SLOWDOWN",
    "SimRun",
    "bench_model",
    "bench_model_rates",
    "bench_sim_config",
    "build_report",
    "check_regression",
    "config_hash",
    "default_report_name",
    "git_rev",
    "bench_sim_batch_configs",
    "measure_model",
    "measure_model_batch",
    "measure_sim_batch",
    "measure_distributed_sweep",
    "measure_simulator",
    "measure_sweep",
    "run_sim_once",
    "throughput_stats",
    "write_report",
]

#: A check fails when throughput drops below baseline / MAX_SLOWDOWN.
MAX_SLOWDOWN = 2.0

#: Model evaluations per timing round in :func:`measure_model`.
_MODEL_EVALS = 25


def bench_sim_config(
    quick: bool = False, engine: str = "auto"
) -> SimulationConfig:
    """The standard speed-benchmark simulation.

    Moderate hot-spot load on the paper's 16x16 torus — the same
    configuration ``benchmarks/test_bench_speed.py`` times, so CLI
    reports and pytest-benchmark numbers are comparable.  ``quick``
    shrinks the measurement window for CI smoke runs.
    """
    return SimulationConfig(
        k=16,
        message_length=32,
        rate=3e-4,
        hotspot_fraction=0.2,
        warmup_cycles=0,
        measure_cycles=4_000 if quick else 20_000,
        seed=99,
        engine=engine,
    )


def bench_model(kernel: str = "auto") -> HotSpotLatencyModel:
    """The standard model-throughput benchmark instance."""
    return HotSpotLatencyModel(
        k=16, message_length=32, hotspot_fraction=0.4, kernel=kernel
    )


def bench_model_rates() -> "np.ndarray":
    """The standard panel-shaped rate grid of the batched model bench.

    The Figure-1 ``h = 40%`` panel grid of
    :mod:`repro.experiments.figures` — the exact shape a ``repro
    figure`` invocation hands :meth:`HotSpotLatencyModel.sweep`, so the
    ``model_batch`` metric measures real figure-regeneration work.
    """
    from repro.experiments.figures import get_panel

    return np.asarray(get_panel("fig1_h40").rates, dtype=float)


@dataclass(frozen=True)
class SimRun:
    """Work counters of one benchmark simulation run."""

    cycles_run: int
    flit_moves: int
    completed: int
    engine: str
    kernel: str


def run_sim_once(cfg: SimulationConfig) -> SimRun:
    """Run one simulation and return its work counters."""
    sim = Simulation(cfg)
    result = sim.run()
    engine = sim.workload.engine
    return SimRun(
        cycles_run=result.cycles_run,
        flit_moves=engine.counters.flit_moves,
        completed=result.num_completed,
        engine=sim.workload.engine_kind,
        kernel=getattr(engine, "kernel_name", "python"),
    )


def throughput_stats(run: SimRun, seconds: float) -> Dict[str, float]:
    """Throughput numbers for one timed run (shared by all front-ends)."""
    return {
        "cycles_per_sec": run.cycles_run / seconds,
        "flits_per_sec": run.flit_moves / seconds,
    }


def measure_simulator(
    cfg: Optional[SimulationConfig] = None,
    *,
    rounds: int = 3,
    quick: bool = False,
    engine: str = "auto",
) -> Dict[str, object]:
    """Best-of-``rounds`` simulator throughput on the benchmark config."""
    if cfg is None:
        cfg = bench_sim_config(quick=quick, engine=engine)
    best = float("inf")
    run: Optional[SimRun] = None
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        run = run_sim_once(cfg)
        best = min(best, time.perf_counter() - t0)
    assert run is not None
    return {
        "seconds": best,
        "cycles_run": run.cycles_run,
        "flit_moves": run.flit_moves,
        "completed": run.completed,
        "engine": run.engine,
        "kernel": run.kernel,
        **throughput_stats(run, best),
    }


def measure_model(*, rounds: int = 3, kernel: str = "auto") -> Dict[str, object]:
    """Best-of-``rounds`` analytical-model evaluation throughput.

    Times *independent single-rate solves* — the cost every
    ``saturation_rate`` probe and every cold evaluation pays; the
    batched figure-panel path is measured by :func:`measure_model_batch`.
    """
    model = bench_model(kernel)
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        for _ in range(_MODEL_EVALS):
            result = model.evaluate(2e-4)
        best = min(best, time.perf_counter() - t0)
    assert result.finite
    return {
        "solves_per_sec": _MODEL_EVALS / best,
        "seconds": best,
        "kernel": model.kernel,
    }


def measure_model_batch(*, rounds: int = 3, kernel: str = "auto") -> Dict[str, object]:
    """Best-of-``rounds`` throughput of a panel-shaped batched sweep.

    One :meth:`HotSpotLatencyModel.sweep` over the standard panel grid
    (:func:`bench_model_rates`) per timing round — with the vector
    kernel the whole grid is a single batched fixed-point solve with
    warm-start chaining, so this is the figure-regeneration metric.
    """
    model = bench_model(kernel)
    rates = bench_model_rates()
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        sweep = model.sweep(rates)
        best = min(best, time.perf_counter() - t0)
    assert len(sweep.points) == len(rates)
    return {
        "points_per_sec": len(rates) / best,
        "points": int(len(rates)),
        "seconds": best,
        "kernel": model.kernel,
    }


def bench_sim_batch_configs(
    quick: bool = False, batch: int = 8
) -> List[SimulationConfig]:
    """The standard batched-simulation benchmark: ``batch`` same-shape runs.

    Long messages at light load on the paper's 16x16 torus — the
    event-sparse regime batching targets, where the span kernel advances
    many cycles per call.  The configs differ only in seed, like the
    same sweep point re-run across a seed panel.
    """
    from dataclasses import replace

    base = SimulationConfig(
        k=16,
        message_length=256,
        rate=2e-5,
        hotspot_fraction=0.2,
        warmup_cycles=1_000,
        measure_cycles=4_000 if quick else 20_000,
        seed=100,
    )
    return [replace(base, seed=100 + i) for i in range(batch)]


def measure_sim_batch(
    *, rounds: int = 3, quick: bool = False, batch: int = 8
) -> Dict[str, object]:
    """Aggregate throughput of ``batch`` networks: sequential vs batched.

    Times the same ``batch`` same-shape simulations twice per round —
    one :class:`Simulation` after another, then one
    :class:`~repro.simulator.BatchedSoAEngine` advancing every network
    per kernel call — and reports best-of-``rounds`` seconds for each
    side, the aggregate cycles/sec speedup, and whether the batched
    results stayed bit-identical to the solo runs.
    """
    from repro.simulator.batch import BatchedSoAEngine
    from repro.simulator.network import TorusWorkload
    from repro.simulator.sim import _workload_result

    cfgs = bench_sim_batch_configs(quick=quick, batch=batch)
    # Warm the kernel cache so neither side pays the one-off compile.
    Simulation(
        bench_sim_config(quick=True)
    ).run()
    best_seq = float("inf")
    best_batch = float("inf")
    solo_results = batch_results = None
    kernel = "python"
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        solo_results = [Simulation(c).run() for c in cfgs]
        best_seq = min(best_seq, time.perf_counter() - t0)
        workloads = [TorusWorkload(c) for c in cfgs]
        engine = BatchedSoAEngine(workloads)
        t0 = time.perf_counter()
        engine.run()
        best_batch = min(best_batch, time.perf_counter() - t0)
        batch_results = [_workload_result(w) for w in workloads]
        kernel = engine.kernel_name
    assert solo_results is not None and batch_results is not None
    cycles = sum(r.cycles_run for r in solo_results)
    return {
        "batch": int(len(cfgs)),
        "cycles_run": int(cycles),
        "seconds_sequential": best_seq,
        "seconds_batched": best_batch,
        "cycles_per_sec_sequential": cycles / best_seq,
        "cycles_per_sec_batched": cycles / best_batch,
        "speedup": best_seq / best_batch,
        "bit_identical": bool(
            all(s == b for s, b in zip(solo_results, batch_results))
        ),
        "kernel": kernel,
    }


def measure_sweep(*, jobs: int = 2, backend: object = None) -> Dict[str, object]:
    """End-to-end throughput of a small parallel sweep campaign.

    Runs a tiny uncached panel through the resilient sweep engine
    (``jobs`` pool workers, short measurement window) and reports
    points/sec plus the engine's resilience counters — retries, timeouts,
    pool rebuilds and terminally failed points — so a campaign that only
    succeeded by retrying shows up in the BENCH report rather than
    passing silently.  ``backend`` overrides the execution substrate
    (see :func:`measure_distributed_sweep`).
    """
    from repro.experiments.figures import PanelSpec
    from repro.experiments.sweep import SweepEngine

    spec = PanelSpec(
        figure=1,
        name="bench_sweep",
        k=4,
        message_length=8,
        hotspot_fraction=0.2,
        rates=(0.002, 0.01, 0.02),
        paper_axis_max_rate=0.02,
        paper_axis_max_latency=200.0,
    )
    engine = SweepEngine(jobs=jobs, use_cache=False, backend=backend)
    t0 = time.perf_counter()
    sweep = engine.simulation_sweep(spec, measure_cycles=2_000)
    seconds = time.perf_counter() - t0
    points = len(sweep.points)
    return {
        "points": points,
        "points_per_sec": points / seconds if seconds > 0 else 0.0,
        "seconds": seconds,
        "jobs": jobs,
        "backend": engine.backend.name,
        "failed_points": len(sweep.failures),
        **engine.stats.as_dict(),
    }


def measure_distributed_sweep(*, workers: int = 2) -> Dict[str, object]:
    """The :func:`measure_sweep` campaign on the file-queue backend.

    Spawns ``workers`` real ``repro worker`` subprocesses cooperating
    through a throwaway campaign directory, so the BENCH report captures
    the lease/heartbeat protocol overhead next to the local-pool number
    — the two sections are directly comparable (same panel, same
    window).
    """
    import tempfile

    from repro.backends import FileQueueBackend

    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
        backend = FileQueueBackend(
            tmp,
            spawn_workers=workers,
            lease_timeout=30.0,
            heartbeat_timeout=10.0,
            poll_interval=0.05,
            worker_poll_interval=0.05,
            worker_heartbeat_interval=1.0,
            speculate_factor=None,
        )
        section = measure_sweep(jobs=1, backend=backend)
    section["workers"] = workers
    return section


def config_hash(cfg: SimulationConfig) -> str:
    """Stable short hash of a simulation config (cache-key compatible)."""
    blob = json.dumps(asdict(cfg), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def build_report(
    *, quick: bool = False, rounds: int = 3, engine: str = "auto"
) -> Dict[str, object]:
    """Measure everything and assemble one ``BENCH_*.json`` payload."""
    cfg = bench_sim_config(quick=quick, engine=engine)
    return {
        "schema": 1,
        "kind": "repro-bench",
        "quick": quick,
        "rounds": rounds,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_rev(),
        "config_hash": config_hash(cfg),
        "simulator": measure_simulator(cfg, rounds=rounds),
        "model": measure_model(rounds=rounds),
        "model_batch": measure_model_batch(rounds=rounds),
        "sim_batch": measure_sim_batch(rounds=rounds, quick=quick),
        "resilience": measure_sweep(),
        # Worker subprocess startup dominates in the quick (CI smoke)
        # window, so the distributed section is full-report only.
        "distributed": None if quick else measure_distributed_sweep(),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def default_report_name(report: Dict[str, object]) -> str:
    stamp = str(report["timestamp"]).replace(":", "").replace("-", "")
    stamp = stamp.split("+")[0]
    return f"BENCH_{report['git_rev']}_{stamp}.json"


def write_report(report: Dict[str, object], path: "Path | str") -> Path:
    path = Path(path)
    if path.is_dir():
        path = path / default_report_name(report)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def check_regression(
    report: Dict[str, object],
    baseline: Dict[str, object],
    max_slowdown: float = MAX_SLOWDOWN,
) -> List[str]:
    """Failure messages when ``report`` regressed vs ``baseline``.

    Gates on the two throughput metrics this repository's perf work
    targets — simulator cycles/sec and analytical-model solves/sec: a
    drop below ``baseline / max_slowdown`` on either fails.  Engine,
    model-kernel or quick-mode mismatches are flagged as incomparable
    rather than silently passed.  Returns an empty list when the report
    is acceptable.
    """
    failures: List[str] = []
    try:
        new = float(report["simulator"]["cycles_per_sec"])  # type: ignore[index]
        old = float(baseline["simulator"]["cycles_per_sec"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        return ["baseline or report is missing simulator.cycles_per_sec"]
    if bool(report.get("quick")) != bool(baseline.get("quick")):
        failures.append(
            "quick-mode mismatch between report and baseline "
            f"(report quick={report.get('quick')}, "
            f"baseline quick={baseline.get('quick')}): numbers are not "
            "comparable"
        )
    new_engine = report["simulator"].get("engine")  # type: ignore[index]
    old_engine = baseline["simulator"].get("engine")  # type: ignore[index]
    if new_engine != old_engine:
        failures.append(
            f"engine mismatch between report ({new_engine}) and baseline "
            f"({old_engine}): numbers are not comparable"
        )
    if new * max_slowdown < old:
        failures.append(
            f"simulator throughput regressed >{max_slowdown:g}x: "
            f"{new:,.0f} cycles/s vs baseline {old:,.0f} cycles/s "
            f"(baseline rev {baseline.get('git_rev', '?')})"
        )
    try:
        new_m = float(report["model"]["solves_per_sec"])  # type: ignore[index]
        old_m = float(baseline["model"]["solves_per_sec"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        failures.append("baseline or report is missing model.solves_per_sec")
        return failures
    new_kernel = report["model"].get("kernel")  # type: ignore[index]
    old_kernel = baseline["model"].get("kernel")  # type: ignore[index]
    # Pre-kernel baselines (no "kernel" field) timed the only (scalar)
    # implementation there was; only flag a mismatch when both sides
    # declare a kernel.
    if new_kernel is not None and old_kernel is not None and new_kernel != old_kernel:
        failures.append(
            f"model-kernel mismatch between report ({new_kernel}) and "
            f"baseline ({old_kernel}): numbers are not comparable"
        )
    if new_m * max_slowdown < old_m:
        failures.append(
            f"model throughput regressed >{max_slowdown:g}x: "
            f"{new_m:,.1f} solves/s vs baseline {old_m:,.1f} solves/s "
            f"(baseline rev {baseline.get('git_rev', '?')})"
        )
    # The batched-panel metric gates too, where both sides record it
    # (pre-batch baselines lack the section; the gates above still
    # apply against them).
    try:
        new_b = float(report["model_batch"]["points_per_sec"])  # type: ignore[index]
        old_b = float(baseline["model_batch"]["points_per_sec"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        new_b = old_b = None
    if new_b is not None and old_b is not None and new_b * max_slowdown < old_b:
        failures.append(
            f"batched model throughput regressed >{max_slowdown:g}x: "
            f"{new_b:,.1f} points/s vs baseline {old_b:,.1f} points/s "
            f"(baseline rev {baseline.get('git_rev', '?')})"
        )
    # Same treatment for the batched-simulator metric (pre-batch
    # baselines lack the section): gate aggregate batched cycles/sec,
    # and fail outright if batched results stopped matching solo runs.
    sim_batch = report.get("sim_batch")
    if isinstance(sim_batch, dict) and not sim_batch.get("bit_identical", True):
        failures.append(
            "batched simulation results are no longer bit-identical to "
            "sequential runs"
        )
    try:
        new_s = float(report["sim_batch"]["cycles_per_sec_batched"])  # type: ignore[index]
        old_s = float(baseline["sim_batch"]["cycles_per_sec_batched"])  # type: ignore[index]
    except (KeyError, TypeError, ValueError):
        return failures
    if new_s * max_slowdown < old_s:
        failures.append(
            f"batched simulator throughput regressed >{max_slowdown:g}x: "
            f"{new_s:,.0f} cycles/s vs baseline {old_s:,.0f} cycles/s "
            f"(baseline rev {baseline.get('git_rev', '?')})"
        )
    return failures
