"""Terminal plots for latency curves (no plotting dependencies).

The paper's figures are latency-vs-offered-traffic line charts; this
module renders the same charts as ASCII so the CLI and examples can show
curve *shape* (the reproduction target) directly in a terminal or log
file.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import SweepResult

__all__ = ["ascii_plot", "plot_sweeps"]

_MARKERS = "ox+*#@%"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    x_label: str = "traffic (messages/cycle)",
    y_label: str = "latency (cycles)",
    y_cap: Optional[float] = None,
) -> str:
    """Render named (x, y) series on one ASCII chart.

    Non-finite y values are dropped (saturated points have no finite
    latency — exactly like the paper's curves, which simply stop).
    ``y_cap`` clips the y axis so a near-saturation spike does not
    flatten the rest of the curve.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4 characters")
    pts: List[Tuple[float, float, int]] = []
    for idx, (_, data) in enumerate(series.items()):
        for x, y in data:
            if math.isfinite(x) and math.isfinite(y):
                if y_cap is not None and y > y_cap:
                    y = y_cap
                pts.append((x, y, idx))
    if not pts:
        return "(no finite points to plot)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in pts:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = _MARKERS[idx % len(_MARKERS)]

    lines = []
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{y_label}   [{legend}]")
    for r, row_chars in enumerate(grid):
        if r == 0:
            label = f"{y_hi:10.4g} |"
        elif r == height - 1:
            label = f"{y_lo:10.4g} |"
        else:
            label = "           |"
        lines.append(label + "".join(row_chars))
    lines.append("           +" + "-" * width)
    left = f"{x_lo:.4g}"
    right = f"{x_hi:.4g}"
    pad = max(1, width - len(left) - len(right))
    lines.append("            " + left + " " * pad + right + f"  {x_label}")
    return "\n".join(lines)


def plot_sweeps(
    sweeps: Sequence[SweepResult],
    *,
    width: int = 64,
    height: int = 18,
    y_cap: Optional[float] = None,
) -> str:
    """Plot one or more latency sweeps (model and/or simulation)."""
    series = {
        s.label: [(p.rate, p.latency) for p in s.points if not p.saturated]
        for s in sweeps
    }
    return ascii_plot(series, width=width, height=height, y_cap=y_cap)
