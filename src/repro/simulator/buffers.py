"""Per-channel virtual-channel bookkeeping.

Each physical channel owns ``V`` virtual channels partitioned into
*classes*.  Deterministic runs use the two Dally–Seitz dateline classes
(class 0 gets the first ``ceil(V/2)``); adaptive runs use three classes —
one escape VC per dateline class plus an adaptive pool (Duato's scheme:
the escape sub-network stays deadlock-free, the adaptive VCs are
unrestricted).

The pool tracks which message holds each VC, queues pending allocation
requests per class (FCFS, as the analytical model's FIFO queueing
assumes), supports cancellation of *impatient* requests (adaptive
headers re-evaluate their choice each cycle rather than committing to a
queue), and arbitrates the physical channel's one-flit-per-cycle
bandwidth among ready VCs with a round-robin pointer (Dally's fair
time-multiplexing [3]).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

__all__ = [
    "VirtualChannelPool",
    "vc_class_partition",
    "adaptive_partition",
]


def vc_class_partition(num_vcs: int) -> Tuple[range, range]:
    """VC index ranges of dateline class 0 and class 1 (deterministic).

    Class 0 receives ``ceil(V/2)``.  Both classes are always non-empty
    for ``V >= 2``, which assumption (vi) guarantees.
    """
    if num_vcs < 2:
        raise ValueError(f"need >= 2 virtual channels, got {num_vcs}")
    split = (num_vcs + 1) // 2
    return range(0, split), range(split, num_vcs)


def adaptive_partition(num_vcs: int) -> Tuple[range, range, range]:
    """Escape-0, escape-1, adaptive VC ranges (Duato-style).

    One escape VC per dateline class keeps the escape sub-network
    deadlock-free; the remaining ``V - 2`` VCs form the adaptive pool,
    so adaptive routing needs ``V >= 3``.
    """
    if num_vcs < 3:
        raise ValueError(
            f"adaptive routing needs >= 3 virtual channels "
            f"(2 escape + >=1 adaptive), got {num_vcs}"
        )
    return range(0, 1), range(1, 2), range(2, num_vcs)


class VirtualChannelPool:
    """State of one physical channel's virtual channels.

    ``holders[v]`` is the id of the message holding VC ``v`` (-1 when
    free); ``holder_hops[v]`` is the index of the route hop the message
    holds this VC for.

    Parameters
    ----------
    num_vcs:
        Virtual channels on this physical channel.
    partition:
        Per-class VC index sequences; defaults to the two dateline
        classes.  Classes must be disjoint and cover ``range(num_vcs)``.
    """

    __slots__ = (
        "num_vcs",
        "num_classes",
        "holders",
        "holder_hops",
        "free_by_class",
        "pending",
        "rr",
        "busy_count",
        "pending_count",
        "impatient_count",
        "_class_of",
    )

    def __init__(
        self,
        num_vcs: int,
        partition: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if partition is None:
            partition = vc_class_partition(num_vcs)
        covered: List[int] = []
        self._class_of = [-1] * num_vcs
        for cls, vcs in enumerate(partition):
            for v in vcs:
                if not 0 <= v < num_vcs:
                    raise ValueError(f"VC index {v} out of range")
                if self._class_of[v] != -1:
                    raise ValueError(f"VC {v} assigned to two classes")
                self._class_of[v] = cls
                covered.append(v)
        if len(covered) != num_vcs:
            raise ValueError("partition must cover every virtual channel")
        self.num_vcs = num_vcs
        self.num_classes = len(partition)
        self.holders: List[int] = [-1] * num_vcs
        self.holder_hops: List[int] = [-1] * num_vcs
        self.free_by_class: List[List[int]] = [
            list(reversed(list(vcs))) for vcs in partition
        ]
        self.pending: List[Deque[Tuple[int, int, bool]]] = [
            deque() for _ in partition
        ]
        self.rr = 0
        self.busy_count = 0
        # Aggregate request counters so the per-cycle allocation phase can
        # skip empty classes without touching every deque.
        self.pending_count = 0
        self.impatient_count = [0] * len(partition)

    # ------------------------------------------------------------------
    def vc_class(self, vc: int) -> int:
        return self._class_of[vc]

    def free_count(self, vc_class: int) -> int:
        return len(self.free_by_class[vc_class])

    def request(
        self, msg_id: int, hop: int, vc_class: int, impatient: bool = False
    ) -> None:
        """Queue an FCFS allocation request for a VC of ``vc_class``.

        ``impatient`` requests are cancelled (returned by
        :meth:`drain_impatient`) instead of waiting when no VC is free in
        the same allocation phase.
        """
        self.pending[vc_class].append((msg_id, hop, impatient))
        self.pending_count += 1
        if impatient:
            self.impatient_count[vc_class] += 1

    def has_pending(self) -> bool:
        return self.pending_count > 0

    def grant_one(self, vc_class: int) -> Optional[Tuple[int, int, int]]:
        """Grant the oldest pending request of a class if a VC is free.

        Returns ``(msg_id, hop, vc)`` or ``None``.
        """
        if not self.pending[vc_class] or not self.free_by_class[vc_class]:
            return None
        msg_id, hop, impatient = self.pending[vc_class].popleft()
        self.pending_count -= 1
        if impatient:
            self.impatient_count[vc_class] -= 1
        vc = self.free_by_class[vc_class].pop()
        self.holders[vc] = msg_id
        self.holder_hops[vc] = hop
        self.busy_count += 1
        return msg_id, hop, vc

    def drain_impatient(self, vc_class: int) -> List[Tuple[int, int]]:
        """Cancel the remaining impatient requests of a class.

        Returns the cancelled ``(msg_id, hop)`` pairs (patient requests
        stay queued in order).
        """
        if not self.impatient_count[vc_class]:
            return []
        queue = self.pending[vc_class]
        kept: Deque[Tuple[int, int, bool]] = deque()
        cancelled: List[Tuple[int, int]] = []
        while queue:
            msg_id, hop, impatient = queue.popleft()
            if impatient:
                cancelled.append((msg_id, hop))
            else:
                kept.append((msg_id, hop, impatient))
        queue.extend(kept)
        self.pending_count -= len(cancelled)
        self.impatient_count[vc_class] = 0
        return cancelled

    def release(self, vc: int) -> None:
        """Return a VC to its class's free list."""
        if self.holders[vc] == -1:
            raise RuntimeError(f"double release of virtual channel {vc}")
        self.holders[vc] = -1
        self.holder_hops[vc] = -1
        self.free_by_class[self.vc_class(vc)].append(vc)
        self.busy_count -= 1

    def busy_vcs(self) -> List[int]:
        return [v for v in range(self.num_vcs) if self.holders[v] != -1]
