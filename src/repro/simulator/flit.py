"""Message state tracked by the flit-level engine.

The engine does not materialise individual flit objects: because flits of
a message move in order through a fixed route, the full flit-level state
is captured by *how many flits of the message have crossed each channel
of its route* (``crossed[i]``).  Buffer occupancies, header position and
tail position are all derived from that vector:

* flits in the VC buffer at the downstream end of route channel ``i``:
  ``crossed[i] - crossed[i+1]`` (the last hop's buffer drains instantly
  into the PE — assumption iv);
* the header has reached router ``i+1`` iff ``crossed[i] >= 1``;
* the tail has left channel ``i``'s buffer iff ``crossed[i+1] == length``.

This representation is exact for wormhole switching with in-order flits
and is what keeps a pure-Python flit-level simulation tractable.

Only the reference engine advances ``crossed`` per flit.  The default
structure-of-arrays engine (:mod:`repro.simulator.soa`) tracks flit
progress in its own flat per-VC arrays and uses :class:`Message` as a
thin view at injection, header-arrival, tail-departure and delivery
boundaries; under that engine ``crossed`` stays at its initial zeros
(``route_channels``, ``route_classes``, ``vcs`` and ``final_hop`` are
kept current by both engines).
"""

from __future__ import annotations

from typing import List

__all__ = ["Message"]


class Message:
    """In-flight message state.

    Attributes
    ----------
    route_channels:
        Engine channel ids, one per hop, in traversal order.
    route_classes:
        Dateline deadlock class (0/1) per hop.
    crossed:
        Flits that have fully crossed each route channel.
    vcs:
        Virtual-channel index held on each route channel (-1 before
        allocation / after release).
    alloc_hops:
        Number of leading hops whose VC has been allocated; the header
        may only cross channel ``i`` once ``alloc_hops > i``.
    """

    __slots__ = (
        "msg_id",
        "src",
        "dest",
        "length",
        "generated_at",
        "injected_at",
        "route_channels",
        "route_classes",
        "crossed",
        "vcs",
        "alloc_hops",
        "is_hot",
        "dynamic",
        "final_hop",
        "wrapped_dims",
    )

    def __init__(
        self,
        msg_id: int,
        src: int,
        dest: int,
        length: int,
        generated_at: int,
        route_channels: List[int],
        route_classes: List[int],
        is_hot: bool,
        dynamic: bool = False,
    ) -> None:
        if not route_channels:
            raise ValueError("a message must cross at least one channel")
        if len(route_channels) != len(route_classes):
            raise ValueError("route_channels and route_classes length mismatch")
        self.msg_id = msg_id
        self.src = src
        self.dest = dest
        self.length = length
        self.generated_at = generated_at
        self.injected_at = -1
        self.route_channels = route_channels
        self.route_classes = route_classes
        self.crossed = [0] * len(route_channels)
        self.vcs = [-1] * len(route_channels)
        self.alloc_hops = 0
        self.is_hot = is_hot
        # Dynamic (adaptive) messages grow their route hop by hop; the
        # final hop index is discovered when the header reaches the
        # destination's router.  Fixed-route messages know it up front.
        self.dynamic = dynamic
        self.final_hop = -1 if dynamic else len(route_channels) - 1
        self.wrapped_dims = 0  # bitmask: dimensions whose wrap was crossed

    @property
    def num_hops(self) -> int:
        return len(self.route_channels)

    def buffer_occupancy(self, hop: int) -> int:
        """Flits currently sitting in the buffer downstream of ``hop``."""
        if hop == self.final_hop:
            return 0  # instantaneous ejection (assumption iv)
        if hop + 1 >= len(self.crossed):
            return self.crossed[hop]  # next hop not yet chosen (dynamic)
        return self.crossed[hop] - self.crossed[hop + 1]

    def flits_available_upstream(self, hop: int) -> int:
        """Flits ready to cross channel ``hop`` this cycle."""
        if hop == 0:
            return self.length - self.crossed[0]
        return self.crossed[hop - 1] - self.crossed[hop]

    def is_delivered(self) -> bool:
        return (
            self.final_hop >= 0
            and self.crossed[self.final_hop] == self.length
        )

    def extend_route(self, channel: int, vc_class: int) -> None:
        """Append the next hop of a dynamic route."""
        if not self.dynamic:
            raise ValueError("cannot extend a fixed route")
        self.route_channels.append(channel)
        self.route_classes.append(vc_class)
        self.crossed.append(0)
        self.vcs.append(-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(id={self.msg_id}, {self.src}->{self.dest}, "
            f"len={self.length}, crossed={self.crossed})"
        )
