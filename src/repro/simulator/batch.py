"""Batched multi-configuration simulation: B networks per kernel call.

A parameter sweep is many *same-shape* simulations — identical
``(k, n, bidirectional, model_ejection, num_vcs)`` and therefore
identical array shapes — differing only in rate, seed, message length,
buffer depth or run control.  Run solo, each pays the full Python
per-cycle overhead (arrival checks, ctypes marshalling, loop
bookkeeping) for one network's worth of kernel work.

:class:`BatchedSoAEngine` amortises that overhead: it *adopts* B
freshly constructed :class:`~repro.simulator.network.TorusWorkload`\\ s
by stacking their engines' flat int32 slot arrays into contiguous
``(B, slots + 1)`` planes (each row keeps its own sentinel slot) and
rebinding every engine's arrays to views of its row.  All inherited
boundary, allocation and arrival machinery then transparently operates
on the shared planes, while one kernel invocation per tick — the C
``repro_soa_cycle_batch`` or the batched numpy fallback — sweeps every
active row at once.  Boundary events drain as one merged list of
global indices ``row * row_stride + slot``, decoded here into
``(config, slot)`` and dispatched to the owning engine.

Rows are fully independent: each advances its own clock (warmup
snapshots, idle fast-forward and saturation/target exits all happen at
per-row cycles), and a finished configuration *retires in place* —
its ``active`` flag drops and its ``avail`` row is zeroed so it stops
producing winners without reshaping the batch.  Every row is
bit-identical to the same configuration run solo on the single-config
:class:`~repro.simulator.soa.SoACycleEngine`, which stays untouched as
the equivalence oracle (see ``tests/test_batch_equivalence.py``).
"""

from __future__ import annotations

import ctypes
import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.simulator.config import SimulationConfig
from repro.simulator.kernel import load_c_kernel_batch
from repro.simulator.network import TorusWorkload
from repro.simulator.soa import SoACycleEngine, resolve_soa_kernel

__all__ = ["BatchedSoAEngine", "batch_shape_key"]

#: Slot arrays (``(slots + 1,)`` int32, sentinel last) replaced by
#: plane-row views on adoption.
_ADOPTED_SLOT_ARRAYS = (
    "_avail",
    "_head_room",
    "_moved",
    "_nxt_evt",
    "_nxt_idx",
    "_prv_idx",
)


def batch_shape_key(config: SimulationConfig) -> Tuple[int, int, bool, bool, int]:
    """Array-shape signature of a configuration.

    Configurations agreeing on this key allocate identically shaped
    engine arrays (same channel count and VCs per channel) and can
    share one batch; everything else — rate, seed, message length,
    buffer depth, routing, hot-spot and run control — may differ per
    row.
    """
    return (
        config.k,
        config.n,
        config.bidirectional,
        config.model_ejection,
        config.num_vcs,
    )


class _Row:
    """Per-configuration loop state, hoisted once at construction."""

    __slots__ = (
        "index",
        "workload",
        "engine",
        "counters",
        "heap",
        "due",
        "cur",
        "total",
        "warmup_end",
        "backlog_limit",
        "target",
        "all_stats",
        "done",
    )

    def __init__(self, index: int, workload: TorusWorkload) -> None:
        cfg = workload.config
        self.index = index
        self.workload = workload
        self.engine = workload.engine
        self.counters = workload.engine.counters
        self.heap = workload._arrivals
        self.due = self.heap[0][0] if self.heap else math.inf
        self.cur = 0
        self.total = cfg.total_cycles
        self.warmup_end = workload.warmup_end
        self.backlog_limit = int(cfg.saturation_backlog_factor * cfg.num_nodes)
        self.target = cfg.target_completions
        self.all_stats = workload.all_stats
        self.done = False


class BatchedSoAEngine:
    """Advance B same-shape :class:`TorusWorkload`\\ s in lock-step ticks.

    Parameters
    ----------
    workloads:
        Freshly constructed workloads (not yet run) whose engines are
        all :class:`~repro.simulator.soa.SoACycleEngine` instances of
        one shape (see :func:`batch_shape_key`).  Their state arrays
        are adopted into shared planes; after :meth:`run` each workload
        carries its final statistics exactly as if it had run solo.
    kernel:
        ``"auto"`` / ``"c"`` / ``"numpy"``, normalised exactly like
        ``$REPRO_SOA_KERNEL`` (see
        :func:`~repro.simulator.soa.resolve_soa_kernel`).
    """

    def __init__(
        self, workloads: Sequence[TorusWorkload], kernel: str = "auto"
    ) -> None:
        if not workloads:
            raise ValueError("need at least one workload to batch")
        engines: List[SoACycleEngine] = []
        for w in workloads:
            e = w.engine
            if not isinstance(e, SoACycleEngine):
                raise TypeError(
                    "BatchedSoAEngine batches structure-of-arrays engines "
                    f"only, got {type(e).__name__} (engine="
                    f"{w.engine_kind!r}); run reference-engine "
                    "configurations solo"
                )
            if e.cycle != 0 or e.messages or e.counters.cycles_run:
                raise ValueError(
                    "workloads must be freshly constructed (engine already "
                    f"at cycle {e.cycle})"
                )
            engines.append(e)
        first = engines[0]
        num_channels = first.num_channels
        num_vcs = first.num_vcs
        for w, e in zip(workloads, engines):
            if e.num_channels != num_channels or e.num_vcs != num_vcs:
                raise ValueError(
                    "all workloads in a batch must share one array shape "
                    f"(batch_shape_key): expected {num_channels} channels "
                    f"x {num_vcs} VCs, got {e.num_channels} x {e.num_vcs} "
                    f"for seed {w.config.seed}"
                )
        num_rows = len(workloads)
        n_slots = num_channels * num_vcs
        row_stride = n_slots + 1
        self.num_rows = num_rows
        self.num_channels = num_channels
        self.num_vcs = num_vcs
        self.workloads = list(workloads)
        self._row_stride = row_stride

        # ------------------------------------------------------------------
        # Plane allocation + adoption: stack each engine's fresh arrays
        # into (B, ...) planes, then rebind the engine attributes to row
        # views so every inherited method (grants, releases, boundary
        # handling, numpy solo kernel) transparently works on the planes.
        # ------------------------------------------------------------------
        planes: Dict[str, np.ndarray] = {
            name: np.stack([getattr(e, name) for e in engines])
            for name in _ADOPTED_SLOT_ARRAYS
        }
        self._avail = planes["_avail"]
        self._head_room = planes["_head_room"]
        self._moved = planes["_moved"]
        self._nxt_evt = planes["_nxt_evt"]
        self._nxt_idx = planes["_nxt_idx"]
        self._prv_idx = planes["_prv_idx"]
        self._rr = np.stack([e._rr for e in engines])
        self._busy_cnt = np.stack([e._busy_cnt for e in engines])
        self._flits = np.stack([e.channel_flit_counts for e in engines])
        for b, e in enumerate(engines):
            for name in _ADOPTED_SLOT_ARRAYS:
                setattr(e, name, planes[name][b])
            e._rr = self._rr[b]
            e._busy_cnt = self._busy_cnt[b]
            e.channel_flit_counts = self._flits[b]
            e._avail_v = e._avail[:n_slots]
            e._head_v = e._head_room[:n_slots]
            # The engine's solo C context still holds the addresses of
            # the abandoned arrays; disarm it so a stray step() runs the
            # (adopted, correct) numpy path instead.
            e._c_fn = None

        self._active = np.ones(num_rows, dtype=np.int32)
        self._win_scratch = np.empty(num_channels, dtype=np.int32)
        self._busy_scratch = np.empty(num_channels, dtype=np.int32)
        self._evt_scratch = np.empty(num_rows * num_channels, dtype=np.int32)
        self._nev_out = np.zeros(1, dtype=np.int32)
        self._moves_out = np.zeros(num_rows, dtype=np.int64)
        self._cur = np.zeros(num_rows, dtype=np.int64)
        self._stop = np.zeros(num_rows, dtype=np.int64)
        self._last_move = np.full(num_rows, -1, dtype=np.int64)
        self._zero_moves = [0] * num_rows

        self.kernel_name = resolve_soa_kernel(kernel)
        self._batch_fn = (
            load_c_kernel_batch() if self.kernel_name == "c" else None
        )
        if self._batch_fn is not None:
            # One context block (scalars + raw plane addresses), mirroring
            # _BATCH_CTX_LAYOUT in repro.simulator.kernel; the backing
            # arrays are instance attributes so the addresses stay valid.
            self._ctx = np.array(
                [
                    num_rows,
                    num_channels,
                    num_vcs,
                    row_stride,
                    self._active.ctypes.data,
                    self._busy_cnt.ctypes.data,
                    self._rr.ctypes.data,
                    self._avail.ctypes.data,
                    self._head_room.ctypes.data,
                    self._moved.ctypes.data,
                    self._nxt_evt.ctypes.data,
                    self._nxt_idx.ctypes.data,
                    self._prv_idx.ctypes.data,
                    self._flits.ctypes.data,
                    self._win_scratch.ctypes.data,
                    self._busy_scratch.ctypes.data,
                    self._evt_scratch.ctypes.data,
                    self._nev_out.ctypes.data,
                    self._moves_out.ctypes.data,
                    self._cur.ctypes.data,
                    self._stop.ctypes.data,
                    self._last_move.ctypes.data,
                ],
                dtype=np.uint64,
            )
            self._ctx_ptr = self._ctx.ctypes.data_as(
                ctypes.POINTER(ctypes.c_uint64)
            )
        # Persistent views for the batched numpy kernel: per-VC readiness
        # cube (sentinel column excluded) and flat plane aliases indexed
        # by global slot (row * row_stride + slot).
        self._av3 = self._avail[:, :n_slots].reshape(
            num_rows, num_channels, num_vcs
        )
        self._hd3 = self._head_room[:, :n_slots].reshape(
            num_rows, num_channels, num_vcs
        )
        self._avail_f = self._avail.reshape(-1)
        self._head_f = self._head_room.reshape(-1)
        self._moved_f = self._moved.reshape(-1)
        self._nxt_evt_f = self._nxt_evt.reshape(-1)
        self._nxt_idx_f = self._nxt_idx.reshape(-1)
        self._prv_idx_f = self._prv_idx.reshape(-1)

        self._rows = [_Row(b, w) for b, w in enumerate(workloads)]
        self._ran = False

    # ------------------------------------------------------------------
    def _retire(self, row: _Row) -> None:
        """Finish a row in place: final snapshot, drop out of the sweep."""
        row.done = True
        w = row.workload
        e = row.engine
        if w._flits_at_warmup is None:
            w._flits_at_warmup = e.channel_flit_counts.copy()
            w._cycles_at_warmup = e.counters.cycles_run
        self._active[row.index] = 0
        # A retired row must stop producing winners without reshaping
        # the batch: the C kernel skips it via the active flag, and with
        # avail zeroed no slot can look ready to the numpy kernel either
        # (its flit counts and statistics are already snapshotted).
        self._avail[row.index].fill(0)

    # ------------------------------------------------------------------
    def _cycle_numpy_batch(self) -> Tuple[List[int], List[int]]:
        """Batched scan + apply, integer-identical to the C batch kernel.

        Returns per-row move counts and the merged, ascending list of
        global boundary-event indices.
        """
        num_vcs = self.num_vcs
        ready = (self._av3 > 0) & (self._hd3 > 0)
        rr = self._rr
        if num_vcs == 2:
            r0 = ready[:, :, 0]
            r1 = ready[:, :, 1]
            wb, wc = np.nonzero(r0 | r1)
            if wb.size == 0:
                return self._zero_moves, []
            wvc = np.where(r0 & r1, rr, r1)[wb, wc]
        else:
            best = np.full((self.num_rows, self.num_channels), num_vcs,
                           dtype=np.int32)
            vcsel = np.zeros_like(best)
            for v in range(num_vcs):
                rel = (v - rr) % num_vcs
                pri = np.where(ready[:, :, v], rel, num_vcs)
                upd = pri < best
                vcsel[upd] = v
                best[upd] = pri[upd]
            wb, wc = np.nonzero(best < num_vcs)
            if wb.size == 0:
                return self._zero_moves, []
            wvc = vcsel[wb, wc]
        stride = self._row_stride
        g = wb * stride + wc * num_vcs + wvc
        rr[wb, wc] = (wvc + 1) % num_vcs
        moved = self._moved_f
        avail = self._avail_f
        head = self._head_f
        mv = moved[g] + 1
        moved[g] = mv
        avail[g] = avail[g] - 1
        head[g] = head[g] - 1
        # Winner slots are unique per (row, channel) and so are their
        # live neighbours within a row; each row's own sentinel absorbs
        # repeated no-neighbour updates harmlessly.
        base = wb * stride
        nxt = base + self._nxt_idx_f[g]
        avail[nxt] = avail[nxt] + 1
        prv = base + self._prv_idx_f[g]
        head[prv] = head[prv] + 1
        self._flits[wb, wc] += 1
        events = g[mv == self._nxt_evt_f[g]]
        moves = np.bincount(wb, minlength=self.num_rows)
        return moves.tolist(), events.tolist()

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Advance every row to completion (one-shot).

        Each tick replicates the solo run loop per row — warmup
        snapshot, arrival feeding, allocation phases, saturation/target
        exits, idle fast-forward — then hands every active row to one
        kernel call.  With the C kernel a tick advances each row a
        whole *span* of cycles: Python computes, per row, the farthest
        cycle before which no Python-side work (arrival feed, warmup
        snapshot, re-allocation, exit check) can possibly be due, and
        the kernel runs autonomously up to that stop — breaking out
        early only after a cycle that emits boundary events, since
        those mutate allocation state.  The numpy fallback advances
        exactly one cycle per tick; both trajectories land every row
        on states bit-identical to its solo run.
        """
        if self._ran:
            raise RuntimeError("BatchedSoAEngine.run() is one-shot")
        self._ran = True
        for row in self._rows:
            if not row.heap:
                # No arrivals at all (rate 0): solo returns immediately
                # after the warmup snapshot.
                self._retire(row)
        live = [row for row in self._rows if not row.done]
        rows_by_index = self._rows
        stride = self._row_stride
        batch_fn = self._batch_fn
        ctx_ptr = self._ctx_ptr if batch_fn is not None else None
        evt_scratch = self._evt_scratch
        nev_out = self._nev_out
        moves_out = self._moves_out
        cur_arr = self._cur
        stop_arr = self._stop
        last_arr = self._last_move
        while live:
            retired = False
            # Phase 1 (per row): loop-top exit, warmup snapshot, arrival
            # feed + admission, reroute and VC allocation — the solo
            # step() pre-kernel phases at this row's own cycle — then
            # the span window for the C kernel.
            for row in live:
                e = row.engine
                cyc = e.cycle
                if cyc >= row.total:
                    self._retire(row)
                    retired = True
                    continue
                w = row.workload
                if cyc == row.warmup_end and w._flits_at_warmup is None:
                    w._flits_at_warmup = e.channel_flit_counts.copy()
                    w._cycles_at_warmup = row.counters.cycles_run
                if row.due < cyc + 1:
                    w._feed_arrivals()
                    e._admit_arrivals()
                    heap = row.heap
                    row.due = heap[0][0] if heap else math.inf
                if e._needs_reroute:
                    e._reroute_cancelled()
                if e._alloc_dirty and e._pending_channels:
                    e._allocate_vcs()
                row.cur = cyc
                if batch_fn is None:
                    continue
                # Span window: everything the solo loop does outside
                # the array sweep happens at a cycle known now.  The
                # next arrival feed is due at int(row.due) (the first
                # cycle with due < cycle + 1); the warmup snapshot at
                # warmup_end; anything allocation-shaped — pending
                # reroutes, a dirtied allocator, an idle engine whose
                # next admission needs Python, or an exit condition
                # already true (solo runs exactly one more cycle
                # before breaking) — pins the row to a single cycle.
                # Boundary events cannot be predicted here; the kernel
                # itself stops after the first cycle that emits any.
                stop = row.total
                d = row.due
                if d < stop:
                    nd = int(d)
                    if nd < stop:
                        stop = nd
                # (cyc < warmup_end: an idle fast-forward from exactly
                # the warmup boundary may overshoot it, in which case
                # solo defers the snapshot to the end of the run and so
                # do we, via _retire.)
                if (
                    w._flits_at_warmup is None
                    and cyc < row.warmup_end < stop
                ):
                    stop = row.warmup_end
                counters = row.counters
                if (
                    e._needs_reroute
                    or (e._alloc_dirty and e._pending_channels)
                    or (not e.messages and row.heap)
                    or counters.generated - counters.completed
                    > row.backlog_limit
                    or (
                        row.target is not None
                        and row.all_stats.count >= row.target
                    )
                ):
                    stop = cyc + 1
                cur_arr[row.index] = cyc
                stop_arr[row.index] = stop
            # Phase 2: one kernel span over every active row.
            if batch_fn is not None:
                batch_fn(ctx_ptr)
                nev = int(nev_out[0])
                events = evt_scratch[:nev].tolist() if nev else []
                moves = moves_out.tolist()
                news = cur_arr.tolist()
                lasts = last_arr.tolist()
            else:
                moves, events = self._cycle_numpy_batch()
                news = lasts = None
            # Phase 3: merged boundary events, decoded (row, slot) and
            # dispatched to the owning engine (ascending order matches
            # the solo kernels' per-row event order).  The owning
            # engine's clock is parked on its event cycle first, so
            # completions timestamp exactly as in the solo run.
            if events:
                evt_b = -1
                eng = None
                for gidx in events:
                    b, slot = divmod(gidx, stride)
                    if b != evt_b:
                        evt_b = b
                        eng = rows_by_index[b].engine
                        if news is not None:
                            eng.cycle = news[b] - 1
                    eng._process_boundary(slot)
            # Phase 4 (per row): move bookkeeping, clock advance, exit
            # checks and idle fast-forward — the solo post-kernel path,
            # applied once per span.
            for row in live:
                if row.done:
                    continue
                e = row.engine
                counters = row.counters
                idx = row.index
                mv = moves[idx]
                if news is not None:
                    new = news[idx]
                    last = lasts[idx]
                else:
                    new = row.cur + 1
                    last = row.cur if mv else -1
                counters.cycles_run += new - row.cur
                if mv:
                    counters.flit_moves += mv
                    e._last_progress_cycle = last
                elif not e.messages:
                    e._last_progress_cycle = new - 1
                e.cycle = new
                if (
                    e.messages
                    and new - 1 - e._last_progress_cycle
                    > e._watchdog_cycles
                ):
                    raise RuntimeError(
                        f"no flit progress for {e._watchdog_cycles} "
                        f"cycles with {len(e.messages)} messages in "
                        f"flight on batch row {idx} — engine bug"
                    )
                if counters.generated - counters.completed > row.backlog_limit:
                    self._retire(row)
                    retired = True
                    continue
                if row.target is not None and row.all_stats.count >= row.target:
                    self._retire(row)
                    retired = True
                    continue
                if row.heap and not e.messages and not e._arrival_heap:
                    # Fully idle row: jump its clock to its next pending
                    # arrival, clamped at the warmup boundary and at the
                    # end of the run, exactly like the solo loop.
                    nxt = min(int(row.heap[0][0]), row.total)
                    if e.cycle < row.warmup_end < nxt:
                        nxt = row.warmup_end
                    e.fast_forward_to(nxt)
            if retired:
                live = [row for row in live if not row.done]
