"""The cycle engine: wormhole switching, VC allocation, link arbitration.

One engine cycle has four phases:

1. **Arrivals** — Poisson arrivals due this cycle are appended to their
   source's (infinite) injection queue; the queue head requests a VC of
   its first channel.
2. **VC allocation** — each channel grants free VCs to pending header
   requests, FCFS within each dateline class.
3. **Link arbitration** — every channel with busy VCs picks at most one
   *ready* VC round-robin (a VC is ready when a flit of its message
   waits upstream and the downstream VC buffer has a free slot at the
   start of the cycle) and schedules one flit transfer.  One flit per
   physical channel per cycle — the paper's "network cycle time is the
   transmission time of a single flit across a physical channel".
4. **Apply** — scheduled flits move; header arrivals enqueue the next
   hop's VC request, tail departures release upstream VCs, delivered
   messages are retired into the statistics.

Credits are returned with one-cycle latency (phase 3 readiness uses
start-of-cycle occupancies), so full-rate streaming needs
``buffer_depth >= 2``; see :class:`~repro.simulator.config.SimulationConfig`.

The engine is deliberately free of topology knowledge: it consumes
pre-computed routes (:class:`~repro.simulator.router.RouteTable`) or,
in adaptive mode, a *next-hop chooser* callback that extends routes hop
by hop against live virtual-channel availability (impatient adaptive
requests re-evaluate every cycle; escape requests queue FCFS on the
deadlock-free dateline sub-network).  That separation is what makes it
reusable for every traffic pattern and routing mode in the examples.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.simulator.buffers import VirtualChannelPool, adaptive_partition
from repro.simulator.flit import Message

# A chooser maps (message, next hop index) to (channel_id, vc_class,
# impatient) or None when the message's header already sits at its
# destination's router.  Impatient requests are re-evaluated every cycle
# instead of committing to a VC queue.
NextHopChooser = Callable[[Message, int], Optional[Tuple[int, int, bool]]]

__all__ = ["CycleEngine", "EngineCounters"]

# A network with in-flight messages must make progress; a long stretch of
# idle cycles with messages present indicates an engine bug (the dateline
# scheme rules out true deadlock).
_DEADLOCK_WATCHDOG_CYCLES = 20_000


class EngineCounters:
    """Aggregate engine activity counters."""

    __slots__ = ("generated", "completed", "flit_moves", "cycles_run")

    def __init__(self) -> None:
        self.generated = 0
        self.completed = 0
        self.flit_moves = 0
        self.cycles_run = 0

    @property
    def backlog(self) -> int:
        """Messages generated but not yet delivered."""
        return self.generated - self.completed


class CycleEngine:
    """Flit-level wormhole engine over pre-routed messages.

    Parameters
    ----------
    num_channels:
        Number of physical channels (dense ids ``0..num_channels-1``).
    num_vcs:
        Virtual channels per physical channel.
    buffer_depth:
        Flit capacity of each VC buffer.
    on_delivery:
        Callback ``(message, completion_cycle)`` invoked when a tail
        flit reaches its destination.
    """

    def __init__(
        self,
        num_channels: int,
        num_vcs: int,
        buffer_depth: int,
        on_delivery: Optional[Callable[[Message, int], None]] = None,
        next_hop_chooser: Optional["NextHopChooser"] = None,
        adaptive: bool = False,
    ) -> None:
        if num_channels < 1:
            raise ValueError(f"need >= 1 channel, got {num_channels}")
        if buffer_depth < 1:
            raise ValueError(f"buffer depth must be >= 1, got {buffer_depth}")
        if adaptive and next_hop_chooser is None:
            raise ValueError("adaptive mode requires a next-hop chooser")
        self.num_channels = num_channels
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.on_delivery = on_delivery
        self.next_hop_chooser = next_hop_chooser
        self.adaptive = adaptive
        partition = adaptive_partition(num_vcs) if adaptive else None
        self.pools: List[VirtualChannelPool] = [
            VirtualChannelPool(num_vcs, partition) for _ in range(num_channels)
        ]
        self.messages: Dict[int, Message] = {}
        self.cycle = 0
        self.counters = EngineCounters()
        self.channel_flit_counts = np.zeros(num_channels, dtype=np.int64)
        # Injection: per-source FIFO queues keyed by source rank.
        self._source_queues: Dict[int, Deque[Message]] = {}
        self._head_requested: Dict[int, bool] = {}
        # Arrival stream: heap of (time, tiebreak, message-factory args).
        self._arrival_heap: List[Tuple[float, int, Message]] = []
        self._arrival_seq = 0
        self._active_channels: set[int] = set()
        self._pending_channels: set[int] = set()
        self._needs_reroute: List[Tuple[int, int]] = []
        self._last_progress_cycle = 0
        self._watchdog_cycles = _DEADLOCK_WATCHDOG_CYCLES
        # Allocation can only produce a grant after a new request or a
        # VC release; between those events the phase is a fixed point
        # (stuck FCFS queues stay stuck) and is skipped wholesale.
        self._alloc_dirty = False
        # Channels whose pool state changed (request or release) since
        # their last allocation visit.  In deterministic mode the pass
        # visits only these: an unchanged channel re-runs to the same
        # fixed point (its grant loop already stopped on empty frees or
        # empty queues), so skipping it is exact — see _allocate_vcs.
        self._alloc_candidates: set[int] = set()

    # ------------------------------------------------------------------
    # Arrival / injection interface
    # ------------------------------------------------------------------
    def schedule_message(self, arrival_time: float, message: Message) -> None:
        """Queue a message to arrive at ``floor(arrival_time)``."""
        if arrival_time < self.cycle:
            raise ValueError(
                f"arrival time {arrival_time} is in the engine's past "
                f"(cycle {self.cycle})"
            )
        heapq.heappush(
            self._arrival_heap, (arrival_time, self._arrival_seq, message)
        )
        self._arrival_seq += 1

    def next_arrival_cycle(self) -> Optional[int]:
        if not self._arrival_heap:
            return None
        return int(self._arrival_heap[0][0])

    def _admit_arrivals(self) -> None:
        limit = self.cycle + 1
        heap = self._arrival_heap
        while heap and heap[0][0] < limit:
            _, _, msg = heapq.heappop(heap)
            self.counters.generated += 1
            self.messages[msg.msg_id] = msg
            queue = self._source_queues.setdefault(msg.src, deque())
            queue.append(msg)
            if not self._head_requested.get(msg.src, False):
                self._request_head(msg.src)

    def _request_head(self, src: int) -> None:
        queue = self._source_queues.get(src)
        if not queue:
            return
        head = queue[0]
        ch = head.route_channels[0]
        # Adaptive first hops were chosen against live VC availability;
        # they re-evaluate (impatient) rather than committing to a queue.
        impatient = head.dynamic and head.route_classes[0] >= 2
        self.pools[ch].request(head.msg_id, 0, head.route_classes[0], impatient)
        self._pending_channels.add(ch)
        self._alloc_candidates.add(ch)
        self._alloc_dirty = True
        self._head_requested[src] = True

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _allocate_vcs(self) -> None:
        done = []
        # Injection grants can enqueue the next head's request (possibly
        # on a new channel), so iterate over a snapshot; requests added
        # to channels outside it are served next cycle.  The snapshot is
        # *sorted* so within-cycle FCFS enqueue order is a function of
        # the configuration alone — that is what lets the SoA engine
        # reproduce this engine's arbitration decisions bit for bit.
        #
        # In deterministic mode the snapshot is the *changed-channel*
        # set rather than every pending channel: a channel whose pool
        # was untouched since its last visit re-runs to the same fixed
        # point (the grant loop already stopped on an empty free list or
        # empty queue, and without impatient requests a visit has no
        # other side effect), so skipping it cannot alter any grant.
        # Mid-pass requests keep the snapshot semantics exactly: a
        # channel past the current position joins this pass (as it
        # would in the full sorted snapshot), an earlier one waits for
        # the next cycle (as it did when its slot had already been
        # visited).  Adaptive mode still visits every pending channel,
        # because cancelling unserved impatient requests is a per-pass
        # side effect on *unchanged* channels too.
        messages = self.messages
        self._alloc_dirty = False  # re-set by requests/releases below
        candidates = self._alloc_candidates
        if self.adaptive:
            order = sorted(self._pending_channels)
            pending_at_start = None
        else:
            order = sorted(candidates)
            pending_at_start = self._pending_channels.copy()
        candidates.clear()
        queued = set(order)
        pos = 0
        while pos < len(order):
            ch = order[pos]
            pos += 1
            pool = self.pools[ch]
            pending = pool.pending
            free_by_class = pool.free_by_class
            for cls in range(pool.num_classes):
                if not pending[cls]:
                    continue
                if free_by_class[cls]:
                    grant = pool.grant_one(cls)
                    while grant is not None:
                        msg_id, hop, vc = grant
                        self._on_grant(ch, messages[msg_id], hop, vc)
                        grant = pool.grant_one(cls)
                # Cancel unserved impatient requests; their messages
                # re-evaluate against fresh VC availability next cycle.
                if pool.impatient_count[cls]:
                    self._needs_reroute.extend(pool.drain_impatient(cls))
            if not pool.has_pending():
                done.append(ch)
            if candidates and pending_at_start is not None:
                # Grants above may have enqueued fresh requests.  Match
                # the full-snapshot pass exactly: a dirtied channel that
                # was pending at pass start and whose sorted slot is
                # still ahead joins this pass; every other one (already
                # visited, or not in the start snapshot) waits for the
                # next cycle, keeping its candidate mark.
                added = [
                    c2
                    for c2 in candidates
                    if c2 > ch and c2 not in queued and c2 in pending_at_start
                ]
                if added:
                    order.extend(added)
                    queued.update(added)
                    order[pos:] = sorted(order[pos:])
                    candidates.difference_update(added)
        pools = self.pools
        for ch in done:
            # Re-check before discarding: a grant later in this pass may
            # have injected a fresh head request onto a channel that was
            # drained earlier in the pass; dropping it then would orphan
            # the request (and deadlock the source) forever.
            if not pools[ch].has_pending():
                self._pending_channels.discard(ch)

    def _on_grant(self, ch: int, msg: Message, hop: int, vc: int) -> None:
        """Bookkeeping for one VC grant (overridden by the SoA engine)."""
        msg.vcs[hop] = vc
        msg.alloc_hops = hop + 1
        self._active_channels.add(ch)
        if hop == 0:
            self._on_injection_start(msg)

    def _on_injection_start(self, msg: Message) -> None:
        src = msg.src
        queue = self._source_queues[src]
        if not queue or queue[0].msg_id != msg.msg_id:
            raise RuntimeError("injection grant to a non-head message")
        queue.popleft()
        msg.injected_at = self.cycle
        self._head_requested[src] = False
        if queue:
            self._request_head(src)
        else:
            del self._source_queues[src]

    def _reroute_cancelled(self) -> None:
        """Re-issue next-hop requests for messages whose impatient
        (adaptive) request was cancelled last cycle."""
        pending, self._needs_reroute = self._needs_reroute, []
        for msg_id, hop in pending:
            msg = self.messages.get(msg_id)
            if msg is None:
                raise RuntimeError("cancelled request for a retired message")
            choice = self.next_hop_chooser(msg, hop)
            if choice is None:
                raise RuntimeError("reroute reached destination unexpectedly")
            ch, cls, impatient = choice
            msg.route_channels[hop] = ch
            msg.route_classes[hop] = cls
            self.pools[ch].request(msg.msg_id, hop, cls, impatient)
            self._pending_channels.add(ch)
            self._alloc_candidates.add(ch)
        self._alloc_dirty = True

    def _scan_moves(self) -> List[Tuple[Message, int]]:
        # Channels are scanned in sorted id order (see _allocate_vcs for
        # why determinism matters); lookups are hoisted out of the inner
        # loop and the per-cycle snapshot list is the only allocation.
        moves: List[Tuple[Message, int]] = []
        depth = self.buffer_depth
        messages = self.messages
        pools = self.pools
        append = moves.append
        for ch in sorted(self._active_channels):
            pool = pools[ch]
            if pool.busy_count == 0:
                continue
            holders = pool.holders
            holder_hops = pool.holder_hops
            nv = pool.num_vcs
            start = pool.rr
            for i in range(nv):
                v = start + i
                if v >= nv:
                    v -= nv
                mid = holders[v]
                if mid < 0:
                    continue
                msg = messages[mid]
                hop = holder_hops[v]
                crossed = msg.crossed
                sent = crossed[hop]
                if hop == 0:
                    if msg.length <= sent:
                        continue
                elif crossed[hop - 1] <= sent:
                    continue
                if hop != msg.final_hop:
                    nxt = hop + 1
                    drained = crossed[nxt] if nxt < len(crossed) else 0
                    if sent - drained >= depth:
                        continue
                append((msg, hop))
                pool.rr = v + 1 if v + 1 < nv else 0
                break
        return moves

    def _apply_moves(self, moves: List[Tuple[Message, int]]) -> None:
        for msg, hop in moves:
            msg.crossed[hop] += 1
            ch = msg.route_channels[hop]
            self.channel_flit_counts[ch] += 1
            self.counters.flit_moves += 1
            c = msg.crossed[hop]
            if c == 1:
                if msg.dynamic:
                    # Header reached the next router: discover the next
                    # hop (or the destination) through the chooser.
                    choice = self.next_hop_chooser(msg, hop + 1)
                    if choice is None:
                        msg.final_hop = hop
                    else:
                        nxt_ch, cls, impatient = choice
                        msg.extend_route(nxt_ch, cls)
                        self.pools[nxt_ch].request(
                            msg.msg_id, hop + 1, cls, impatient
                        )
                        self._pending_channels.add(nxt_ch)
                        self._alloc_candidates.add(nxt_ch)
                        self._alloc_dirty = True
                elif hop + 1 < msg.num_hops:
                    # Header reached the next router: request the next VC.
                    nxt_ch = msg.route_channels[hop + 1]
                    self.pools[nxt_ch].request(
                        msg.msg_id, hop + 1, msg.route_classes[hop + 1]
                    )
                    self._pending_channels.add(nxt_ch)
                    self._alloc_candidates.add(nxt_ch)
                    self._alloc_dirty = True
            if c == msg.length:
                # Tail crossed this channel: it has left the upstream
                # buffer, so the previous hop's VC drains free.
                if hop >= 1:
                    self._release_hop(msg, hop - 1)
                if hop == msg.final_hop:
                    self._release_hop(msg, hop)
                    self._complete(msg)

    def _release_hop(self, msg: Message, hop: int) -> None:
        vc = msg.vcs[hop]
        if vc < 0:
            raise RuntimeError(
                f"message {msg.msg_id} releasing unallocated hop {hop}"
            )
        ch = msg.route_channels[hop]
        pool = self.pools[ch]
        pool.release(vc)
        msg.vcs[hop] = -1
        self._alloc_dirty = True
        self._alloc_candidates.add(ch)
        if pool.busy_count == 0:
            self._active_channels.discard(ch)

    def _complete(self, msg: Message) -> None:
        self.counters.completed += 1
        del self.messages[msg.msg_id]
        if self.on_delivery is not None:
            self.on_delivery(msg, self.cycle)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Run one cycle; returns the number of flits moved."""
        self._admit_arrivals()
        if self._needs_reroute:
            self._reroute_cancelled()
        if self._alloc_dirty and self._pending_channels:
            self._allocate_vcs()
        moves = self._scan_moves() if self._active_channels else []
        if moves:
            self._apply_moves(moves)
            self._last_progress_cycle = self.cycle
        elif self.messages:
            if self.cycle - self._last_progress_cycle > self._watchdog_cycles:
                raise RuntimeError(
                    f"no flit progress for {self._watchdog_cycles} cycles "
                    f"with {len(self.messages)} messages in flight — engine bug"
                )
        else:
            self._last_progress_cycle = self.cycle
        self.cycle += 1
        self.counters.cycles_run += 1
        return len(moves)

    def idle(self) -> bool:
        """True when nothing is in flight, queued or pending."""
        return not self.messages and not self._arrival_heap

    def fast_forward_to(self, cycle: int) -> None:
        """Jump an idle engine's clock forward to ``cycle``.

        The skipped cycles *are* simulated — with nothing in flight or
        queued, provably nothing can happen in them — so they count
        towards :attr:`EngineCounters.cycles_run` exactly as if each
        had been stepped; results and utilisation denominators are
        unchanged by fast-forwarding.
        """
        if self.messages or self._source_queues:
            raise RuntimeError("cannot fast-forward with messages in flight")
        if cycle <= self.cycle:
            return
        self.counters.cycles_run += cycle - self.cycle
        self.cycle = cycle
        self._last_progress_cycle = cycle

    def fast_forward_if_idle(self) -> None:
        """Jump the clock to the next scheduled arrival when empty."""
        if self.messages or self._source_queues:
            return
        nxt = self.next_arrival_cycle()
        if nxt is not None:
            self.fast_forward_to(nxt)
