"""Per-cycle kernels for the structure-of-arrays engine.

The SoA engine (:mod:`repro.simulator.soa`) keeps the entire link-
arbitration state in flat preallocated ``numpy`` int32 arrays indexed by
*slot* (``channel * num_vcs + vc``).  One engine cycle then reduces to a
fixed two-pass sweep over those arrays:

* **pass 1 (scan)** — for every channel with held VCs, pick the first
  *ready* VC in round-robin order from the channel's cursor, using
  start-of-cycle state only (``avail > 0 and head_room > 0``);
* **pass 2 (apply)** — move one flit on every winner: bump its
  ``moved`` counter, consume one upstream flit and one downstream
  credit, and propagate the flit to the neighbouring worm segments
  through the ``nxt_idx`` / ``prv_idx`` links; slots whose ``moved``
  counter hits ``nxt_evt`` (header arrival or tail departure) are
  reported back to Python for boundary handling.

Two interchangeable implementations of that sweep exist:

* a ~40-line C kernel, compiled on first use with the system C compiler
  into ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``) and
  loaded through :mod:`ctypes` — this is what makes the SoA engine
  several times faster than the reference engine;
* a pure-``numpy`` fallback in :mod:`repro.simulator.soa` with the
  identical integer semantics, used when no C compiler is available or
  when ``REPRO_SOA_KERNEL=numpy`` forces it.

Both produce bit-identical simulations (all state is integer).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Optional

__all__ = ["load_c_kernel", "c_kernel_available", "kernel_cache_dir"]

C_SOURCE = r"""
#include <stdint.h>

/* One cycle of the SoA flit engine.  Arrays avail/head_room/moved/
   nxt_evt/nxt_idx/prv_idx have num_channels*num_vcs+1 entries: the last
   entry is a write-off slot so segment links never need a branch (a
   missing neighbour is linked to the sentinel).  Pass 1 reads start-of-
   cycle state only; pass 2 applies all updates, so arbitration is
   identical to the reference engine's scan-then-apply phases.

   All arguments arrive through one context block (two scalars followed
   by the raw addresses of the arrays, see _CTX_LAYOUT in kernel.py):
   marshalling a single pointer keeps the per-cycle ctypes overhead
   flat. */
int64_t repro_soa_cycle(const uint64_t *ctx)
{
    int32_t num_channels = (int32_t) ctx[0];
    int32_t num_vcs      = (int32_t) ctx[1];
    const int32_t *busy_cnt   = (const int32_t *) ctx[2];  /* (C,)   */
    int32_t *rr               = (int32_t *) ctx[3];        /* (C,)   */
    int32_t *avail            = (int32_t *) ctx[4];        /* (N+1,) */
    int32_t *head_room        = (int32_t *) ctx[5];        /* (N+1,) */
    int32_t *moved            = (int32_t *) ctx[6];        /* (N+1,) */
    const int32_t *nxt_evt    = (const int32_t *) ctx[7];  /* (N+1,) */
    const int32_t *nxt_idx    = (const int32_t *) ctx[8];  /* (N+1,) */
    const int32_t *prv_idx    = (const int32_t *) ctx[9];  /* (N+1,) */
    int64_t *chan_flits       = (int64_t *) ctx[10];       /* (C,)   */
    int32_t *win_slots        = (int32_t *) ctx[11];       /* (C,)   */
    int32_t *events_out       = (int32_t *) ctx[12];       /* (C,)   */
    int32_t *n_events_out     = (int32_t *) ctx[13];       /* (1,)   */

    int32_t nwin = 0;
    for (int32_t c = 0; c < num_channels; ++c) {
        if (busy_cnt[c] == 0) continue;
        int32_t base = c * num_vcs;
        int32_t start = rr[c];
        for (int32_t i = 0; i < num_vcs; ++i) {
            int32_t v = start + i;
            if (v >= num_vcs) v -= num_vcs;
            int32_t s = base + v;
            if (avail[s] > 0 && head_room[s] > 0) {
                win_slots[nwin++] = s;
                rr[c] = (v + 1 == num_vcs) ? 0 : v + 1;
                break;
            }
        }
    }
    int32_t nev = 0;
    for (int32_t w = 0; w < nwin; ++w) {
        int32_t s = win_slots[w];
        int32_t m = ++moved[s];
        --avail[s];
        --head_room[s];
        ++avail[nxt_idx[s]];
        ++head_room[prv_idx[s]];
        ++chan_flits[s / num_vcs];
        if (m == nxt_evt[s]) events_out[nev++] = s;
    }
    *n_events_out = nev;
    return (int64_t) nwin;
}
"""

#: Context-block layout consumed by the C kernel: two scalars followed
#: by the raw base addresses of the state arrays, as unsigned 64-bit
#: values.  Must match the ctx[...] casts in C_SOURCE.
_CTX_LAYOUT = (
    "num_channels",
    "num_vcs",
    "busy_cnt",
    "rr",
    "avail",
    "head_room",
    "moved",
    "nxt_evt",
    "nxt_idx",
    "prv_idx",
    "chan_flits",
    "win_slots",
    "events_out",
    "n_events_out",
)
CTX_SIZE = len(_CTX_LAYOUT)

_ARGTYPES = [ctypes.POINTER(ctypes.c_uint64)]

_loaded: Optional[object] = None
_load_attempted = False


def kernel_cache_dir() -> Path:
    """Directory holding compiled kernels (``$REPRO_KERNEL_CACHE``)."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _compile(cache_dir: Path, so_path: Path) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (set CC to override)")
    cache_dir.mkdir(parents=True, exist_ok=True)
    src = cache_dir / (so_path.stem + ".c")
    src.write_text(C_SOURCE)
    # Unique tmp per process: pool workers may compile concurrently, and
    # the final rename is atomic so they cannot corrupt each other.
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".so.tmp")
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(src)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_c_kernel() -> Optional[object]:
    """The compiled ``repro_soa_cycle`` function, or ``None``.

    Compilation and loading are attempted once per process; any failure
    (no compiler, sandboxed filesystem, unloadable object) degrades to
    ``None`` and the SoA engine falls back to its numpy kernel — with a
    once-per-process :class:`RuntimeWarning` naming the actual failure,
    so a missing compiler shows up as a warning instead of silently
    masquerading as a ~4x performance regression.
    """
    global _loaded, _load_attempted
    if _load_attempted:
        return _loaded
    _load_attempted = True
    tag = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    so_path = kernel_cache_dir() / f"repro_soa_{tag}.so"
    try:
        if not so_path.exists():
            _compile(kernel_cache_dir(), so_path)
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_soa_cycle
        fn.argtypes = _ARGTYPES
        fn.restype = ctypes.c_int64
        _loaded = fn
    except subprocess.CalledProcessError as exc:
        stderr = (exc.stderr or b"").decode(errors="replace").strip()
        _warn_kernel_fallback(f"compilation failed: {stderr or exc}")
        _loaded = None
    except Exception as exc:
        _warn_kernel_fallback(f"{type(exc).__name__}: {exc}")
        _loaded = None
    return _loaded


def _warn_kernel_fallback(reason: str) -> None:
    """One warning per process when the C kernel degrades to numpy."""
    warnings.warn(
        f"repro: SoA C kernel unavailable ({reason}); falling back to the "
        "slower pure-numpy kernel.  Install a C compiler (or set CC) to "
        "restore full speed, or set REPRO_SOA_KERNEL=numpy to silence "
        "this warning.",
        RuntimeWarning,
        stacklevel=3,
    )


def c_kernel_available() -> bool:
    return load_c_kernel() is not None
