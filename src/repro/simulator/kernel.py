"""Per-cycle kernels for the structure-of-arrays engine.

The SoA engine (:mod:`repro.simulator.soa`) keeps the entire link-
arbitration state in flat preallocated ``numpy`` int32 arrays indexed by
*slot* (``channel * num_vcs + vc``).  One engine cycle then reduces to a
fixed two-pass sweep over those arrays:

* **pass 1 (scan)** — for every channel with held VCs, pick the first
  *ready* VC in round-robin order from the channel's cursor, using
  start-of-cycle state only (``avail > 0 and head_room > 0``);
* **pass 2 (apply)** — move one flit on every winner: bump its
  ``moved`` counter, consume one upstream flit and one downstream
  credit, and propagate the flit to the neighbouring worm segments
  through the ``nxt_idx`` / ``prv_idx`` links; slots whose ``moved``
  counter hits ``nxt_evt`` (header arrival or tail departure) are
  reported back to Python for boundary handling.

Two kernel entry points share that sweep:

* ``repro_soa_cycle`` advances **one** network per call (the solo
  :class:`~repro.simulator.soa.SoACycleEngine`);
* ``repro_soa_cycle_batch`` advances **B stacked networks** per call:
  the slot arrays of B same-shape configurations live in contiguous
  ``(B, slots + 1)`` planes (one sentinel slot per row) and one
  invocation advances every *active* row through a whole *span* of
  cycles — from its ``cur_cycle`` towards its caller-computed
  ``stop_cycle``, breaking out early only after a cycle that emits
  boundary events — reporting events as a merged list of global
  indices ``row * row_stride + slot``.  This is what
  :class:`~repro.simulator.batch.BatchedSoAEngine` runs on.

Both are compiled from one C source on first use with the system C
compiler into ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/
kernels``) and loaded through :mod:`ctypes`.  A cached shared object
that fails to load (a worker killed mid-write, a truncated artifact
from an interrupted run) is *quarantined* — renamed to ``*.corrupt``,
mirroring the sweep cache's ``corrupt/`` convention — and compilation
is retried once before degrading; pure-``numpy`` fallbacks with the
identical integer semantics take over when no compiler is available or
when ``REPRO_SOA_KERNEL=numpy`` forces them.

All implementations produce bit-identical simulations (all state is
integer).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Optional, Tuple

__all__ = [
    "load_c_kernel",
    "load_c_kernel_batch",
    "c_kernel_available",
    "kernel_cache_dir",
]

C_SOURCE = r"""
#include <stdint.h>

/* One cycle of the SoA flit engine.  Arrays avail/head_room/moved/
   nxt_evt/nxt_idx/prv_idx have num_channels*num_vcs+1 entries: the last
   entry is a write-off slot so segment links never need a branch (a
   missing neighbour is linked to the sentinel).  Pass 1 reads start-of-
   cycle state only; pass 2 applies all updates, so arbitration is
   identical to the reference engine's scan-then-apply phases.

   All arguments arrive through one context block (two scalars followed
   by the raw addresses of the arrays, see _CTX_LAYOUT in kernel.py):
   marshalling a single pointer keeps the per-cycle ctypes overhead
   flat. */
int64_t repro_soa_cycle(const uint64_t *ctx)
{
    int32_t num_channels = (int32_t) ctx[0];
    int32_t num_vcs      = (int32_t) ctx[1];
    const int32_t *busy_cnt   = (const int32_t *) ctx[2];  /* (C,)   */
    int32_t *rr               = (int32_t *) ctx[3];        /* (C,)   */
    int32_t *avail            = (int32_t *) ctx[4];        /* (N+1,) */
    int32_t *head_room        = (int32_t *) ctx[5];        /* (N+1,) */
    int32_t *moved            = (int32_t *) ctx[6];        /* (N+1,) */
    const int32_t *nxt_evt    = (const int32_t *) ctx[7];  /* (N+1,) */
    const int32_t *nxt_idx    = (const int32_t *) ctx[8];  /* (N+1,) */
    const int32_t *prv_idx    = (const int32_t *) ctx[9];  /* (N+1,) */
    int64_t *chan_flits       = (int64_t *) ctx[10];       /* (C,)   */
    int32_t *win_slots        = (int32_t *) ctx[11];       /* (C,)   */
    int32_t *events_out       = (int32_t *) ctx[12];       /* (C,)   */
    int32_t *n_events_out     = (int32_t *) ctx[13];       /* (1,)   */

    int32_t nwin = 0;
    for (int32_t c = 0; c < num_channels; ++c) {
        if (busy_cnt[c] == 0) continue;
        int32_t base = c * num_vcs;
        int32_t start = rr[c];
        for (int32_t i = 0; i < num_vcs; ++i) {
            int32_t v = start + i;
            if (v >= num_vcs) v -= num_vcs;
            int32_t s = base + v;
            if (avail[s] > 0 && head_room[s] > 0) {
                win_slots[nwin++] = s;
                rr[c] = (v + 1 == num_vcs) ? 0 : v + 1;
                break;
            }
        }
    }
    int32_t nev = 0;
    for (int32_t w = 0; w < nwin; ++w) {
        int32_t s = win_slots[w];
        int32_t m = ++moved[s];
        --avail[s];
        --head_room[s];
        ++avail[nxt_idx[s]];
        ++head_room[prv_idx[s]];
        ++chan_flits[s / num_vcs];
        if (m == nxt_evt[s]) events_out[nev++] = s;
    }
    *n_events_out = nev;
    return (int64_t) nwin;
}

/* A *span* of cycles for B stacked same-shape networks.  Every state
   array is a contiguous (num_rows, ...) plane — slot arrays carry
   row_stride = num_channels*num_vcs+1 entries per row (each row owns
   its own sentinel slot) — and rows are fully independent: the sweep
   below is the solo kernel applied row by row with offset base
   pointers, so a batched row is bit-identical to the same network
   advanced solo.

   Between two kernel calls the *only* Python-side state mutations are
   arrival admission, VC (de)allocation and boundary handling; the
   caller encodes "nothing Python-side is due before cycle
   stop_cycle[b]" per row, and within that window this kernel may run
   many cycles autonomously:

   * a row advances from cur_cycle[b] until its stop_cycle[b], but
     stops early right after the first cycle that emits boundary
     events (those need Python before the next cycle can be correct);
   * a cycle with zero winners is a fixed point — no array changes
     without a move, and busy_cnt / nxt_evt only change Python-side —
     so the row provably stays move-free and jumps straight to stop;
   * busy_cnt is likewise constant for the whole call, so each row's
     busy-channel list is built once and only those channels are
     scanned per cycle.

   Rows with active[b] == 0 are retired configurations: skipped
   wholesale without reshaping the batch.  Outputs per row: the new
   cur_cycle, the span's total flit moves and the cycle of its last
   move (-1 if none); boundary events are merged across rows into one
   ascending list of global indices b * row_stride + slot.  At most
   one event cycle fires per row per call, so events_out still needs
   only num_rows*num_channels entries.  See _BATCH_CTX_LAYOUT in
   kernel.py for the context block. */
int64_t repro_soa_cycle_batch(const uint64_t *ctx)
{
    int32_t num_rows     = (int32_t) ctx[0];
    int32_t num_channels = (int32_t) ctx[1];
    int32_t num_vcs      = (int32_t) ctx[2];
    int32_t row_stride   = (int32_t) ctx[3];
    const int32_t *active    = (const int32_t *) ctx[4];   /* (B,)    */
    const int32_t *busy_cnt  = (const int32_t *) ctx[5];   /* (B,C)   */
    int32_t *rr              = (int32_t *) ctx[6];         /* (B,C)   */
    int32_t *avail           = (int32_t *) ctx[7];         /* (B,S+1) */
    int32_t *head_room       = (int32_t *) ctx[8];         /* (B,S+1) */
    int32_t *moved           = (int32_t *) ctx[9];         /* (B,S+1) */
    const int32_t *nxt_evt   = (const int32_t *) ctx[10];  /* (B,S+1) */
    const int32_t *nxt_idx   = (const int32_t *) ctx[11];  /* (B,S+1) */
    const int32_t *prv_idx   = (const int32_t *) ctx[12];  /* (B,S+1) */
    int64_t *chan_flits      = (int64_t *) ctx[13];        /* (B,C)   */
    int32_t *win_slots       = (int32_t *) ctx[14];        /* (C,)    */
    int32_t *busy_list       = (int32_t *) ctx[15];        /* (C,)    */
    int32_t *events_out      = (int32_t *) ctx[16];        /* (B*C,)  */
    int32_t *n_events_out    = (int32_t *) ctx[17];        /* (1,)    */
    int64_t *moves_out       = (int64_t *) ctx[18];        /* (B,)    */
    int64_t *cur_cycle       = (int64_t *) ctx[19];        /* (B,) io */
    const int64_t *stop_cycle = (const int64_t *) ctx[20]; /* (B,)    */
    int64_t *last_move_out   = (int64_t *) ctx[21];        /* (B,)    */

    int64_t total = 0;
    int32_t nev = 0;
    for (int32_t b = 0; b < num_rows; ++b) {
        moves_out[b] = 0;
        last_move_out[b] = -1;
        if (!active[b]) continue;
        int64_t cyc = cur_cycle[b];
        int64_t stop = stop_cycle[b];
        if (cyc >= stop) continue;
        int32_t row_off = b * row_stride;
        const int32_t *busy_b = busy_cnt + (int64_t) b * num_channels;
        int32_t *rr_b         = rr + (int64_t) b * num_channels;
        int32_t *avail_b      = avail + row_off;
        int32_t *head_b       = head_room + row_off;
        int32_t *moved_b      = moved + row_off;
        const int32_t *nev_b  = nxt_evt + row_off;
        const int32_t *nxt_b  = nxt_idx + row_off;
        const int32_t *prv_b  = prv_idx + row_off;
        int64_t *flits_b      = chan_flits + (int64_t) b * num_channels;

        int32_t nbusy = 0;
        for (int32_t c = 0; c < num_channels; ++c)
            if (busy_b[c] != 0) busy_list[nbusy++] = c;
        if (nbusy == 0) {             /* nothing can move all span */
            cur_cycle[b] = stop;
            continue;
        }
        int64_t mvtot = 0;
        while (cyc < stop) {
            int32_t nwin = 0;
            for (int32_t i = 0; i < nbusy; ++i) {
                int32_t c = busy_list[i];
                int32_t base = c * num_vcs;
                int32_t start = rr_b[c];
                for (int32_t j = 0; j < num_vcs; ++j) {
                    int32_t v = start + j;
                    if (v >= num_vcs) v -= num_vcs;
                    int32_t s = base + v;
                    if (avail_b[s] > 0 && head_b[s] > 0) {
                        win_slots[nwin++] = s;
                        rr_b[c] = (v + 1 == num_vcs) ? 0 : v + 1;
                        break;
                    }
                }
            }
            if (nwin == 0) {          /* fixed point: jump the stall */
                cyc = stop;
                break;
            }
            int32_t nev0 = nev;
            for (int32_t w = 0; w < nwin; ++w) {
                int32_t s = win_slots[w];
                int32_t m = ++moved_b[s];
                --avail_b[s];
                --head_b[s];
                ++avail_b[nxt_b[s]];
                ++head_b[prv_b[s]];
                ++flits_b[s / num_vcs];
                if (m == nev_b[s]) events_out[nev++] = row_off + s;
            }
            mvtot += nwin;
            last_move_out[b] = cyc;
            ++cyc;
            if (nev != nev0) break;   /* boundary work due Python-side */
        }
        cur_cycle[b] = cyc;
        moves_out[b] = mvtot;
        total += mvtot;
    }
    *n_events_out = nev;
    return total;
}
"""

#: Context-block layout consumed by the solo C kernel: two scalars
#: followed by the raw base addresses of the state arrays, as unsigned
#: 64-bit values.  Must match the ctx[...] casts in C_SOURCE.
_CTX_LAYOUT = (
    "num_channels",
    "num_vcs",
    "busy_cnt",
    "rr",
    "avail",
    "head_room",
    "moved",
    "nxt_evt",
    "nxt_idx",
    "prv_idx",
    "chan_flits",
    "win_slots",
    "events_out",
    "n_events_out",
)
CTX_SIZE = len(_CTX_LAYOUT)

#: Context-block layout of the batched kernel: four scalars, then the
#: base addresses of the (num_rows, ...) planes, scratch buffers and
#: per-row span control (int64 cur/stop/last-move/moves).  Must match
#: the ctx[...] casts in ``repro_soa_cycle_batch``.
_BATCH_CTX_LAYOUT = (
    "num_rows",
    "num_channels",
    "num_vcs",
    "row_stride",
    "active",
    "busy_cnt",
    "rr",
    "avail",
    "head_room",
    "moved",
    "nxt_evt",
    "nxt_idx",
    "prv_idx",
    "chan_flits",
    "win_slots",
    "busy_list",
    "events_out",
    "n_events_out",
    "moves_out",
    "cur_cycle",
    "stop_cycle",
    "last_move_out",
)
BATCH_CTX_SIZE = len(_BATCH_CTX_LAYOUT)

_ARGTYPES = [ctypes.POINTER(ctypes.c_uint64)]

#: ``(solo_fn, batch_fn)`` once loaded, else ``None``.
_loaded: Optional[Tuple[object, object]] = None
_load_attempted = False


def kernel_cache_dir() -> Path:
    """Directory holding compiled kernels (``$REPRO_KERNEL_CACHE``)."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a unique tmp file + atomic rename.

    Pool workers may race to materialise the same cache file; each
    writer lands its complete content in one ``os.replace``, so readers
    (and the compiler) never see a half-written file.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=path.suffix + ".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _compile(cache_dir: Path, so_path: Path) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (set CC to override)")
    cache_dir.mkdir(parents=True, exist_ok=True)
    src = cache_dir / (so_path.stem + ".c")
    _write_atomic(src, C_SOURCE)
    # Unique tmp per process: pool workers may compile concurrently, and
    # the final rename is atomic so they cannot corrupt each other.
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".so.tmp")
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(src)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _quarantine_so(so_path: Path) -> None:
    """Move an unloadable shared object aside as ``*.corrupt``.

    Mirrors the sweep cache's quarantine convention: the damaged
    artifact stays on disk for inspection instead of permanently
    poisoning the cache slot.  Best-effort — a failed rename falls back
    to deletion so the retry compile gets a clean slot either way.
    """
    try:
        so_path.replace(so_path.with_suffix(".so.corrupt"))
    except OSError:
        try:
            so_path.unlink()
        except OSError:
            pass


def _load_functions(so_path: Path) -> Tuple[object, object]:
    """CDLL + typed handles for both kernel entry points."""
    lib = ctypes.CDLL(str(so_path))
    fns = []
    for name in ("repro_soa_cycle", "repro_soa_cycle_batch"):
        fn = getattr(lib, name)
        fn.argtypes = _ARGTYPES
        fn.restype = ctypes.c_int64
        fns.append(fn)
    return fns[0], fns[1]


def _load() -> Optional[Tuple[object, object]]:
    """Compile (if needed) and load both kernels, once per process.

    Any failure — no compiler, sandboxed filesystem, unloadable object —
    degrades to ``None`` and the engines fall back to their numpy
    kernels, with a once-per-process :class:`RuntimeWarning` naming the
    actual failure so a missing compiler shows up as a warning instead
    of silently masquerading as a ~4x performance regression.

    A cached ``.so`` that exists but will not load (truncated by a
    killed worker, stale from an interrupted run) is quarantined as
    ``*.corrupt`` and compilation retried once before degrading.
    """
    global _loaded, _load_attempted
    if _load_attempted:
        return _loaded
    _load_attempted = True
    tag = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    so_path = kernel_cache_dir() / f"repro_soa_{tag}.so"
    try:
        existed = so_path.exists()
        if not existed:
            _compile(kernel_cache_dir(), so_path)
        try:
            _loaded = _load_functions(so_path)
        except (OSError, AttributeError) as exc:
            if not existed:
                raise
            # The cached artifact is corrupt: quarantine it and rebuild
            # once rather than disabling the C kernel for the process.
            _quarantine_so(so_path)
            try:
                _compile(kernel_cache_dir(), so_path)
                _loaded = _load_functions(so_path)
            except Exception:
                raise RuntimeError(
                    f"cached kernel {so_path.name} was corrupt "
                    f"({type(exc).__name__}: {exc}) and recompilation "
                    "failed"
                ) from exc
    except subprocess.CalledProcessError as exc:
        stderr = (exc.stderr or b"").decode(errors="replace").strip()
        _warn_kernel_fallback(f"compilation failed: {stderr or exc}")
        _loaded = None
    except Exception as exc:
        _warn_kernel_fallback(f"{type(exc).__name__}: {exc}")
        _loaded = None
    return _loaded


def load_c_kernel() -> Optional[object]:
    """The compiled single-network ``repro_soa_cycle``, or ``None``."""
    fns = _load()
    return None if fns is None else fns[0]


def load_c_kernel_batch() -> Optional[object]:
    """The compiled multi-network ``repro_soa_cycle_batch``, or ``None``."""
    fns = _load()
    return None if fns is None else fns[1]


def _warn_kernel_fallback(reason: str) -> None:
    """One warning per process when the C kernels degrade to numpy."""
    warnings.warn(
        f"repro: SoA C kernel unavailable ({reason}); falling back to the "
        "slower pure-numpy kernel.  Install a C compiler (or set CC) to "
        "restore full speed, or set REPRO_SOA_KERNEL=numpy to silence "
        "this warning.",
        RuntimeWarning,
        stacklevel=3,
    )


def c_kernel_available() -> bool:
    return load_c_kernel() is not None
