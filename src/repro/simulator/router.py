"""Route tables: rank-level dimension-order routes with dateline classes.

The engine addresses channels by dense integer ids.  Unidirectional
networks (the paper's analysis) use ``channel_id = node_rank * n + dim``;
bidirectional networks (the paper: the analysis "can be easily extended
to deal with bi-directional case") double the id space with a direction
bit.  Routes are computed on demand from the topology's coordinates and
memoised: hot-spot workloads reuse the ``N`` routes into the hot node
constantly, and uniform workloads cycle through at most ``N(N-1)``
routes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.kary_ncube import KAryNCube

__all__ = ["RouteTable"]


class RouteTable:
    """Memoised dimension-order routes between node ranks.

    A route is a pair ``(channels, classes)`` of equal-length lists:
    engine channel ids in traversal order, and the dateline deadlock
    class (0/1) used on each.
    """

    def __init__(self, network: KAryNCube) -> None:
        self.network = network
        self._dirs = 2 if network.bidirectional else 1
        self._cache: Dict[Tuple[int, int], Tuple[List[int], List[int]]] = {}

    def channel_id(self, node_rank: int, dim: int, direction: int = +1) -> int:
        """Dense engine id of a node's outgoing channel.

        ``direction`` is +1 or (bidirectional networks only) -1.
        """
        if direction == +1:
            bit = 0
        elif direction == -1:
            if not self.network.bidirectional:
                raise ValueError("negative direction on a unidirectional network")
            bit = 1
        else:
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return (node_rank * self.network.n + dim) * self._dirs + bit

    def channel_owner(self, channel_id: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`channel_id`: ``(node_rank, dim, direction)``."""
        base, bit = divmod(channel_id, self._dirs)
        rank, dim = divmod(base, self.network.n)
        return rank, dim, (+1 if bit == 0 else -1)

    @property
    def num_channels(self) -> int:
        return self.network.num_nodes * self.network.n * self._dirs

    def route(self, src_rank: int, dest_rank: int) -> Tuple[List[int], List[int]]:
        """Route between ranks; raises for ``src == dest``."""
        if src_rank == dest_rank:
            raise ValueError("no route from a node to itself")
        key = (src_rank, dest_rank)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        net = self.network
        k, n = net.k, net.n
        src = net.unrank(src_rank)
        dst = net.unrank(dest_rank)
        channels: List[int] = []
        classes: List[int] = []
        cur = list(src)
        cur_rank = src_rank
        for dim in range(n):
            fwd = (dst[dim] - cur[dim]) % k
            if fwd == 0:
                continue
            if net.bidirectional and (k - fwd) < fwd:
                direction, hops = -1, k - fwd
            else:
                direction, hops = +1, fwd
            crossed_dateline = False
            place = k ** (n - 1 - dim)
            for _ in range(hops):
                # The wrap hop (k-1 -> 0 forwards, 0 -> k-1 backwards) and
                # everything after it in this ring use dateline class 1.
                if (direction == +1 and cur[dim] == k - 1) or (
                    direction == -1 and cur[dim] == 0
                ):
                    crossed_dateline = True
                channels.append(self.channel_id(cur_rank, dim, direction))
                classes.append(1 if crossed_dateline else 0)
                new_coord = (cur[dim] + direction) % k
                cur_rank += (new_coord - cur[dim]) * place
                cur[dim] = new_coord
        result = (channels, classes)
        self._cache[key] = result
        return result
