"""Streaming statistics: latency accumulators and batch-means CIs.

The paper runs each simulation "until the network reached its steady
state, that is, until a further increase in simulated network cycles does
not change the collected statistics appreciably".  We implement the
standard batch-means method: post-warmup completions are grouped into
fixed-size batches, the batch averages are treated as (approximately)
independent samples, and a Student-t confidence interval on their mean
quantifies the remaining run-length error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from scipy import stats as _scipy_stats

__all__ = ["LatencyStats", "BatchMeans"]


class LatencyStats:
    """Streaming mean/variance/extremes of per-message latencies."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total_hops")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total_hops = 0

    def record(self, latency: float, hops: int = 0) -> None:
        """Welford update with one latency sample."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.count += 1
        delta = latency - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (latency - self._mean)
        if latency < self.min:
            self.min = latency
        if latency > self.max:
            self.max = latency
        self.total_hops += hops

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.count if self.count else math.nan

    def merge(self, other: "LatencyStats") -> None:
        """Fold another accumulator into this one (parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total_hops = other.total_hops
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        self._mean = (self._mean * self.count + other._mean * other.count) / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.total_hops += other.total_hops


@dataclass(slots=True)
class BatchMeans:
    """Batch-means estimator of the steady-state mean latency.

    A slots dataclass: :meth:`record` runs once per delivered message on
    the simulator's hot path, so instances carry no ``__dict__``.

    Parameters
    ----------
    batch_size:
        Completions per batch.  The first (partial) batch in progress is
        excluded from interval computation.
    """

    batch_size: int = 500
    _current_sum: float = field(default=0.0, repr=False)
    _current_count: int = field(default=0, repr=False)
    batch_averages: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def record(self, latency: float) -> None:
        self._current_sum += latency
        self._current_count += 1
        if self._current_count == self.batch_size:
            self.batch_averages.append(self._current_sum / self.batch_size)
            self._current_sum = 0.0
            self._current_count = 0

    @property
    def num_batches(self) -> int:
        return len(self.batch_averages)

    def mean(self) -> float:
        if not self.batch_averages:
            return math.nan
        return sum(self.batch_averages) / len(self.batch_averages)

    def confidence_interval(self, level: float = 0.95) -> Optional[float]:
        """Half-width of the Student-t CI on the mean, or ``None`` if
        fewer than two complete batches exist."""
        n = len(self.batch_averages)
        if n < 2:
            return None
        m = self.mean()
        var = sum((b - m) ** 2 for b in self.batch_averages) / (n - 1)
        t = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
        return t * math.sqrt(var / n)

    def relative_half_width(self, level: float = 0.95) -> Optional[float]:
        ci = self.confidence_interval(level)
        m = self.mean()
        if ci is None or not m:
            return None
        return ci / abs(m)
