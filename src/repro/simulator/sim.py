"""Simulation front-end: configure, run, collect results.

:class:`Simulation` is the user-facing entry point mirroring the
analytical model's interface: construct with a
:class:`~repro.simulator.config.SimulationConfig`, call :meth:`run`, get
a :class:`SimulationResult` whose ``mean_latency`` is directly comparable
with :meth:`repro.core.model.HotSpotLatencyModel.evaluate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import SweepPoint, SweepResult
from repro.simulator.config import SimulationConfig, resolve_engine_kind
from repro.simulator.network import TorusWorkload
from repro.traffic.burst import ArrivalModel
from repro.traffic.patterns import DestinationPattern

__all__ = ["Simulation", "SimulationResult", "run_batch"]


@dataclass(frozen=True)
class SimulationResult:
    """Measured outcome of one simulation run.

    ``saturated`` mirrors the analytical model's notion: the offered
    load was not drained at steady state (runaway backlog or a
    completion deficit over the measurement window), so ``mean_latency``
    — if finite — underestimates an unbounded quantity.
    """

    config: SimulationConfig
    mean_latency: float
    ci95: Optional[float]
    mean_latency_regular: float
    mean_latency_hot: float
    num_completed: int
    num_generated: int
    saturated: bool
    mean_hops: float
    max_channel_utilization: float
    hot_sink_utilization: float
    cycles_run: int

    @property
    def rate(self) -> float:
        return self.config.rate


class Simulation:
    """One flit-level simulation of the paper's workload.

    Examples
    --------
    >>> cfg = SimulationConfig(k=8, message_length=16, rate=1e-3,
    ...                        hotspot_fraction=0.2, warmup_cycles=2000,
    ...                        measure_cycles=20000, seed=7)
    >>> result = Simulation(cfg).run()
    >>> result.num_completed > 0
    True
    """

    def __init__(
        self,
        config: SimulationConfig,
        pattern: Optional[DestinationPattern] = None,
        arrival_model: Optional[ArrivalModel] = None,
    ) -> None:
        self.config = config
        self.workload = TorusWorkload(
            config, pattern=pattern, arrival_model=arrival_model
        )

    def run(self) -> SimulationResult:
        self.workload.run()
        return _workload_result(self.workload)


def _workload_result(w: TorusWorkload) -> SimulationResult:
    """Assemble the result record of a finished workload.

    Shared by :meth:`Simulation.run` and :func:`run_batch`, so a
    batched row reports through exactly the same code path as a solo
    run.
    """
    cfg = w.config
    saturated = w.backlog_saturated() or (
        w.drain_ratio() < cfg.min_drain_ratio
    )
    util = w.measured_channel_utilization()
    return SimulationResult(
        config=cfg,
        mean_latency=w.all_stats.mean,
        ci95=w.batches.confidence_interval(0.95),
        mean_latency_regular=w.regular_stats.mean,
        mean_latency_hot=w.hot_stats.mean,
        num_completed=w.all_stats.count,
        num_generated=w.measured_generated,
        saturated=saturated,
        mean_hops=w.all_stats.mean_hops,
        max_channel_utilization=float(util.max()) if util.size else 0.0,
        hot_sink_utilization=w.hot_sink_channel_utilization(),
        cycles_run=w.engine.counters.cycles_run,
    )


def run_batch(
    configs: Sequence[SimulationConfig],
    seeds: Optional[Sequence[int]] = None,
    *,
    kernel: str = "auto",
) -> List[SimulationResult]:
    """Run many configurations, advancing same-shape ones as one batch.

    Configurations sharing an array shape
    (:func:`~repro.simulator.batch.batch_shape_key`) are stacked into a
    :class:`~repro.simulator.batch.BatchedSoAEngine` so one kernel call
    per tick sweeps all of them; the rest — singletons and
    reference-engine rows — run solo.  Either way every configuration's
    result is bit-identical to its solo run, and results come back in
    input order.

    ``seeds``, when given, overrides the per-configuration seed
    (``len(seeds) == len(configs)``); ``kernel`` picks the batched
    kernel like ``$REPRO_SOA_KERNEL`` does for solo runs.
    """
    from repro.simulator.batch import BatchedSoAEngine, batch_shape_key

    cfgs = list(configs)
    if seeds is not None:
        if len(seeds) != len(cfgs):
            raise ValueError(
                f"got {len(cfgs)} configs but {len(seeds)} seeds"
            )
        cfgs = [replace(c, seed=int(s)) for c, s in zip(cfgs, seeds)]
    results: List[Optional[SimulationResult]] = [None] * len(cfgs)
    groups: Dict[Tuple, List[int]] = {}
    for i, cfg in enumerate(cfgs):
        if resolve_engine_kind(cfg.engine) == "reference":
            results[i] = Simulation(cfg).run()
        else:
            groups.setdefault(batch_shape_key(cfg), []).append(i)
    for idxs in groups.values():
        if len(idxs) == 1:
            results[idxs[0]] = Simulation(cfgs[idxs[0]]).run()
            continue
        workloads = [TorusWorkload(cfgs[i]) for i in idxs]
        BatchedSoAEngine(workloads, kernel=kernel).run()
        for i, w in zip(idxs, workloads):
            results[i] = _workload_result(w)
    return results


def sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    label: str = "simulation",
    *,
    stop_after_saturation: bool = True,
) -> SweepResult:
    """Run the simulator over a load grid, mirroring the model's sweep.

    Saturated points report ``latency = inf``; with
    ``stop_after_saturation`` the sweep stops at the first saturated
    point (higher loads are also saturated and only cost time).
    """
    from dataclasses import replace

    out = SweepResult(label=label)
    for r in rates:
        cfg = replace(base_config, rate=float(r))
        res = Simulation(cfg).run()
        latency = math.inf if res.saturated else res.mean_latency
        out.points.append(
            SweepPoint(rate=float(r), latency=latency, saturated=res.saturated)
        )
        if res.saturated and stop_after_saturation:
            break
    return out
