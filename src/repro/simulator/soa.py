"""Data-oriented (structure-of-arrays) cycle engine.

:class:`SoACycleEngine` runs the same four-phase wormhole simulation as
the reference :class:`~repro.simulator.engine.CycleEngine`, but the hot
path — per-cycle readiness checks and flit moves — operates on flat
preallocated ``numpy`` int32 arrays instead of per-message ``Message``
objects and per-pool Python lists.  All arrays are indexed by *slot*
(``channel * num_vcs + vc``), one slot per virtual channel:

``avail``
    Flits ready to cross this channel for the holding worm
    (``crossed[hop-1] - crossed[hop]``, or ``length - crossed[0]`` at
    the injection hop).  ``0`` for free slots, so a free slot is never
    ready.
``head_room``
    Free space in the downstream VC buffer
    (``buffer_depth - (crossed[hop] - crossed[hop+1])``), plus a large
    constant once the hop is known to be final (instantaneous ejection:
    the depth check never applies).
``moved``
    Flits that crossed this channel for the holder (``crossed[hop]``).
``nxt_evt``
    The ``moved`` value at which the holder next needs Python-side
    boundary handling: ``1`` until the header arrival is processed,
    then the message length for the tail departure.
``nxt_idx`` / ``prv_idx``
    Flat slot index of the downstream / upstream segment of the same
    worm (or the sentinel slot ``N``), forming a doubly linked list per
    in-flight message.  Each flit move feeds one flit of availability
    downstream and returns one credit upstream through these links, so
    per-message ``crossed`` vectors are never touched per cycle.

A cycle is one scan-then-apply sweep over these arrays — the C kernel
from :mod:`repro.simulator.kernel` when a compiler is available (set
``REPRO_SOA_KERNEL=numpy`` to force the pure-numpy fallback, ``c`` to
require the C kernel).  ``Message`` objects are only consulted at
injection, header-arrival, tail-departure and delivery boundaries,
which occur twice per hop per message rather than once per flit.

Arrival admission, FCFS virtual-channel allocation and adaptive
rerouting are inherited from the reference engine unchanged (the pools
are the same :class:`~repro.simulator.buffers.VirtualChannelPool`
objects), and both engines iterate channels in sorted id order — which
is what makes their outputs (delivered latencies, counters, per-channel
flit counts) bit-identical, a property the equivalence test suite
asserts over randomised configurations.
"""

from __future__ import annotations

import ctypes
import os
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.simulator.engine import CycleEngine, NextHopChooser
from repro.simulator.flit import Message
from repro.simulator.kernel import load_c_kernel

__all__ = ["SoACycleEngine", "resolve_soa_kernel"]

# Added to head_room once a hop is known to be final: the downstream
# depth check must never block ejection.  Far larger than any message
# length, far smaller than int32 overflow headroom.
_FINAL_BONUS = 1 << 28

_EMPTY_EVENTS = np.empty(0, dtype=np.int32)


def resolve_soa_kernel(kernel: str = "auto") -> str:
    """Which SoA kernel to use: ``"c"`` or ``"numpy"``.

    The ``kernel`` argument and ``$REPRO_SOA_KERNEL`` are normalised
    identically (case- and whitespace-insensitive, empty means
    ``auto``); a non-``auto`` argument wins, ``auto`` defers to the
    environment variable.  Raises a :class:`ValueError` naming the
    offending source on bad input, or a :class:`RuntimeError` when
    ``c`` is forced but unavailable.
    """
    raw = str(kernel).strip().lower() or "auto"
    if raw not in ("auto", "c", "numpy"):
        raise ValueError(
            f"kernel must be 'auto', 'c' or 'numpy', got {kernel!r}"
        )
    if raw == "auto":
        raw = (
            os.environ.get("REPRO_SOA_KERNEL", "auto").strip().lower()
            or "auto"
        )
        if raw not in ("auto", "c", "numpy"):
            raise ValueError(
                f"REPRO_SOA_KERNEL must be 'auto', 'c' or 'numpy', got {raw!r}"
            )
    if raw == "numpy":
        return "numpy"
    if load_c_kernel() is not None:
        return "c"
    if raw == "c":
        raise RuntimeError(
            "the C kernel was forced (REPRO_SOA_KERNEL=c or kernel='c') "
            "but could not be compiled (no C compiler on PATH?)"
        )
    return "numpy"


class SoACycleEngine(CycleEngine):
    """Structure-of-arrays engine, bit-identical to the reference.

    Accepts the same constructor arguments as
    :class:`~repro.simulator.engine.CycleEngine` and exposes the same
    public surface (``counters``, ``messages``, ``pools``,
    ``channel_flit_counts``, ``step`` ...); only the per-cycle hot path
    differs.  :attr:`kernel_name` reports which kernel drives it.
    """

    def __init__(
        self,
        num_channels: int,
        num_vcs: int,
        buffer_depth: int,
        on_delivery: Optional[Callable[[Message, int], None]] = None,
        next_hop_chooser: Optional["NextHopChooser"] = None,
        adaptive: bool = False,
    ) -> None:
        super().__init__(
            num_channels,
            num_vcs,
            buffer_depth,
            on_delivery=on_delivery,
            next_hop_chooser=next_hop_chooser,
            adaptive=adaptive,
        )
        n_slots = num_channels * num_vcs
        self._n_slots = n_slots
        # Slot state; one sentinel entry at index n_slots absorbs the
        # neighbour updates of worm segments with no neighbour.
        self._avail = np.zeros(n_slots + 1, dtype=np.int32)
        self._head_room = np.zeros(n_slots + 1, dtype=np.int32)
        self._moved = np.zeros(n_slots + 1, dtype=np.int32)
        self._nxt_evt = np.zeros(n_slots + 1, dtype=np.int32)
        self._nxt_idx = np.full(n_slots + 1, n_slots, dtype=np.int32)
        self._prv_idx = np.full(n_slots + 1, n_slots, dtype=np.int32)
        self._rr = np.zeros(num_channels, dtype=np.int32)
        self._busy_cnt = np.zeros(num_channels, dtype=np.int32)
        self._slot_msg: List[Optional[Message]] = [None] * n_slots
        self._slot_hop: List[int] = [-1] * n_slots
        # Persistent views/scratch so the per-cycle path allocates nothing.
        self._avail_v = self._avail[:n_slots]
        self._head_v = self._head_room[:n_slots]
        self._best = np.empty(num_channels, dtype=np.int32)
        self._vcsel = np.empty(num_channels, dtype=np.int32)
        self._win_scratch = np.empty(num_channels, dtype=np.int32)
        self._evt_scratch = np.empty(num_channels, dtype=np.int32)
        self._nev_out = np.zeros(1, dtype=np.int32)
        self.kernel_name = resolve_soa_kernel()
        self._c_fn = load_c_kernel() if self.kernel_name == "c" else None
        if self._c_fn is not None:
            # One context block holding scalars + raw array addresses;
            # the backing arrays are instance attributes, so the
            # addresses stay valid for the engine's lifetime.
            self._ctx = np.array(
                [
                    num_channels,
                    num_vcs,
                    self._busy_cnt.ctypes.data,
                    self._rr.ctypes.data,
                    self._avail.ctypes.data,
                    self._head_room.ctypes.data,
                    self._moved.ctypes.data,
                    self._nxt_evt.ctypes.data,
                    self._nxt_idx.ctypes.data,
                    self._prv_idx.ctypes.data,
                    self.channel_flit_counts.ctypes.data,
                    self._win_scratch.ctypes.data,
                    self._evt_scratch.ctypes.data,
                    self._nev_out.ctypes.data,
                ],
                dtype=np.uint64,
            )
            self._ctx_ptr = self._ctx.ctypes.data_as(
                ctypes.POINTER(ctypes.c_uint64)
            )

    # ------------------------------------------------------------------
    # Boundary bookkeeping (grants, releases, header/tail events)
    # ------------------------------------------------------------------
    def _on_grant(self, ch: int, msg: Message, hop: int, vc: int) -> None:
        msg.vcs[hop] = vc
        msg.alloc_hops = hop + 1
        slot = ch * self.num_vcs + vc
        self._slot_msg[slot] = msg
        self._slot_hop[slot] = hop
        self._moved[slot] = 0
        self._nxt_evt[slot] = 1
        self._nxt_idx[slot] = self._n_slots
        if hop == 0:
            self._avail[slot] = msg.length
            self._prv_idx[slot] = self._n_slots
        else:
            prev_slot = (
                msg.route_channels[hop - 1] * self.num_vcs + msg.vcs[hop - 1]
            )
            # Everything the upstream segment has moved is waiting in
            # this channel's input buffer; future upstream moves feed
            # this slot through the nxt link.
            self._avail[slot] = self._moved[prev_slot]
            self._prv_idx[slot] = prev_slot
            self._nxt_idx[prev_slot] = slot
        room = self.buffer_depth
        if hop == msg.final_hop:
            room += _FINAL_BONUS
        self._head_room[slot] = room
        self._busy_cnt[ch] += 1
        if hop == 0:
            self._on_injection_start(msg)

    def _release_hop(self, msg: Message, hop: int) -> None:
        vc = msg.vcs[hop]
        if vc < 0:
            raise RuntimeError(
                f"message {msg.msg_id} releasing unallocated hop {hop}"
            )
        ch = msg.route_channels[hop]
        self.pools[ch].release(vc)
        msg.vcs[hop] = -1
        self._alloc_dirty = True
        self._alloc_candidates.add(ch)
        slot = ch * self.num_vcs + vc
        self._slot_msg[slot] = None
        self._slot_hop[slot] = -1
        self._avail[slot] = 0  # a free slot must never look ready
        self._head_room[slot] = 0
        self._moved[slot] = 0
        self._nxt_evt[slot] = 0
        self._busy_cnt[ch] -= 1

    def _process_boundary(self, slot: int) -> None:
        msg = self._slot_msg[slot]
        hop = self._slot_hop[slot]
        moved = int(self._moved[slot])
        if moved == 1:
            # Header reached the next router (mirrors the reference
            # engine's _apply_moves header branch).
            if msg.dynamic:
                choice = self.next_hop_chooser(msg, hop + 1)
                if choice is None:
                    msg.final_hop = hop
                    self._head_room[slot] += _FINAL_BONUS
                else:
                    nxt_ch, cls, impatient = choice
                    msg.extend_route(nxt_ch, cls)
                    self.pools[nxt_ch].request(
                        msg.msg_id, hop + 1, cls, impatient
                    )
                    self._pending_channels.add(nxt_ch)
                    self._alloc_candidates.add(nxt_ch)
                    self._alloc_dirty = True
            elif hop + 1 < msg.num_hops:
                nxt_ch = msg.route_channels[hop + 1]
                self.pools[nxt_ch].request(
                    msg.msg_id, hop + 1, msg.route_classes[hop + 1]
                )
                self._pending_channels.add(nxt_ch)
                self._alloc_candidates.add(nxt_ch)
                self._alloc_dirty = True
            self._nxt_evt[slot] = msg.length
        if moved == msg.length:
            # Tail crossed this channel: the upstream VC drains free,
            # and on the final hop the message completes.
            if hop >= 1:
                self._release_hop(msg, hop - 1)
                self._prv_idx[slot] = self._n_slots
            if hop == msg.final_hop:
                self._release_hop(msg, hop)
                self._complete(msg)

    # ------------------------------------------------------------------
    # The per-cycle kernels
    # ------------------------------------------------------------------
    def _cycle_numpy(self) -> Tuple[int, np.ndarray]:
        """Pure-numpy scan + apply (same integer semantics as the C kernel)."""
        num_vcs = self.num_vcs
        avail = self._avail
        head = self._head_room
        ready = (self._avail_v > 0) & (self._head_v > 0)
        rdy = ready.reshape(self.num_channels, num_vcs)
        rr = self._rr
        if num_vcs == 2:
            # Two VCs need no priority search: the cursor only matters
            # when both are ready.
            r0 = rdy[:, 0]
            r1 = rdy[:, 1]
            wch = np.flatnonzero(r0 | r1)
            if wch.size == 0:
                return 0, _EMPTY_EVENTS
            wvc = np.where(r0 & r1, rr, r1)[wch]
        else:
            best = self._best
            best[:] = num_vcs
            vcsel = self._vcsel
            vcsel[:] = 0
            for v in range(num_vcs):
                rel = (v - rr) % num_vcs
                pri = np.where(rdy[:, v], rel, num_vcs)
                upd = pri < best
                vcsel[upd] = v
                best[upd] = pri[upd]
            wch = np.flatnonzero(best < num_vcs)
            if wch.size == 0:
                return 0, _EMPTY_EVENTS
            wvc = vcsel[wch]
        wf = wch * num_vcs + wvc
        rr[wch] = (wvc + 1) % num_vcs
        mv = self._moved[wf] + 1
        self._moved[wf] = mv
        avail[wf] = avail[wf] - 1
        head[wf] = head[wf] - 1
        # Winner slots are unique, and so are their live neighbours; the
        # sentinel absorbs repeated no-neighbour updates harmlessly.
        nxt = self._nxt_idx[wf]
        avail[nxt] = avail[nxt] + 1
        prv = self._prv_idx[wf]
        head[prv] = head[prv] + 1
        self.channel_flit_counts[wch] += 1
        return int(wf.size), wf[mv == self._nxt_evt[wf]]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Run one cycle; returns the number of flits moved."""
        self._admit_arrivals()
        if self._needs_reroute:
            self._reroute_cancelled()
        if self._alloc_dirty and self._pending_channels:
            self._allocate_vcs()
        fn = self._c_fn
        if not self.messages:
            moves = 0
        elif fn is not None:
            moves = int(fn(self._ctx_ptr))
            nev = int(self._nev_out[0])
            if nev:
                events = self._evt_scratch
                for i in range(nev):
                    self._process_boundary(int(events[i]))
        else:
            moves, events = self._cycle_numpy()
            if events.size:
                for slot in events.tolist():
                    self._process_boundary(slot)
        if moves:
            self.counters.flit_moves += moves
            self._last_progress_cycle = self.cycle
        elif self.messages:
            if self.cycle - self._last_progress_cycle > self._watchdog_cycles:
                raise RuntimeError(
                    f"no flit progress for {self._watchdog_cycles} cycles "
                    f"with {len(self.messages)} messages in flight — engine bug"
                )
        else:
            self._last_progress_cycle = self.cycle
        self.cycle += 1
        self.counters.cycles_run += 1
        return moves
