"""Simulation configuration and validation."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["SimulationConfig", "normalize_engine_kind", "resolve_engine_kind"]


def normalize_engine_kind(engine: str) -> str:
    """Canonicalise an engine selector (strip/lowercase, '' -> 'auto').

    The *same* normalisation is applied to the ``engine=`` argument and
    to ``$REPRO_ENGINE``, so ``SimulationConfig(engine="SOA")`` and
    ``REPRO_ENGINE=SOA`` select identically.  Raises a
    :class:`ValueError` on anything other than ``auto``/``soa``/
    ``reference``.
    """
    raw = str(engine).strip().lower() or "auto"
    if raw not in ("auto", "soa", "reference"):
        raise ValueError(
            f"engine must be 'auto', 'soa' or 'reference', got {engine!r}"
        )
    return raw


def resolve_engine_kind(engine: str = "auto") -> str:
    """Resolve an engine selector to ``"soa"`` or ``"reference"``.

    The argument is normalised exactly like ``$REPRO_ENGINE`` (case-
    and whitespace-insensitive); ``"auto"`` defers to the environment
    variable and defaults to the structure-of-arrays engine.  Both
    engines produce bit-identical simulations, so the choice only
    affects speed.  Raises a :class:`ValueError` naming
    ``REPRO_ENGINE`` on bad environment input.
    """
    kind = normalize_engine_kind(engine)
    if kind in ("soa", "reference"):
        return kind
    raw = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if raw in ("", "auto", "soa"):
        return "soa"
    if raw == "reference":
        return "reference"
    raise ValueError(
        f"REPRO_ENGINE must be 'soa' or 'reference', got {raw!r}"
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run.

    Network / workload parameters mirror the analytical model; the run
    control parameters govern warmup, measurement length and saturation
    detection.

    Attributes
    ----------
    k, n:
        Radix and dimensionality of the k-ary n-cube.
    bidirectional:
        ``False`` (default): the paper's unidirectional network.
        ``True``: bidirectional links with minimal-direction
        dimension-order routing — the extension the paper mentions in
        §2 ("can be easily extended to deal with bi-directional case").
    routing:
        ``"deterministic"`` (the paper's dimension-order algorithm,
        default) or ``"adaptive"`` — minimal adaptive routing with
        Duato-style escape channels (one escape VC per dateline class +
        an adaptive pool; needs ``num_vcs >= 3``).  The adaptive mode is
        the comparator the paper's introduction discusses ([7], [17],
        [21], [22]); see ``examples/deterministic_vs_adaptive.py``.
    num_vcs:
        Virtual channels per physical channel (>= 2 for deadlock-free
        torus routing; the two dateline classes partition them).
    buffer_depth:
        Flit capacity of each virtual-channel input buffer.  With the
        engine's next-cycle credit semantics a depth of at least 2 is
        required for full-rate (1 flit/cycle) streaming; the default 4
        is a common router configuration.
    message_length:
        Fixed message length ``Lm`` in flits.
    rate:
        Per-node Poisson generation rate (messages/cycle).
    hotspot_fraction:
        Pfister–Norton ``h``; 0 gives uniform traffic.
    hotspot_node:
        Coordinates of the hot node (defaults to the origin).
    warmup_cycles:
        Cycles discarded before statistics collection.
    measure_cycles:
        Measurement window after warmup; the run ends earlier if
        ``target_completions`` is reached first.
    target_completions:
        Optional completion budget (post-warmup); ``None`` disables.
    seed:
        RNG seed (numpy PCG64).
    model_ejection:
        The paper's assumption (iv) transfers messages "to the local PE
        as soon as they arrive" — an infinite-bandwidth ejection port
        (the default, ``False``).  Setting ``True`` adds a real ejection
        channel per node (one flit/cycle, ``num_vcs`` virtual channels),
        which makes the hot node's ejection port an additional
        bottleneck; used by the assumption-(iv) ablation.
    saturation_backlog_factor:
        The run aborts and reports saturation when more than
        ``factor * num_nodes`` messages are backlogged (queued at
        sources or in flight) — an unstable queue grows without bound,
        so a deep backlog is a reliable instability signal.
    min_drain_ratio:
        After measurement, the run is flagged saturated when fewer than
        this fraction of the messages generated during the measurement
        window completed in it (completion deficit = growing queues).
    engine:
        Cycle-engine implementation: ``"soa"`` (structure-of-arrays hot
        path, the fast default), ``"reference"`` (the original
        object-per-message engine, kept as the correctness oracle) or
        ``"auto"`` (default) which follows ``$REPRO_ENGINE`` and falls
        back to ``"soa"``.  Both produce bit-identical results.
    """

    k: int
    n: int = 2
    bidirectional: bool = False
    routing: str = "deterministic"
    num_vcs: int = 2
    buffer_depth: int = 4
    message_length: int = 32
    rate: float = 1e-4
    hotspot_fraction: float = 0.0
    hotspot_node: Optional[Tuple[int, ...]] = None
    warmup_cycles: int = 10_000
    measure_cycles: int = 150_000
    target_completions: Optional[int] = None
    seed: int = 0
    model_ejection: bool = False
    saturation_backlog_factor: float = 8.0
    min_drain_ratio: float = 0.85
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"radix k must be >= 2, got {self.k}")
        if self.n < 1:
            raise ValueError(f"dimensions n must be >= 1, got {self.n}")
        if self.routing not in ("deterministic", "adaptive"):
            raise ValueError(
                f"routing must be 'deterministic' or 'adaptive', got "
                f"{self.routing!r}"
            )
        if self.num_vcs < 2:
            raise ValueError(f"num_vcs must be >= 2, got {self.num_vcs}")
        if self.routing == "adaptive":
            if self.num_vcs < 3:
                raise ValueError(
                    "adaptive routing needs num_vcs >= 3 "
                    "(2 escape + >= 1 adaptive)"
                )
            if self.bidirectional:
                raise ValueError(
                    "adaptive routing is implemented for the paper's "
                    "unidirectional networks only"
                )
        if self.buffer_depth < 1:
            raise ValueError(f"buffer_depth must be >= 1, got {self.buffer_depth}")
        if self.message_length < 1:
            raise ValueError(
                f"message_length must be >= 1, got {self.message_length}"
            )
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError(
                f"hotspot_fraction must be in [0, 1], got {self.hotspot_fraction}"
            )
        if self.warmup_cycles < 0:
            raise ValueError(f"warmup_cycles must be >= 0, got {self.warmup_cycles}")
        if self.measure_cycles < 1:
            raise ValueError(f"measure_cycles must be >= 1, got {self.measure_cycles}")
        if self.target_completions is not None and self.target_completions < 1:
            raise ValueError(
                f"target_completions must be >= 1, got {self.target_completions}"
            )
        if self.saturation_backlog_factor <= 0:
            raise ValueError(
                "saturation_backlog_factor must be positive, got "
                f"{self.saturation_backlog_factor}"
            )
        if not 0.0 < self.min_drain_ratio <= 1.0:
            raise ValueError(
                f"min_drain_ratio must be in (0, 1], got {self.min_drain_ratio}"
            )
        # Store the canonical selector so equality, hashing and cache
        # keys do not distinguish "SOA" from "soa" (frozen dataclass:
        # write through object.__setattr__).
        object.__setattr__(self, "engine", normalize_engine_kind(self.engine))
        if self.hotspot_node is not None:
            if len(self.hotspot_node) != self.n:
                raise ValueError(
                    f"hotspot_node {self.hotspot_node} must have {self.n} coordinates"
                )
            for c in self.hotspot_node:
                if not 0 <= c < self.k:
                    raise ValueError(
                        f"hotspot_node coordinate {c} out of range [0, {self.k})"
                    )

    @property
    def num_nodes(self) -> int:
        return self.k**self.n

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles
