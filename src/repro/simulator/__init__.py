"""Flit-level wormhole simulator for k-ary n-cubes.

The validation substrate of the paper: a discrete-event simulator
"operating at the flit level" where "the network cycle time ... is
defined as the transmission time of a single flit across a physical
channel" (paper §4).  The simulator implements assumptions (i)-(vi) of
the analytical model:

* Poisson sources, Pfister–Norton hot-spot destinations;
* fixed message length ``Lm`` flits;
* infinite injection queues, instantaneous ejection;
* deterministic dimension-order routing (x first, then y);
* ``V >= 2`` virtual channels per physical channel with per-VC flit
  buffers; a VC holds the channel for the whole message (wormhole) but
  physical channel *bandwidth* is time-multiplexed flit-by-flit among
  ready VCs (fair round-robin, Dally [3]);
* a non-blocking crossbar: an input VC only ever waits for its
  *outgoing* channel, never for the switch.

Deadlock freedom uses the Dally–Seitz dateline scheme: virtual channels
are split into two classes per physical channel and a message moves to
class 1 when it crosses a ring's wrap-around channel
(:mod:`repro.topology.routing`).

Public front-end: :class:`~repro.simulator.sim.Simulation` with
:class:`~repro.simulator.config.SimulationConfig`.

Two interchangeable cycle engines exist (``config.engine`` /
``$REPRO_ENGINE``): the structure-of-arrays engine
(:class:`~repro.simulator.soa.SoACycleEngine`, the fast default) and
the reference engine (:class:`~repro.simulator.engine.CycleEngine`,
the correctness oracle); their outputs are bit-identical.  Same-shape
configuration sets can additionally be advanced together —
:func:`~repro.simulator.sim.run_batch` /
:class:`~repro.simulator.batch.BatchedSoAEngine` sweep B stacked
networks per kernel call, each row bit-identical to its solo run.
"""

from repro.simulator.batch import BatchedSoAEngine, batch_shape_key
from repro.simulator.config import SimulationConfig, resolve_engine_kind
from repro.simulator.engine import CycleEngine
from repro.simulator.sim import Simulation, SimulationResult, run_batch
from repro.simulator.soa import SoACycleEngine
from repro.simulator.stats import BatchMeans, LatencyStats

__all__ = [
    "SimulationConfig",
    "Simulation",
    "SimulationResult",
    "BatchMeans",
    "LatencyStats",
    "CycleEngine",
    "SoACycleEngine",
    "BatchedSoAEngine",
    "batch_shape_key",
    "run_batch",
    "resolve_engine_kind",
]
