"""Workload wiring: topology + traffic pattern + cycle engine.

:class:`TorusWorkload` owns the arrival generation (one pending arrival
per source, so memory stays O(N) regardless of run length; Poisson by
default, bursty models via ``arrival_model``), message construction
(destination draw, route lookup or adaptive next-hop choice,
hot/regular classification) and the delivery statistics.

Arrival gaps are pre-drawn in numpy blocks per source (each source owns
a spawned child RNG) rather than one ``next_gap`` call per message;
destination draws stay on the workload RNG in admission order, so a run
is fully determined by ``config.seed`` for any engine and job count.

The cycle engine is selected by ``config.engine`` /
``$REPRO_ENGINE``: the structure-of-arrays engine
(:class:`~repro.simulator.soa.SoACycleEngine`, default) or the
reference engine (:class:`~repro.simulator.engine.CycleEngine`); the
two are bit-identical in output.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simulator.config import SimulationConfig, resolve_engine_kind
from repro.traffic.burst import ArrivalModel, ExponentialArrivals
from repro.simulator.engine import CycleEngine
from repro.simulator.flit import Message
from repro.simulator.soa import SoACycleEngine
from repro.simulator.router import RouteTable
from repro.simulator.stats import BatchMeans, LatencyStats
from repro.topology.kary_ncube import KAryNCube
from repro.traffic.patterns import DestinationPattern, HotSpotPattern, UniformPattern

__all__ = ["TorusWorkload"]


class _GapStream:
    """Block-buffered inter-arrival gaps for one source.

    Pre-draws gaps from the source's arrival model in numpy blocks (one
    vectorised RNG call per block for renewal models) instead of one
    scalar draw per admitted message.
    """

    __slots__ = ("model", "rng", "_buf", "_pos")

    _BLOCK = 256

    def __init__(self, model: ArrivalModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self._buf: List[float] = []
        self._pos = 0

    def next_gap(self) -> float:
        if self._pos >= len(self._buf):
            self._buf = self.model.sample_gaps(self.rng, self._BLOCK).tolist()
            self._pos = 0
        gap = self._buf[self._pos]
        self._pos += 1
        return gap


class TorusWorkload:
    """Drives a :class:`~repro.simulator.engine.CycleEngine` with the
    paper's workload on a unidirectional k-ary n-cube.

    Parameters
    ----------
    config:
        Run parameters.
    pattern:
        Optional destination pattern override; by default the pattern is
        built from ``config`` (:class:`HotSpotPattern` when
        ``hotspot_fraction > 0`` else :class:`UniformPattern`).
    arrival_model:
        Optional per-source arrival process (defaults to the paper's
        Poisson assumption,
        :class:`~repro.traffic.burst.ExponentialArrivals` at
        ``config.rate``).  Bursty alternatives live in
        :mod:`repro.traffic.burst`.
    """

    def __init__(
        self,
        config: SimulationConfig,
        pattern: Optional[DestinationPattern] = None,
        arrival_model: Optional[ArrivalModel] = None,
    ) -> None:
        self.config = config
        self.network = KAryNCube(
            k=config.k, n=config.n, bidirectional=config.bidirectional
        )
        self.routes = RouteTable(self.network)
        if pattern is None:
            if config.hotspot_fraction > 0.0:
                pattern = HotSpotPattern(
                    self.network,
                    config.hotspot_fraction,
                    config.hotspot_node,
                )
            else:
                pattern = UniformPattern(self.network)
        self.pattern = pattern
        self.rng = np.random.default_rng(config.seed)
        # With explicit ejection modelling, every node owns one more
        # channel (id = num_network_channels + node rank) into its PE.
        self._num_network_channels = self.routes.num_channels
        total_channels = self._num_network_channels + (
            self.network.num_nodes if config.model_ejection else 0
        )
        adaptive = config.routing == "adaptive"
        self.engine_kind = resolve_engine_kind(config.engine)
        engine_cls = (
            CycleEngine if self.engine_kind == "reference" else SoACycleEngine
        )
        self.engine = engine_cls(
            num_channels=total_channels,
            num_vcs=config.num_vcs,
            buffer_depth=config.buffer_depth,
            on_delivery=self._on_delivery,
            next_hop_chooser=self._choose_next_hop if adaptive else None,
            adaptive=adaptive,
        )
        self._msg_seq = 0
        # Lazy arrival generation: one pending arrival per source, with
        # gaps pre-drawn in blocks from a per-source child RNG.
        self._arrivals: List[Tuple[float, int]] = []
        self._arrival_models: List[_GapStream] = []
        effective_rate = (
            arrival_model.mean_rate if arrival_model is not None else config.rate
        )
        if arrival_model is None and config.rate > 0.0:
            arrival_model = ExponentialArrivals(config.rate)
        self.effective_rate = effective_rate
        if arrival_model is not None and effective_rate > 0.0:
            gap_rngs = self.rng.spawn(self.network.num_nodes)
            for src in range(self.network.num_nodes):
                stream = _GapStream(arrival_model.fresh(), gap_rngs[src])
                self._arrival_models.append(stream)
                self._arrivals.append((stream.next_gap(), src))
            heapq.heapify(self._arrivals)
        # Statistics.
        self.warmup_end = config.warmup_cycles
        self.all_stats = LatencyStats()
        self.regular_stats = LatencyStats()
        self.hot_stats = LatencyStats()
        self.batches = BatchMeans(batch_size=200)
        self.measured_generated = 0
        self._flits_at_warmup: Optional[np.ndarray] = None
        self._cycles_at_warmup = 0

    # ------------------------------------------------------------------
    def _hot_rank(self) -> Optional[int]:
        if isinstance(self.pattern, HotSpotPattern):
            return self.pattern.hotspot_rank
        return None

    def ejection_channel_id(self, node_rank: int) -> int:
        if not self.config.model_ejection:
            raise ValueError("ejection channels not modelled in this run")
        return self._num_network_channels + node_rank

    def _make_message(self, arrival_time: float, src: int) -> Message:
        dest = self.pattern.draw(src, self.rng)
        hot_rank = self._hot_rank()
        is_hot = hot_rank is not None and dest == hot_rank and src != hot_rank
        if self.config.routing == "adaptive":
            msg = Message(
                msg_id=self._msg_seq,
                src=src,
                dest=dest,
                length=self.config.message_length,
                generated_at=int(arrival_time),
                route_channels=[0],  # placeholder; chosen below
                route_classes=[0],
                is_hot=is_hot,
                dynamic=True,
            )
            ch, cls, _ = self._choose_next_hop(msg, 0)
            msg.route_channels[0] = ch
            msg.route_classes[0] = cls
        else:
            channels, classes = self.routes.route(src, dest)
            if self.config.model_ejection:
                channels = channels + [self._num_network_channels + dest]
                classes = classes + [0]
            msg = Message(
                msg_id=self._msg_seq,
                src=src,
                dest=dest,
                length=self.config.message_length,
                generated_at=int(arrival_time),
                route_channels=channels,
                route_classes=classes,
                is_hot=is_hot,
            )
        self._msg_seq += 1
        return msg

    # ------------------------------------------------------------------
    # Minimal adaptive routing (Duato-style escape; see config.routing)
    # ------------------------------------------------------------------
    def _position_after(self, msg: Message, hop: int) -> int:
        """Rank of the router holding the header before crossing ``hop``."""
        if hop == 0:
            return msg.src
        prev = msg.route_channels[hop - 1]
        if prev >= self._num_network_channels:
            raise RuntimeError("header advanced past an ejection channel")
        rank, dim, direction = self.routes.channel_owner(prev)
        node = self.network.unrank(rank)
        return self.network.rank(self.network.neighbor(node, dim, direction))

    def _choose_next_hop(self, msg: Message, hop: int):
        """Minimal adaptive next-hop choice with escape fallback.

        Picks the productive dimension whose channel has the most free
        *adaptive* VCs right now (an impatient request — re-evaluated
        every cycle it goes ungranted).  When no adaptive VC is free on
        any productive channel, the message falls back on the escape
        sub-network: the lowest productive dimension with the correct
        dateline class — exactly the deterministic e-cube channel, which
        keeps the escape network deadlock-free (Duato).
        """
        net = self.network
        if hop > 0 and msg.route_channels[hop - 1] >= self._num_network_channels:
            return None  # the header just crossed the ejection channel
        cur_rank = self._position_after(msg, hop)
        if cur_rank == msg.dest:
            if self.config.model_ejection and (
                not msg.route_channels
                or msg.route_channels[hop - 1] < self._num_network_channels
            ):
                # One final hop into the PE through the ejection channel.
                return (self._num_network_channels + msg.dest, 0, False)
            return None
        cur = net.unrank(cur_rank)
        dst = net.unrank(msg.dest)
        productive = [d for d in range(net.n) if cur[d] != dst[d]]
        # Adaptive choice: most free adaptive-class VCs (class index 2).
        best_ch = -1
        best_free = 0
        best_dim = -1
        for d in productive:
            ch = self.routes.channel_id(cur_rank, d)
            free = self.engine.pools[ch].free_count(2)
            if free > best_free:
                best_ch, best_free, best_dim = ch, free, d
        if best_ch >= 0:
            if cur[best_dim] == net.k - 1:
                msg.wrapped_dims |= 1 << best_dim
            return (best_ch, 2, True)
        # Escape: deterministic e-cube channel with dateline class.
        d = productive[0]
        ch = self.routes.channel_id(cur_rank, d)
        wrapped = bool((msg.wrapped_dims >> d) & 1)
        at_wrap = cur[d] == net.k - 1
        if at_wrap:
            msg.wrapped_dims |= 1 << d
        return (ch, 1 if (wrapped or at_wrap) else 0, False)

    def _feed_arrivals(self) -> None:
        """Materialise every arrival due before the next engine cycle."""
        limit = self.engine.cycle + 1
        heap = self._arrivals
        while heap and heap[0][0] < limit:
            t, src = heapq.heappop(heap)
            msg = self._make_message(t, src)
            if msg.generated_at >= self.warmup_end:
                self.measured_generated += 1
            self.engine.schedule_message(t, msg)
            heapq.heappush(
                heap, (t + self._arrival_models[src].next_gap(), src)
            )

    def _on_delivery(self, msg: Message, completion_cycle: int) -> None:
        if completion_cycle < self.warmup_end:
            return
        latency = completion_cycle - msg.generated_at + 1
        self.all_stats.record(latency, hops=msg.num_hops)
        self.batches.record(latency)
        if msg.is_hot:
            self.hot_stats.record(latency, hops=msg.num_hops)
        else:
            self.regular_stats.record(latency, hops=msg.num_hops)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Run warmup + measurement (or until saturation abort)."""
        cfg = self.config
        if not self._arrivals:
            self._flits_at_warmup = self.engine.channel_flit_counts.copy()
            return
        engine = self.engine
        backlog_limit = int(cfg.saturation_backlog_factor * cfg.num_nodes)
        total = cfg.total_cycles
        target = cfg.target_completions
        warmup_end = self.warmup_end
        # Hot loop: every attribute used per cycle is a local.
        feed = self._feed_arrivals
        step = engine.step
        counters = engine.counters
        all_stats = self.all_stats
        heap = self._arrivals
        while engine.cycle < total:
            if engine.cycle == warmup_end and self._flits_at_warmup is None:
                self._flits_at_warmup = engine.channel_flit_counts.copy()
                self._cycles_at_warmup = counters.cycles_run
            feed()
            step()
            if counters.generated - counters.completed > backlog_limit:
                break
            if target is not None and all_stats.count >= target:
                break
            if heap and engine.idle():
                # Fully idle network: jump the clock to the next pending
                # (workload-side) arrival instead of stepping through
                # empty cycles one by one, clamping at the warmup
                # boundary so the snapshot above is still taken on the
                # right cycle.  Skipped cycles count as run — see
                # CycleEngine.fast_forward_to.
                nxt = min(int(heap[0][0]), total)
                if engine.cycle < warmup_end < nxt:
                    nxt = warmup_end
                engine.fast_forward_to(nxt)
        if self._flits_at_warmup is None:
            self._flits_at_warmup = engine.channel_flit_counts.copy()
            self._cycles_at_warmup = engine.counters.cycles_run

    # ------------------------------------------------------------------
    def backlog_saturated(self) -> bool:
        cfg = self.config
        return self.engine.counters.backlog > int(
            cfg.saturation_backlog_factor * cfg.num_nodes
        )

    def drain_ratio(self) -> float:
        """Measured completions per measured generation (1 at steady state)."""
        if self.measured_generated == 0:
            return 1.0
        return self.all_stats.count / self.measured_generated

    def measured_channel_utilization(self) -> np.ndarray:
        """Per-channel flit utilisation over the measurement window."""
        assert self._flits_at_warmup is not None
        cycles = self.engine.counters.cycles_run - self._cycles_at_warmup
        if cycles <= 0:
            return np.zeros_like(self.engine.channel_flit_counts, dtype=float)
        delta = self.engine.channel_flit_counts - self._flits_at_warmup
        return delta / cycles

    def hot_sink_channel_utilization(self) -> float:
        """Utilisation of the most loaded channel entering the hot node.

        The last-dimension channel one hop upstream of the hot node
        carries (nearly) the entire hot-spot flow — the analytical
        model's saturation driver (``lam^h_y,1``).
        """
        hot_rank = self._hot_rank()
        if hot_rank is None:
            return 0.0
        net = self.network
        util = self.measured_channel_utilization()
        hot = net.unrank(hot_rank)
        dim = net.n - 1
        upstream = list(hot)
        upstream[dim] = (upstream[dim] - 1) % net.k
        best = util[self.routes.channel_id(net.rank(tuple(upstream)), dim)]
        if net.bidirectional:
            downstream = list(hot)
            downstream[dim] = (downstream[dim] + 1) % net.k
            ch = self.routes.channel_id(net.rank(tuple(downstream)), dim, -1)
            best = max(best, util[ch])
        return float(best)
