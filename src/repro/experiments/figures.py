"""Panel definitions for the paper's Figures 1 and 2.

Paper §4: "network size N = 256 nodes; message lengths Lm = 32 and 100
flits; fraction of hot-spot traffic h = 20%, 40% and 70%".  The paper
does not print its load grids; the grids below span zero load to just
past the model's saturation point with the same densities the plotted
axes suggest (e.g. the h = 20%, Lm = 32 panel's axis runs 0 → 0.0006
messages/cycle).

Each :class:`PanelSpec` also carries the *paper-shape expectations* the
benchmarks assert: the approximate saturation rate read off the paper's
axis (who saturates first, by what factor) used as a coarse band rather
than an exact number — our simulator is not the authors'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "PanelSpec",
    "FIGURE1",
    "FIGURE2",
    "FIGURES",
    "ALL_PANELS",
    "get_panel",
    "panels_of_figure",
]


@dataclass(frozen=True)
class PanelSpec:
    """One latency-vs-load panel of the paper's validation figures.

    Attributes
    ----------
    figure, name:
        Paper figure number and panel label (e.g. ``"fig1_h20"``).
    k, message_length, hotspot_fraction, num_vcs:
        Network and workload parameters (16×16 torus throughout).
    rates:
        Offered-load grid (messages/cycle/node).
    paper_axis_max_rate:
        Right edge of the paper's x-axis — the paper drew each panel up
        to (roughly) the saturation region, so this doubles as the
        paper's implied saturation locus.
    paper_axis_max_latency:
        Top of the paper's y-axis (cycles).
    """

    figure: int
    name: str
    k: int
    message_length: int
    hotspot_fraction: float
    rates: Tuple[float, ...]
    paper_axis_max_rate: float
    paper_axis_max_latency: float
    num_vcs: int = 2

    @property
    def description(self) -> str:
        return (
            f"Figure {self.figure}, h={self.hotspot_fraction:.0%}, "
            f"Lm={self.message_length} flits, {self.k}x{self.k} torus"
        )


def _grid(max_rate: float, points: int = 8) -> Tuple[float, ...]:
    """Load grid from 10% to ~105% of the panel's axis maximum.

    The paper samples each curve at roughly this density; the final
    point deliberately lands past the model's saturation knee so the
    regenerated series exhibits the hockey-stick the figures show.
    """
    return tuple(np.round(np.linspace(0.1, 1.05, points) * max_rate, 10))


FIGURE1: Dict[str, PanelSpec] = {
    "fig1_h20": PanelSpec(
        figure=1,
        name="fig1_h20",
        k=16,
        message_length=32,
        hotspot_fraction=0.20,
        rates=_grid(0.0006),
        paper_axis_max_rate=0.0006,
        paper_axis_max_latency=2000.0,
    ),
    "fig1_h40": PanelSpec(
        figure=1,
        name="fig1_h40",
        k=16,
        message_length=32,
        hotspot_fraction=0.40,
        rates=_grid(0.0004),
        paper_axis_max_rate=0.0004,
        paper_axis_max_latency=2000.0,
    ),
    "fig1_h70": PanelSpec(
        figure=1,
        name="fig1_h70",
        k=16,
        message_length=32,
        hotspot_fraction=0.70,
        rates=_grid(0.0002),
        paper_axis_max_rate=0.0002,
        paper_axis_max_latency=1600.0,
    ),
}

FIGURE2: Dict[str, PanelSpec] = {
    "fig2_h20": PanelSpec(
        figure=2,
        name="fig2_h20",
        k=16,
        message_length=100,
        hotspot_fraction=0.20,
        rates=_grid(0.0002),
        paper_axis_max_rate=0.0002,
        paper_axis_max_latency=2000.0,
    ),
    "fig2_h40": PanelSpec(
        figure=2,
        name="fig2_h40",
        k=16,
        message_length=100,
        hotspot_fraction=0.40,
        rates=_grid(0.00012),
        paper_axis_max_rate=0.00012,
        paper_axis_max_latency=4000.0,
    ),
    "fig2_h70": PanelSpec(
        figure=2,
        name="fig2_h70",
        k=16,
        message_length=100,
        hotspot_fraction=0.70,
        rates=_grid(0.00007),
        paper_axis_max_rate=0.00007,
        paper_axis_max_latency=8000.0,
    ),
}

ALL_PANELS: Dict[str, PanelSpec] = {**FIGURE1, **FIGURE2}

FIGURES: Dict[int, Dict[str, PanelSpec]] = {1: FIGURE1, 2: FIGURE2}


def panels_of_figure(figure: int) -> List[PanelSpec]:
    """All panels of one paper figure, in h order (for whole-figure runs)."""
    try:
        return list(FIGURES[figure].values())
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; available: {sorted(FIGURES)}"
        ) from None


def get_panel(name: str) -> PanelSpec:
    """Look up a panel by name, with a helpful error."""
    try:
        return ALL_PANELS[name]
    except KeyError:
        raise KeyError(
            f"unknown panel {name!r}; available: {sorted(ALL_PANELS)}"
        ) from None
