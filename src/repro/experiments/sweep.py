"""Parallel, cached, warm-started sweep engine for figure regeneration.

Every figure of the paper is a *load sweep*: the analytical model and
the flit-level simulator evaluated over a grid of injection rates.  The
:class:`SweepEngine` is the one place that work is orchestrated:

Parallel simulation
    Simulation points — of one panel, or of every panel of a figure at
    once — run concurrently on a
    :class:`concurrent.futures.ProcessPoolExecutor` with ``jobs``
    workers.  Each grid point gets a *deterministic per-point seed*
    derived from ``(base seed, panel name, point index)`` via SHA-256
    (:func:`point_seed`), so results are bit-identical for any ``jobs``
    value: ``jobs=1`` runs the exact same configurations sequentially
    and merely stops early at the first saturated point, while
    ``jobs>1`` evaluates the grid concurrently and truncates the series
    at the first saturated point afterwards — the returned
    :class:`~repro.core.results.SweepResult` is identical either way.

Batched, warm-started model sweeps
    Successive grid points differ only in the injection rate, so the
    fixed point at one rate is an excellent initial state for the next.
    With the default vector model kernel a panel's whole rate grid is
    *one* batched fixed-point solve
    (:meth:`~repro.core.model.HotSpotLatencyModel.evaluate_batch` over
    a ``points x variables`` state with per-point convergence masking)
    and the warm-start chaining happens inside the batch along the rate
    axis; under ``REPRO_MODEL_KERNEL=scalar`` the points chain
    sequentially via the ``initial`` pass-through on
    :meth:`~repro.core.model.HotSpotLatencyModel.evaluate`.  Both paths
    converge (to solver tolerance) on the same fixed points.

On-disk result cache
    Each simulated point is persisted as a small JSON file keyed by the
    SHA-256 hash of its full :class:`~repro.simulator.config
    .SimulationConfig` (plus a cache-format version), so re-running a
    figure is near-free.  The cache lives in ``$REPRO_CACHE_DIR`` when
    set, else ``~/.cache/repro/sweeps``.  Invalidation is automatic:
    any change to a configuration field (including seed, warmup or
    measurement window) changes the key, and bumping
    ``_CACHE_VERSION`` orphans every older entry.  Deleting the
    directory is always safe; ``use_cache=False`` (CLI ``--no-cache``)
    bypasses it entirely.

The legacy entry points :func:`repro.experiments.runner.run_panel` and
``run_panel_model_only`` delegate here with ``jobs=1`` — the sequential
path is the degenerate case, not a separate implementation.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.model import HotSpotLatencyModel
from repro.core.results import SweepPoint, SweepResult
from repro.experiments.figures import PanelSpec
from repro.simulator.config import SimulationConfig
from repro.simulator.sim import Simulation

__all__ = [
    "PanelResult",
    "SweepEngine",
    "default_cache_dir",
    "point_seed",
    "sim_jobs",
    "sim_measure_cycles",
]

#: Bump to orphan every existing cache entry (format or semantics change).
_CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweeps"


def sim_measure_cycles(default: int = 120_000) -> int:
    """Measurement cycles per simulation point (env-overridable).

    Reads ``REPRO_SIM_CYCLES``; raises a :class:`ValueError` naming the
    variable when it is set to a non-integer or unusably small value.
    """
    raw = os.environ.get("REPRO_SIM_CYCLES", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SIM_CYCLES must be an integer number of cycles, "
            f"got {raw!r}"
        ) from None
    if value < 1_000:
        raise ValueError(
            f"REPRO_SIM_CYCLES={value} too small; need >= 1000 for meaningful stats"
        )
    return value


def sim_jobs(default: int = 1) -> int:
    """Simulation worker processes (``REPRO_JOBS``, env-overridable).

    The one validated parse shared by the examples and benchmarks;
    raises a :class:`ValueError` naming the variable on bad input.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer number of workers, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {value}")
    return value


def point_seed(base_seed: int, panel: str, index: int) -> int:
    """Deterministic RNG seed for grid point ``index`` of ``panel``.

    Derived by hashing ``(base_seed, panel, index)`` with SHA-256 — not
    Python's randomised ``hash()`` — so the same sweep produces the
    same seeds in every process and on every run.  Distinct points get
    decorrelated Poisson streams instead of replaying one seed per rate.
    """
    digest = hashlib.sha256(f"{base_seed}:{panel}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class PanelResult:
    """Paired model/simulation curves for one panel."""

    spec: PanelSpec
    model: SweepResult
    simulation: Optional[SweepResult]

    def paired_points(self) -> List[tuple]:
        """(rate, model latency, sim latency) rows, sim ``nan`` if absent."""
        sim_by_rate = {}
        if self.simulation is not None:
            sim_by_rate = {p.rate: p for p in self.simulation.points}
        rows = []
        for p in self.model.points:
            s = sim_by_rate.get(p.rate)
            rows.append(
                (p.rate, p.latency, s.latency if s is not None else math.nan)
            )
        return rows


def _simulate_point(cfg: SimulationConfig) -> SweepPoint:
    """Process-pool worker: one simulation run -> one sweep point."""
    res = Simulation(cfg).run()
    latency = math.inf if res.saturated else res.mean_latency
    return SweepPoint(rate=cfg.rate, latency=latency, saturated=res.saturated)


class _SweepCache:
    """One JSON file per simulated point, keyed by the config hash."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def _path(self, cfg: SimulationConfig) -> Path:
        payload = {"version": _CACHE_VERSION, "config": asdict(cfg)}
        blob = json.dumps(payload, sort_keys=True, default=str)
        key = hashlib.sha256(blob.encode()).hexdigest()
        return self.root / f"{key}.json"

    def get(self, cfg: SimulationConfig) -> Optional[SweepPoint]:
        try:
            data = json.loads(self._path(cfg).read_text())
            return SweepPoint(
                rate=float(data["rate"]),
                latency=float(data["latency"]),
                saturated=bool(data["saturated"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, cfg: SimulationConfig, point: SweepPoint) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(cfg)
        body = json.dumps(
            {
                "rate": point.rate,
                "latency": point.latency,
                "saturated": point.saturated,
            }
        )
        # Unique tmp per writer: concurrent processes computing the same
        # point must not clobber each other's half-written file.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(body)
        tmp.replace(path)


@dataclass
class _PendingPanel:
    """Book-keeping for one panel while its points are in flight."""

    spec: PanelSpec
    cfgs: List[SimulationConfig]
    points: List[Optional[SweepPoint]]
    futures: Dict[int, "object"] = field(default_factory=dict)


class SweepEngine:
    """Runs model/simulation load sweeps: parallel, warm-started, cached.

    Parameters
    ----------
    jobs:
        Simulation worker processes.  ``1`` (default) runs points
        sequentially in-process with early stop at the first saturated
        point; ``>1`` fans points (across all panels of a call) out to a
        process pool and truncates each series at its first saturated
        point, yielding bit-identical results to ``jobs=1``.
    use_cache:
        Consult/populate the on-disk point cache (see module docstring).
    cache_dir:
        Cache root; defaults to :func:`default_cache_dir`.
    warm_start:
        Chain each model point's converged fixed-point state into the
        next rate's solve (identical results to solver tolerance, far
        fewer iterations).

    Examples
    --------
    >>> from repro.experiments import SweepEngine, get_panel
    >>> engine = SweepEngine(jobs=4)
    >>> result = engine.run_panel(get_panel("fig1_h20"), simulate=False)
    >>> result.model.saturation_rate() is not None
    True
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        use_cache: bool = True,
        cache_dir: "Path | str | None" = None,
        warm_start: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.warm_start = bool(warm_start)
        self.cache = (
            _SweepCache(Path(cache_dir) if cache_dir is not None else default_cache_dir())
            if use_cache
            else None
        )

    # ------------------------------------------------------------------
    # Model side
    # ------------------------------------------------------------------
    def model_sweep(
        self,
        spec: PanelSpec,
        *,
        trip_averaging: bool = True,
        label: Optional[str] = None,
    ) -> SweepResult:
        """Analytical-model curve for a panel (warm-started by default)."""
        model = HotSpotLatencyModel(
            k=spec.k,
            message_length=spec.message_length,
            hotspot_fraction=spec.hotspot_fraction,
            num_vcs=spec.num_vcs,
            trip_averaging=trip_averaging,
        )
        return model.sweep(
            spec.rates,
            label=label or f"model:{spec.name}",
            warm_start=self.warm_start,
        )

    # ------------------------------------------------------------------
    # Simulation side
    # ------------------------------------------------------------------
    def _panel_configs(
        self,
        spec: PanelSpec,
        seed: int,
        measure_cycles: Optional[int],
        warmup_cycles: Optional[int],
    ) -> List[SimulationConfig]:
        measure = (
            measure_cycles if measure_cycles is not None else sim_measure_cycles()
        )
        warmup = (
            warmup_cycles if warmup_cycles is not None else max(measure // 8, 2_000)
        )
        return [
            SimulationConfig(
                k=spec.k,
                n=2,
                num_vcs=spec.num_vcs,
                message_length=spec.message_length,
                rate=float(rate),
                hotspot_fraction=spec.hotspot_fraction,
                warmup_cycles=warmup,
                measure_cycles=measure,
                seed=point_seed(seed, spec.name, i),
            )
            for i, rate in enumerate(spec.rates)
        ]

    def _run_point(self, cfg: SimulationConfig) -> SweepPoint:
        if self.cache is not None:
            hit = self.cache.get(cfg)
            if hit is not None:
                return hit
        point = _simulate_point(cfg)
        if self.cache is not None:
            self.cache.put(cfg, point)
        return point

    def _sequential_sweep(self, spec: PanelSpec, cfgs: List[SimulationConfig]) -> SweepResult:
        """The ``jobs=1`` degenerate case: in order, stop at saturation."""
        sweep = SweepResult(label=f"sim:{spec.name}")
        for cfg in cfgs:
            point = self._run_point(cfg)
            sweep.points.append(point)
            if point.saturated:
                break
        return sweep

    def _submit_panel(
        self, spec: PanelSpec, cfgs: List[SimulationConfig], executor: ProcessPoolExecutor
    ) -> _PendingPanel:
        pending = _PendingPanel(spec=spec, cfgs=cfgs, points=[None] * len(cfgs))
        for i, cfg in enumerate(cfgs):
            hit = self.cache.get(cfg) if self.cache is not None else None
            if hit is not None:
                pending.points[i] = hit
            else:
                pending.futures[i] = executor.submit(_simulate_point, cfg)
        return pending

    def _collect_panel(self, pending: _PendingPanel) -> SweepResult:
        """Gather points in grid order, truncating at first saturation.

        Points past the first saturated one are discarded either way, so
        their still-queued futures are cancelled (best-effort — workers
        already running them finish; their results are simply not read)
        to stop burning simulation time the series will never use.
        """
        sweep = SweepResult(label=f"sim:{pending.spec.name}")
        truncated = False
        for i in range(len(pending.cfgs)):
            future = pending.futures.get(i)
            if truncated:
                if future is not None:
                    future.cancel()
                continue
            point = pending.points[i]
            if point is None:
                point = future.result()
                if self.cache is not None:
                    self.cache.put(pending.cfgs[i], point)
            sweep.points.append(point)
            truncated = point.saturated
        return sweep

    def simulation_sweep(
        self,
        spec: PanelSpec,
        *,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
    ) -> SweepResult:
        """Simulator curve for one panel, truncated at first saturation."""
        cfgs = self._panel_configs(spec, seed, measure_cycles, warmup_cycles)
        if self.jobs == 1:
            return self._sequential_sweep(spec, cfgs)
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            pending = self._submit_panel(spec, cfgs, executor)
            return self._collect_panel(pending)

    # ------------------------------------------------------------------
    # Panels and figures
    # ------------------------------------------------------------------
    def run_panel(
        self,
        spec: PanelSpec,
        *,
        simulate: bool = True,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
        trip_averaging: bool = True,
    ) -> PanelResult:
        """Model (and optionally simulator) curves for one panel."""
        result = PanelResult(
            spec=spec,
            model=self.model_sweep(spec, trip_averaging=trip_averaging),
            simulation=None,
        )
        if simulate:
            result.simulation = self.simulation_sweep(
                spec,
                seed=seed,
                measure_cycles=measure_cycles,
                warmup_cycles=warmup_cycles,
            )
        return result

    def run_panels(
        self,
        specs: Sequence[PanelSpec],
        *,
        simulate: bool = True,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
        trip_averaging: bool = True,
    ) -> Dict[str, PanelResult]:
        """Run several panels (e.g. a whole figure) in one shared pool.

        With ``jobs>1`` every uncached simulation point of every panel
        is in flight on the same executor, so a six-panel figure keeps
        all workers busy instead of draining panel by panel.  Results
        are keyed by panel name and identical to per-panel runs.
        """
        results: Dict[str, PanelResult] = {}
        if not simulate or self.jobs == 1:
            for spec in specs:
                results[spec.name] = self.run_panel(
                    spec,
                    simulate=simulate,
                    seed=seed,
                    measure_cycles=measure_cycles,
                    warmup_cycles=warmup_cycles,
                    trip_averaging=trip_averaging,
                )
            return results

        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            pendings = [
                self._submit_panel(
                    spec,
                    self._panel_configs(spec, seed, measure_cycles, warmup_cycles),
                    executor,
                )
                for spec in specs
            ]
            for pending in pendings:
                results[pending.spec.name] = PanelResult(
                    spec=pending.spec,
                    model=self.model_sweep(
                        pending.spec, trip_averaging=trip_averaging
                    ),
                    simulation=self._collect_panel(pending),
                )
        return results
