"""Parallel, cached, warm-started, fault-tolerant sweep engine.

Every figure of the paper is a *load sweep*: the analytical model and
the flit-level simulator evaluated over a grid of injection rates.  The
:class:`SweepEngine` is the one place that work is orchestrated:

Parallel simulation
    Simulation points — of one panel, or of every panel of a figure at
    once — run concurrently on a
    :class:`concurrent.futures.ProcessPoolExecutor` with ``jobs``
    workers.  Each grid point gets a *deterministic per-point seed*
    derived from ``(base seed, panel name, point index)`` via SHA-256
    (:func:`point_seed`), so results are bit-identical for any ``jobs``
    value: ``jobs=1`` runs the exact same configurations sequentially
    and merely stops early at the first saturated point, while
    ``jobs>1`` evaluates the grid concurrently and truncates the series
    at the first saturated point afterwards — the returned
    :class:`~repro.core.results.SweepResult` is identical either way.

Pluggable execution backends
    Parallel campaigns run on a :class:`~repro.backends.SweepBackend`:
    the default :class:`~repro.backends.LocalPoolBackend` is the
    resilient in-process pool below, byte-for-byte the pre-backend
    engine; ``backend="file:<campaign-dir>"`` (or
    ``REPRO_BACKEND=file:<dir>``) coordinates any number of ``repro
    worker`` processes across hosts sharing a filesystem
    (:class:`~repro.backends.FileQueueBackend`) with lease-based
    claiming, heartbeat health monitoring and crash-consistent requeue
    — results stay bit-identical on every backend.

Fault tolerance
    Points run under a :class:`~repro.resilience.ResilientExecutor`:
    every attempt gets a wall-clock timeout (``point_timeout``), failed
    attempts are retried with capped exponential backoff
    (``max_retries``), a crashed worker rebuilds the pool and resubmits
    only the unfinished points, and each completed point is cached and
    journaled the moment its future resolves — one worker death no
    longer discards a panel's finished points.  Retries are
    deterministic: a retried point re-runs the same per-point seed, so
    a faulty campaign produces bit-identical points to a fault-free
    one.  Terminal failures become structured
    :class:`~repro.resilience.PointFailure` records on
    ``SweepResult.failures`` instead of a lost panel.  The
    fault-injection harness (:mod:`repro.faults`, ``REPRO_FAULTS``)
    chaos-tests exactly these paths.

Resumable campaigns
    :meth:`SweepEngine.run_panels` (and :meth:`run_panel`) append every
    point's status to a JSONL checkpoint journal
    (:class:`~repro.resilience.CheckpointJournal`) under
    ``<cache dir>/journal/<campaign-hash>.jsonl``.  An interrupted
    campaign re-run with ``resume=True`` (CLI ``--resume``) restores
    every checkpointed point from the journal — even with the result
    cache disabled — and computes only the remainder.

Batched, warm-started model sweeps
    Successive grid points differ only in the injection rate, so the
    fixed point at one rate is an excellent initial state for the next.
    With the default vector model kernel a panel's whole rate grid is
    *one* batched fixed-point solve with per-point convergence masking;
    under ``REPRO_MODEL_KERNEL=scalar`` the points chain sequentially
    via the ``initial`` pass-through.  Both paths converge (to solver
    tolerance) on the same fixed points.

On-disk result cache
    Each simulated point is persisted as a small JSON file keyed by the
    SHA-256 hash of its full :class:`~repro.simulator.config
    .SimulationConfig` (plus a cache-format version).  Entries carry a
    schema version and a payload checksum *in the body*: corrupt,
    truncated or stale-schema files are quarantined to a ``corrupt/``
    subdirectory (and the point recomputed) rather than silently
    ignored, and stale ``*.tmp`` files left by interrupted writers are
    swept on engine startup.  The cache lives in ``$REPRO_CACHE_DIR``
    when set, else ``~/.cache/repro/sweeps``; ``use_cache=False`` (CLI
    ``--no-cache``) bypasses it entirely.  The implementation is the
    shared :class:`repro.store.ResultStore` — concurrent-writer safe
    (unique-tmp + atomic rename), so distributed file-queue workers on
    other hosts populate the same store the local engine reads.

The legacy entry points :func:`repro.experiments.runner.run_panel` and
``run_panel_model_only`` delegate here with ``jobs=1`` — the sequential
path is the degenerate case, not a separate implementation.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.backends import SweepBackend, resolve_backend
from repro.core.model import HotSpotLatencyModel
from repro.core.results import SweepPoint, SweepResult
from repro.experiments.figures import PanelSpec
from repro.resilience import (
    CheckpointJournal,
    ExecutorStats,
    PointFailure,
    RetryPolicy,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.sim import Simulation, run_batch
from repro.store import (
    CACHE_VERSION as _CACHE_VERSION,
    TMP_MAX_AGE_SECONDS as _TMP_MAX_AGE_SECONDS,
    ResultStore,
    config_key,
    default_store_dir,
    payload_checksum as _payload_checksum,
)

__all__ = [
    "PanelResult",
    "SweepEngine",
    "config_key",
    "default_cache_dir",
    "point_seed",
    "sim_batch_size",
    "sim_jobs",
    "sim_measure_cycles",
]

#: Bump when the checkpoint-journal campaign format changes.
_JOURNAL_VERSION = 1

#: Back-compat alias: the on-disk point cache grew into the shared
#: content-addressed :class:`repro.store.ResultStore` (concurrent-writer
#: safe so distributed file-queue workers can populate it too).
_SweepCache = ResultStore


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    return default_store_dir()


def sim_measure_cycles(default: int = 120_000) -> int:
    """Measurement cycles per simulation point (env-overridable).

    Reads ``REPRO_SIM_CYCLES``; raises a :class:`ValueError` naming the
    variable when it is set to a non-integer or unusably small value.
    """
    raw = os.environ.get("REPRO_SIM_CYCLES", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SIM_CYCLES must be an integer number of cycles, "
            f"got {raw!r}"
        ) from None
    if value < 1_000:
        raise ValueError(
            f"REPRO_SIM_CYCLES={value} too small; need >= 1000 for meaningful stats"
        )
    return value


def sim_jobs(default: int = 1) -> int:
    """Simulation worker processes (``REPRO_JOBS``, env-overridable).

    The one validated parse shared by the examples and benchmarks;
    raises a :class:`ValueError` naming the variable on bad input.
    """
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer number of workers, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {value}")
    return value


def sim_batch_size(default: int = 1) -> int:
    """Simulation points batched per job (``REPRO_SIM_BATCH``).

    A batch of B same-shape grid points is advanced by one
    :class:`~repro.simulator.batch.BatchedSoAEngine` instead of B
    sequential runs — bit-identical results, one kernel call per tick.
    ``1`` (the default) keeps plain per-point execution.  Raises a
    :class:`ValueError` naming the variable on bad input.
    """
    raw = os.environ.get("REPRO_SIM_BATCH", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SIM_BATCH must be an integer batch size, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_SIM_BATCH must be >= 1, got {value}")
    return value


def point_seed(base_seed: int, panel: str, index: int) -> int:
    """Deterministic RNG seed for grid point ``index`` of ``panel``.

    Derived by hashing ``(base_seed, panel, index)`` with SHA-256 — not
    Python's randomised ``hash()`` — so the same sweep produces the
    same seeds in every process and on every run.  Distinct points get
    decorrelated Poisson streams instead of replaying one seed per rate.
    """
    digest = hashlib.sha256(f"{base_seed}:{panel}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class PanelResult:
    """Paired model/simulation curves for one panel."""

    spec: PanelSpec
    model: SweepResult
    simulation: Optional[SweepResult]

    def paired_points(self) -> List[tuple]:
        """(rate, model latency, sim latency) rows, sim ``nan`` if absent."""
        sim_by_rate = {}
        if self.simulation is not None:
            sim_by_rate = {p.rate: p for p in self.simulation.points}
        rows = []
        for p in self.model.points:
            s = sim_by_rate.get(p.rate)
            rows.append(
                (p.rate, p.latency, s.latency if s is not None else math.nan)
            )
        return rows


def _simulate_point(cfg: SimulationConfig, attempt: int = 0) -> SweepPoint:
    """Process-pool worker: one simulation run -> one sweep point.

    ``attempt`` feeds the deterministic fault-injection harness only
    (crash/hang draws are keyed on the point seed *and* the attempt, so
    a retried point draws afresh); the simulation itself depends solely
    on ``cfg``, which is what keeps retried results bit-identical.
    """
    faults.on_point_attempt(cfg.seed, attempt)
    res = Simulation(cfg).run()
    latency = math.inf if res.saturated else res.mean_latency
    return SweepPoint(rate=cfg.rate, latency=latency, saturated=res.saturated)


def _simulate_chunk(
    cfgs: Sequence[SimulationConfig], attempt: int = 0
) -> List[SweepPoint]:
    """Process-pool worker: one *batched* job -> several sweep points.

    The chunk's same-shape configurations advance together on one
    :class:`~repro.simulator.batch.BatchedSoAEngine`
    (:func:`repro.simulator.sim.run_batch`); every point is
    bit-identical to :func:`_simulate_point` on the same config, so
    batched and per-point campaigns share one cache.  Fault injection
    is keyed on the first config's seed — a chunk retries as a unit.
    """
    faults.on_point_attempt(cfgs[0].seed, attempt)
    points = []
    for res in run_batch(cfgs):
        latency = math.inf if res.saturated else res.mean_latency
        points.append(
            SweepPoint(
                rate=res.rate, latency=latency, saturated=res.saturated
            )
        )
    return points


#: Campaign-internal point key: ``(panel name, grid index)``.
_PointKey = Tuple[str, int]


class SweepEngine:
    """Runs model/simulation load sweeps: parallel, resilient, cached.

    Parameters
    ----------
    jobs:
        Simulation worker processes.  ``1`` (default) runs points
        sequentially in-process with early stop at the first saturated
        point; ``>1`` fans points (across all panels of a call) out to a
        process pool and truncates each series at its first saturated
        point, yielding bit-identical results to ``jobs=1``.
    batch:
        Simulation points per job (default: ``$REPRO_SIM_BATCH``, else
        1).  With ``batch > 1`` each job advances a chunk of same-shape
        grid points on one
        :class:`~repro.simulator.batch.BatchedSoAEngine` — bit-identical
        results at a fraction of the per-cycle Python overhead; chunks
        retry (and fail) as a unit.
    use_cache:
        Consult/populate the on-disk point cache (see module docstring).
    cache_dir:
        Cache root; defaults to :func:`default_cache_dir`.  Also hosts
        the campaign checkpoint journals (``journal/`` subdirectory).
    warm_start:
        Chain each model point's converged fixed-point state into the
        next rate's solve (identical results to solver tolerance, far
        fewer iterations).
    max_retries:
        Extra attempts per simulation point after the first (default 2).
        Retried points re-run the same per-point seed, so results stay
        bit-identical to a fault-free run; a point that exhausts its
        budget becomes a :class:`~repro.resilience.PointFailure` record
        on ``SweepResult.failures``.
    point_timeout:
        Wall-clock seconds per point attempt (``jobs > 1`` only; the
        sequential path cannot interrupt itself).  A timed-out worker is
        presumed hung, terminated, and its point retried on a rebuilt
        pool.  ``None`` (default) disables the deadline.
    backoff_base:
        Base of the capped exponential retry backoff (seconds).
    jitter:
        Decorrelate retry backoff delays (see
        :class:`~repro.resilience.RetryPolicy`).  Off by default so
        chaos replay stays deterministic.
    resume:
        Default for :meth:`run_panels`'s ``resume``: restore
        checkpointed points from the campaign journal instead of
        recomputing them.
    backend:
        Execution substrate for parallel campaigns: ``None`` (consult
        ``$REPRO_BACKEND``, default local), a selector string
        (``"local"``, ``"file:<campaign-dir>"``) or a
        :class:`~repro.backends.SweepBackend` instance.  The default
        local backend is byte-for-byte the pre-backend engine; a
        distributed backend always takes the campaign path (its
        parallelism is however many workers join), and the shared
        result store is advertised to its workers.

    ``stats`` accumulates :class:`~repro.resilience.ExecutorStats`
    (retries, timeouts, pool rebuilds, terminal failures) across this
    engine's campaigns.

    Examples
    --------
    >>> from repro.experiments import SweepEngine, get_panel
    >>> engine = SweepEngine(jobs=4)
    >>> result = engine.run_panel(get_panel("fig1_h20"), simulate=False)
    >>> result.model.saturation_rate() is not None
    True
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        batch: Optional[int] = None,
        use_cache: bool = True,
        cache_dir: "Path | str | None" = None,
        warm_start: bool = True,
        max_retries: int = 2,
        point_timeout: Optional[float] = None,
        backoff_base: float = 0.05,
        jitter: bool = False,
        resume: bool = False,
        backend: "str | SweepBackend | None" = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.batch = sim_batch_size() if batch is None else int(batch)
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.warm_start = bool(warm_start)
        self.policy = RetryPolicy(
            max_retries=max_retries,
            point_timeout=point_timeout,
            backoff_base=backoff_base,
            jitter=jitter,
        )
        self.resume = bool(resume)
        self.stats = ExecutorStats()
        self.backend = resolve_backend(backend, jobs=self.jobs)
        self.cache_root = (
            Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self.cache = _SweepCache(self.cache_root) if use_cache else None
        if self.cache is not None:
            self.cache.clean_stale_tmp()

    # ------------------------------------------------------------------
    # Model side
    # ------------------------------------------------------------------
    def model_sweep(
        self,
        spec: PanelSpec,
        *,
        trip_averaging: bool = True,
        label: Optional[str] = None,
    ) -> SweepResult:
        """Analytical-model curve for a panel (warm-started by default)."""
        model = HotSpotLatencyModel(
            k=spec.k,
            message_length=spec.message_length,
            hotspot_fraction=spec.hotspot_fraction,
            num_vcs=spec.num_vcs,
            trip_averaging=trip_averaging,
        )
        return model.sweep(
            spec.rates,
            label=label or f"model:{spec.name}",
            warm_start=self.warm_start,
        )

    # ------------------------------------------------------------------
    # Simulation side
    # ------------------------------------------------------------------
    def _panel_configs(
        self,
        spec: PanelSpec,
        seed: int,
        measure_cycles: Optional[int],
        warmup_cycles: Optional[int],
    ) -> List[SimulationConfig]:
        measure = (
            measure_cycles if measure_cycles is not None else sim_measure_cycles()
        )
        warmup = (
            warmup_cycles if warmup_cycles is not None else max(measure // 8, 2_000)
        )
        return [
            SimulationConfig(
                k=spec.k,
                n=2,
                num_vcs=spec.num_vcs,
                message_length=spec.message_length,
                rate=float(rate),
                hotspot_fraction=spec.hotspot_fraction,
                warmup_cycles=warmup,
                measure_cycles=measure,
                seed=point_seed(seed, spec.name, i),
            )
            for i, rate in enumerate(spec.rates)
        ]

    # -- checkpoint journal --------------------------------------------
    def journal_dir(self) -> Path:
        """Where campaign checkpoint journals live (next to the cache)."""
        return self.cache_root / "journal"

    def _campaign_id(
        self,
        specs: Sequence[PanelSpec],
        cfgs_by: Dict[str, List[SimulationConfig]],
        seed: int,
    ) -> str:
        blob = json.dumps(
            {
                "journal_version": _JOURNAL_VERSION,
                "seed": seed,
                "panels": {
                    spec.name: [config_key(c) for c in cfgs_by[spec.name]]
                    for spec in specs
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @staticmethod
    def _journal_record(journal: Optional[CheckpointJournal], entry: dict) -> None:
        if journal is not None:
            journal.record(entry)

    def _journal_done(
        self,
        journal: Optional[CheckpointJournal],
        panel: str,
        index: int,
        cfg: SimulationConfig,
        point: SweepPoint,
        attempts: int,
        source: str = "simulated",
    ) -> None:
        self._journal_record(
            journal,
            {
                "event": "point",
                "status": "done",
                "panel": panel,
                "index": index,
                "config": config_key(cfg)[:16],
                "rate": point.rate,
                "latency": point.latency,
                "saturated": point.saturated,
                "attempts": attempts,
                "source": source,
            },
        )

    def _journal_failed(
        self,
        journal: Optional[CheckpointJournal],
        failure: PointFailure,
        cfg: SimulationConfig,
    ) -> None:
        self._journal_record(
            journal,
            {
                "event": "point",
                "status": "failed",
                "panel": failure.panel,
                "index": failure.index,
                "config": config_key(cfg)[:16],
                "kind": failure.kind,
                "attempts": failure.attempts,
                "message": failure.message,
            },
        )

    def _journal_retry(
        self,
        journal: Optional[CheckpointJournal],
        panel: str,
        index: int,
        kind: str,
        attempt: int,
    ) -> None:
        self._journal_record(
            journal,
            {
                "event": "retry",
                "panel": panel,
                "index": index,
                "kind": kind,
                "attempt": attempt,
            },
        )

    def _open_journal(
        self,
        specs: Sequence[PanelSpec],
        cfgs_by: Dict[str, List[SimulationConfig]],
        seed: int,
        resume: bool,
    ) -> Tuple[Optional[CheckpointJournal], Dict[_PointKey, SweepPoint]]:
        """Open (and maybe replay) the campaign's checkpoint journal.

        Journaling is active whenever the cache is enabled (the journal
        lives beside it) or a resume was requested; ``use_cache=False``
        without ``resume`` stays fully side-effect free.  Returns the
        open journal (or ``None``) plus the points restored from a
        resumed journal.
        """
        if self.cache is None and not resume:
            return None, {}
        cid = self._campaign_id(specs, cfgs_by, seed)
        path = self.journal_dir() / f"{cid}.jsonl"
        journal = CheckpointJournal(path)
        done: Dict[_PointKey, SweepPoint] = {}
        fresh = True
        if resume and path.exists():
            header, entries = CheckpointJournal.load(path)
            if header is not None:
                recorded = header.get("campaign")
                if recorded not in (None, cid):
                    raise ValueError(
                        f"checkpoint journal {path} belongs to campaign "
                        f"{recorded}, not {cid} — the panel set or its "
                        "parameters changed; rerun without resume"
                    )
                fresh = False
                for entry in entries:
                    if (
                        entry.get("event") != "point"
                        or entry.get("status") != "done"
                    ):
                        continue
                    try:
                        key = (str(entry["panel"]), int(entry["index"]))
                        done[key] = SweepPoint(
                            rate=float(entry["rate"]),
                            latency=float(entry["latency"]),
                            saturated=bool(entry["saturated"]),
                        )
                    except (KeyError, TypeError, ValueError):
                        continue
        journal.start(
            {
                "event": "campaign",
                "campaign": cid,
                "version": _JOURNAL_VERSION,
                "seed": seed,
                "panels": {s.name: len(cfgs_by[s.name]) for s in specs},
            },
            fresh=fresh,
        )
        return journal, done

    # -- point execution -----------------------------------------------
    def _attempt_point_sequential(
        self,
        panel: str,
        index: int,
        cfg: SimulationConfig,
        journal: Optional[CheckpointJournal],
    ) -> Tuple[Optional[SweepPoint], Optional[PointFailure]]:
        """One point, in-process, with cache, retries and journaling."""
        if self.cache is not None:
            hit = self.cache.get(cfg)
            if hit is not None:
                self._journal_done(
                    journal, panel, index, cfg, hit, attempts=0, source="cache"
                )
                return hit, None
        for attempt in range(self.policy.max_retries + 1):
            try:
                point = _simulate_point(cfg, attempt)
            except Exception as exc:
                if attempt < self.policy.max_retries:
                    self.stats.retries += 1
                    self._journal_retry(journal, panel, index, "exception", attempt)
                    time.sleep(self.policy.backoff(attempt))
                    continue
                failure = PointFailure(
                    panel=panel,
                    index=index,
                    rate=cfg.rate,
                    kind="exception",
                    attempts=attempt + 1,
                    message=f"{type(exc).__name__}: {exc}",
                )
                self.stats.failures += 1
                self._journal_failed(journal, failure, cfg)
                return None, failure
            if self.cache is not None:
                self.cache.put(cfg, point)
            self._journal_done(
                journal, panel, index, cfg, point, attempts=attempt + 1
            )
            return point, None
        raise AssertionError("unreachable")

    def _attempt_chunk_sequential(
        self,
        panel: str,
        chunk: List[Tuple[int, SimulationConfig]],
        journal: Optional[CheckpointJournal],
    ) -> Tuple[
        Optional[List[SweepPoint]], Optional[Dict[int, PointFailure]]
    ]:
        """One batched job, in-process, with retries and journaling.

        The chunk succeeds or fails as a unit: on terminal failure every
        member point gets its own :class:`PointFailure` record.
        """
        cfgs = [cfg for _, cfg in chunk]
        for attempt in range(self.policy.max_retries + 1):
            try:
                pts = _simulate_chunk(cfgs, attempt)
            except Exception as exc:
                if attempt < self.policy.max_retries:
                    self.stats.retries += 1
                    self._journal_retry(
                        journal, panel, chunk[0][0], "exception", attempt
                    )
                    time.sleep(self.policy.backoff(attempt))
                    continue
                failures: Dict[int, PointFailure] = {}
                for i, cfg in chunk:
                    failure = PointFailure(
                        panel=panel,
                        index=i,
                        rate=cfg.rate,
                        kind="exception",
                        attempts=attempt + 1,
                        message=f"{type(exc).__name__}: {exc}",
                    )
                    self.stats.failures += 1
                    self._journal_failed(journal, failure, cfg)
                    failures[i] = failure
                return None, failures
            for (i, cfg), point in zip(chunk, pts):
                if self.cache is not None:
                    self.cache.put(cfg, point)
                self._journal_done(
                    journal, panel, i, cfg, point, attempts=attempt + 1
                )
            return pts, None
        raise AssertionError("unreachable")

    def _campaign_sequential(
        self,
        specs: Sequence[PanelSpec],
        cfgs_by: Dict[str, List[SimulationConfig]],
        done: Dict[_PointKey, SweepPoint],
        journal: Optional[CheckpointJournal],
    ) -> Tuple[Dict[_PointKey, SweepPoint], Dict[_PointKey, PointFailure]]:
        """The ``jobs=1`` degenerate case: in order, stop at saturation."""
        if self.batch > 1:
            return self._campaign_sequential_batched(
                specs, cfgs_by, done, journal
            )
        points: Dict[_PointKey, SweepPoint] = {}
        failures: Dict[_PointKey, PointFailure] = {}
        for spec in specs:
            for i, cfg in enumerate(cfgs_by[spec.name]):
                key = (spec.name, i)
                if key in done:
                    points[key] = done[key]
                else:
                    point, failure = self._attempt_point_sequential(
                        spec.name, i, cfg, journal
                    )
                    if failure is not None:
                        failures[key] = failure
                        continue
                    points[key] = point
                if points[key].saturated:
                    break
        return points, failures

    def _campaign_sequential_batched(
        self,
        specs: Sequence[PanelSpec],
        cfgs_by: Dict[str, List[SimulationConfig]],
        done: Dict[_PointKey, SweepPoint],
        journal: Optional[CheckpointJournal],
    ) -> Tuple[Dict[_PointKey, SweepPoint], Dict[_PointKey, PointFailure]]:
        """``jobs=1`` with ``batch>1``: chunks of points per batched job.

        Semantics match the per-point path — each panel still truncates
        at its first saturated point (reassembly drops anything later),
        a chunk may merely compute a few points past it before the next
        saturation check.  Restored/cached points are never re-run.
        """
        points: Dict[_PointKey, SweepPoint] = {}
        failures: Dict[_PointKey, PointFailure] = {}
        for spec in specs:
            cfgs = cfgs_by[spec.name]
            i = 0
            stop = False
            while i < len(cfgs) and not stop:
                chunk: List[Tuple[int, SimulationConfig]] = []
                while i < len(cfgs) and len(chunk) < self.batch:
                    key = (spec.name, i)
                    cfg = cfgs[i]
                    i += 1
                    hit = done.get(key)
                    if hit is None and self.cache is not None:
                        hit = self.cache.get(cfg)
                        if hit is not None:
                            self._journal_done(
                                journal, spec.name, key[1], cfg, hit,
                                attempts=0, source="cache",
                            )
                    if hit is not None:
                        points[key] = hit
                        if hit.saturated:
                            stop = True
                            break
                        continue
                    chunk.append((key[1], cfg))
                if not chunk:
                    continue
                pts, chunk_failures = self._attempt_chunk_sequential(
                    spec.name, chunk, journal
                )
                if chunk_failures is not None:
                    for j, failure in chunk_failures.items():
                        failures[(spec.name, j)] = failure
                    continue
                for (j, _), point in zip(chunk, pts):
                    points[(spec.name, j)] = point
                    if point.saturated:
                        stop = True
        return points, failures

    def _campaign_parallel(
        self,
        specs: Sequence[PanelSpec],
        cfgs_by: Dict[str, List[SimulationConfig]],
        done: Dict[_PointKey, SweepPoint],
        journal: Optional[CheckpointJournal],
    ) -> Tuple[Dict[_PointKey, SweepPoint], Dict[_PointKey, PointFailure]]:
        """Fan every needed point of every panel onto one resilient pool."""
        points: Dict[_PointKey, SweepPoint] = {}
        known_sat: Dict[str, int] = {}

        def note(key: _PointKey, point: SweepPoint) -> None:
            points[key] = point
            if point.saturated:
                panel, i = key
                if panel not in known_sat or i < known_sat[panel]:
                    known_sat[panel] = i

        for spec in specs:
            for i, cfg in enumerate(cfgs_by[spec.name]):
                key = (spec.name, i)
                if key in done:
                    note(key, done[key])
                    continue
                if self.cache is not None:
                    hit = self.cache.get(cfg)
                    if hit is not None:
                        self._journal_done(
                            journal, spec.name, i, cfg, hit,
                            attempts=0, source="cache",
                        )
                        note(key, hit)

        tasks: Dict[_PointKey, tuple] = {}
        for spec in specs:
            for i, cfg in enumerate(cfgs_by[spec.name]):
                key = (spec.name, i)
                if key in points:
                    continue
                sat = known_sat.get(spec.name)
                if sat is not None and i > sat:
                    continue  # beyond a known saturated rate — never needed
                tasks[key] = (cfg,)
        if not tasks:
            return points, {}
        if self.batch > 1:
            return self._run_parallel_batched(
                cfgs_by, tasks, points, known_sat, note, journal
            )

        def on_result(key: _PointKey, point: SweepPoint, attempts: int):
            panel, i = key
            cfg = cfgs_by[panel][i]
            if self.cache is not None:
                self.cache.put(cfg, point)
            self._journal_done(journal, panel, i, cfg, point, attempts=attempts)
            before = known_sat.get(panel)
            note(key, point)
            after = known_sat.get(panel)
            if after is not None and after != before:
                # Saturation found (or moved earlier): drop queued points
                # past it — the series is truncated there anyway.
                return [
                    (panel, j)
                    for j in range(after + 1, len(cfgs_by[panel]))
                    if (panel, j) in tasks
                ]
            return None

        def on_retry(key: _PointKey, kind: str, attempt: int) -> None:
            self._journal_retry(journal, key[0], key[1], kind, attempt)

        _, task_failures = self.backend.run(
            _simulate_point,
            tasks,
            policy=self.policy,
            stats=self.stats,
            on_result=on_result,
            on_retry=on_retry,
            store=self.cache,
        )
        failures: Dict[_PointKey, PointFailure] = {}
        for key, tf in task_failures.items():
            panel, i = key
            cfg = cfgs_by[panel][i]
            failure = PointFailure(
                panel=panel,
                index=i,
                rate=cfg.rate,
                kind=tf.kind,
                attempts=tf.attempts,
                message=tf.message,
            )
            failures[key] = failure
            self._journal_failed(journal, failure, cfg)
        return points, failures

    def _run_parallel_batched(
        self,
        cfgs_by: Dict[str, List[SimulationConfig]],
        tasks: Dict[_PointKey, tuple],
        points: Dict[_PointKey, SweepPoint],
        known_sat: Dict[str, int],
        note,
        journal: Optional[CheckpointJournal],
    ) -> Tuple[Dict[_PointKey, SweepPoint], Dict[_PointKey, PointFailure]]:
        """Fan *chunks* of points onto the pool (``batch > 1``).

        Pending points of each panel are grouped, in grid order, into
        chunks of up to ``self.batch`` same-shape configurations; every
        chunk is one pool task running :func:`_simulate_chunk`, keyed
        (and journaled) by its first member.  A chunk retries or fails
        as a unit, and chunks whose members all lie beyond a panel's
        first saturated point are cancelled like individual points are.
        """
        chunk_members: Dict[_PointKey, List[_PointKey]] = {}
        chunk_tasks: Dict[_PointKey, tuple] = {}
        for panel in cfgs_by:
            pending = [k for k in tasks if k[0] == panel]
            pending.sort(key=lambda k: k[1])
            for j in range(0, len(pending), self.batch):
                members = pending[j : j + self.batch]
                ckey = members[0]
                chunk_members[ckey] = members
                chunk_tasks[ckey] = (
                    [cfgs_by[panel][k[1]] for k in members],
                )
        if not chunk_tasks:
            return points, {}

        def on_result(
            ckey: _PointKey, pts: List[SweepPoint], attempts: int
        ):
            panel = ckey[0]
            before = known_sat.get(panel)
            for key, point in zip(chunk_members[ckey], pts):
                cfg = cfgs_by[panel][key[1]]
                if self.cache is not None:
                    self.cache.put(cfg, point)
                self._journal_done(
                    journal, panel, key[1], cfg, point, attempts=attempts
                )
                note(key, point)
            after = known_sat.get(panel)
            if after is not None and after != before:
                return [
                    other
                    for other, members in chunk_members.items()
                    if other != ckey
                    and other[0] == panel
                    and all(m[1] > after for m in members)
                ]
            return None

        def on_retry(ckey: _PointKey, kind: str, attempt: int) -> None:
            self._journal_retry(journal, ckey[0], ckey[1], kind, attempt)

        _, task_failures = self.backend.run(
            _simulate_chunk,
            chunk_tasks,
            policy=self.policy,
            stats=self.stats,
            on_result=on_result,
            on_retry=on_retry,
            store=self.cache,
        )
        failures: Dict[_PointKey, PointFailure] = {}
        for ckey, tf in task_failures.items():
            panel = ckey[0]
            for key in chunk_members[ckey]:
                cfg = cfgs_by[panel][key[1]]
                failure = PointFailure(
                    panel=panel,
                    index=key[1],
                    rate=cfg.rate,
                    kind=tf.kind,
                    attempts=tf.attempts,
                    message=tf.message,
                )
                failures[key] = failure
                self._journal_failed(journal, failure, cfg)
        return points, failures

    def _simulate_panels(
        self,
        specs: Sequence[PanelSpec],
        seed: int,
        measure_cycles: Optional[int],
        warmup_cycles: Optional[int],
        *,
        use_journal: bool,
        resume: bool,
    ) -> Dict[str, SweepResult]:
        """Simulate every panel's grid; assemble truncated sweep series."""
        cfgs_by = {
            spec.name: self._panel_configs(
                spec, seed, measure_cycles, warmup_cycles
            )
            for spec in specs
        }
        journal: Optional[CheckpointJournal] = None
        done: Dict[_PointKey, SweepPoint] = {}
        if use_journal:
            journal, done = self._open_journal(specs, cfgs_by, seed, resume)
        try:
            # Distributed backends always take the campaign path: their
            # parallelism is however many workers join, not self.jobs.
            if self.jobs == 1 and self.backend.name == "local":
                points, failures = self._campaign_sequential(
                    specs, cfgs_by, done, journal
                )
            else:
                points, failures = self._campaign_parallel(
                    specs, cfgs_by, done, journal
                )
        finally:
            if journal is not None:
                journal.close()

        # Reassemble each panel in grid order with the sequential
        # semantics: failures before the stop are recorded, the series
        # truncates at its first saturated point, anything later is
        # dropped — so jobs=1 and jobs=N agree bit for bit.
        results: Dict[str, SweepResult] = {}
        for spec in specs:
            sweep = SweepResult(label=f"sim:{spec.name}")
            for i in range(len(cfgs_by[spec.name])):
                key = (spec.name, i)
                if key in failures:
                    sweep.failures.append(failures[key])
                    continue
                point = points.get(key)
                if point is None:
                    break  # past the stop (sequential) or cancelled (pool)
                sweep.points.append(point)
                if point.saturated:
                    break
            results[spec.name] = sweep
        return results

    def simulation_sweep(
        self,
        spec: PanelSpec,
        *,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
    ) -> SweepResult:
        """Simulator curve for one panel, truncated at first saturation."""
        return self._simulate_panels(
            [spec],
            seed,
            measure_cycles,
            warmup_cycles,
            use_journal=False,
            resume=False,
        )[spec.name]

    # ------------------------------------------------------------------
    # Panels and figures
    # ------------------------------------------------------------------
    def run_panel(
        self,
        spec: PanelSpec,
        *,
        simulate: bool = True,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
        trip_averaging: bool = True,
        resume: Optional[bool] = None,
    ) -> PanelResult:
        """Model (and optionally simulator) curves for one panel."""
        return self.run_panels(
            [spec],
            simulate=simulate,
            seed=seed,
            measure_cycles=measure_cycles,
            warmup_cycles=warmup_cycles,
            trip_averaging=trip_averaging,
            resume=resume,
        )[spec.name]

    def run_panels(
        self,
        specs: Sequence[PanelSpec],
        *,
        simulate: bool = True,
        seed: int = 42,
        measure_cycles: Optional[int] = None,
        warmup_cycles: Optional[int] = None,
        trip_averaging: bool = True,
        resume: Optional[bool] = None,
    ) -> Dict[str, PanelResult]:
        """Run several panels (e.g. a whole figure) as one campaign.

        With ``jobs>1`` every uncached simulation point of every panel
        is in flight on the same resilient executor, so a six-panel
        figure keeps all workers busy instead of draining panel by
        panel.  Results are keyed by panel name and identical to
        per-panel runs.  Each point's status is checkpointed to the
        campaign's JSONL journal as it completes; ``resume=True``
        (default: the engine's ``resume`` setting) restores
        checkpointed points of an interrupted earlier run instead of
        recomputing them.
        """
        resume = self.resume if resume is None else bool(resume)
        sims: Dict[str, SweepResult] = {}
        if simulate:
            sims = self._simulate_panels(
                specs,
                seed,
                measure_cycles,
                warmup_cycles,
                use_journal=True,
                resume=resume,
            )
        results: Dict[str, PanelResult] = {}
        for spec in specs:
            results[spec.name] = PanelResult(
                spec=spec,
                model=self.model_sweep(spec, trip_averaging=trip_averaging),
                simulation=sims.get(spec.name),
            )
        return results
