"""Reporting: ASCII series tables and paper-shape metrics.

The reproduction cannot (and should not) match the paper's absolute
numbers — the authors' simulator, RNG and run lengths are unpublished.
What must hold is the *shape*:

* the model tracks the simulation at light/moderate load (bounded
  relative error),
* both curves saturate, and at nearby loads,
* the saturation load falls with ``h`` and with ``Lm`` in the ratios the
  paper's axes imply.

:func:`shape_metrics` quantifies these; the benchmark harness asserts on
them and EXPERIMENTS.md records them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.results import SweepResult
from repro.experiments.runner import PanelResult

__all__ = ["ShapeMetrics", "shape_metrics", "format_panel_table"]


@dataclass(frozen=True)
class ShapeMetrics:
    """Model-vs-simulation agreement summary for one panel.

    Attributes
    ----------
    mean_rel_error_light:
        Mean |model - sim| / sim over the points where both are finite
        and simulated utilisation is light/moderate (first half of the
        grid) — the regime where the paper claims "reasonable accuracy".
    mean_rel_error_all:
        Same over every point where both curves are finite.
    model_saturation_rate / sim_saturation_rate:
        First saturated grid rate of each curve (``None`` if neither
        saturated within the grid).
    saturation_ratio:
        model / sim saturation rate (1.0 = same knee; ``None`` when
        either is missing).
    monotone_model / monotone_sim:
        Latency curves are non-decreasing in load (hockey-stick shape).
    """

    mean_rel_error_light: float
    mean_rel_error_all: float
    model_saturation_rate: Optional[float]
    sim_saturation_rate: Optional[float]
    saturation_ratio: Optional[float]
    monotone_model: bool
    monotone_sim: bool


def _is_monotone(curve: SweepResult, tolerance: float = 0.05) -> bool:
    """Non-decreasing within ``tolerance`` relative slack (simulation
    noise at light load can wiggle by a few percent)."""
    last = -math.inf
    for p in curve.points:
        if math.isinf(p.latency):
            break
        if p.latency < last * (1.0 - tolerance):
            return False
        last = max(last, p.latency)
    return True


def shape_metrics(result: PanelResult) -> ShapeMetrics:
    """Compute agreement metrics for a panel run (requires simulation)."""
    if result.simulation is None:
        raise ValueError("panel was run model-only; no simulation to compare")
    rows = result.paired_points()
    finite = [
        (r, m, s)
        for r, m, s in rows
        if math.isfinite(m) and math.isfinite(s) and not math.isnan(s)
    ]
    rel = [(abs(m - s) / s) for _, m, s in finite if s > 0]
    half = max(1, len(rows) // 2)
    light_rates = {r for r, _, _ in rows[:half]}
    rel_light = [abs(m - s) / s for r, m, s in finite if r in light_rates and s > 0]

    model_sat = result.model.saturation_rate()
    sim_sat = result.simulation.saturation_rate()
    ratio = None
    if model_sat is not None and sim_sat is not None and sim_sat > 0:
        ratio = model_sat / sim_sat
    return ShapeMetrics(
        mean_rel_error_light=(sum(rel_light) / len(rel_light)) if rel_light else math.nan,
        mean_rel_error_all=(sum(rel) / len(rel)) if rel else math.nan,
        model_saturation_rate=model_sat,
        sim_saturation_rate=sim_sat,
        saturation_ratio=ratio,
        monotone_model=_is_monotone(result.model),
        monotone_sim=_is_monotone(result.simulation),
    )


def format_panel_table(result: PanelResult) -> str:
    """Render a panel as the rows the paper's figure plots.

    One line per grid rate: offered traffic, model latency, simulated
    latency ("-" where not simulated / saturated shows "saturated").
    """
    spec = result.spec
    lines = [
        f"{spec.description}",
        f"{'traffic (msg/cycle)':>20} | {'model (cycles)':>15} | {'simulation (cycles)':>20}",
        "-" * 62,
    ]

    def fmt(x: float) -> str:
        if math.isnan(x):
            return "-"
        if math.isinf(x):
            return "saturated"
        return f"{x:.1f}"

    for rate, model_lat, sim_lat in result.paired_points():
        lines.append(f"{rate:>20.6g} | {fmt(model_lat):>15} | {fmt(sim_lat):>20}")
    return "\n".join(lines)
