"""Experiment harness: definitions and runners for the paper's figures.

The paper's evaluation (§4) consists of six latency-vs-load panels:
Figure 1 (``Lm = 32`` flits) and Figure 2 (``Lm = 100`` flits), each at
hot-spot fractions ``h ∈ {20%, 40%, 70%}``, on a 256-node (16×16)
unidirectional torus.  Each panel plots the analytical model against the
flit-level simulator.

* :mod:`~repro.experiments.figures` — the panel definitions (network,
  message length, h, load grid chosen to span zero → saturation exactly
  like the paper's axes).
* :mod:`~repro.experiments.runner` — runs model + simulator for a panel
  and returns paired curves.
* :mod:`~repro.experiments.report` — renders the series as the ASCII
  tables the benchmarks print and computes the shape metrics recorded in
  EXPERIMENTS.md.
"""

from repro.experiments.figures import (
    ALL_PANELS,
    FIGURE1,
    FIGURE2,
    PanelSpec,
    get_panel,
)
from repro.experiments.runner import PanelResult, run_panel, run_panel_model_only
from repro.experiments.report import (
    format_panel_table,
    shape_metrics,
    ShapeMetrics,
)

__all__ = [
    "ALL_PANELS",
    "FIGURE1",
    "FIGURE2",
    "PanelSpec",
    "get_panel",
    "PanelResult",
    "run_panel",
    "run_panel_model_only",
    "format_panel_table",
    "shape_metrics",
    "ShapeMetrics",
]
