"""Experiment harness: definitions and runners for the paper's figures.

The paper's evaluation (§4) consists of six latency-vs-load panels:
Figure 1 (``Lm = 32`` flits) and Figure 2 (``Lm = 100`` flits), each at
hot-spot fractions ``h ∈ {20%, 40%, 70%}``, on a 256-node (16×16)
unidirectional torus.  Each panel plots the analytical model against the
flit-level simulator.

* :mod:`~repro.experiments.figures` — the panel definitions (network,
  message length, h, load grid chosen to span zero → saturation exactly
  like the paper's axes).
* :mod:`~repro.experiments.sweep` — the sweep engine: parallel
  simulation points with deterministic per-point seeds, warm-started
  model solves, and the on-disk result cache.
* :mod:`~repro.experiments.runner` — the legacy one-call panel runners,
  now thin wrappers over the engine's sequential (``jobs=1``) path.
* :mod:`~repro.experiments.report` — renders the series as the ASCII
  tables the benchmarks print and computes the shape metrics recorded in
  EXPERIMENTS.md.
"""

from repro.experiments.figures import (
    ALL_PANELS,
    FIGURE1,
    FIGURE2,
    FIGURES,
    PanelSpec,
    get_panel,
    panels_of_figure,
)
from repro.experiments.sweep import (
    PanelResult,
    SweepEngine,
    default_cache_dir,
    point_seed,
    sim_jobs,
    sim_measure_cycles,
)
from repro.experiments.runner import run_panel, run_panel_model_only
from repro.experiments.report import (
    format_panel_table,
    shape_metrics,
    ShapeMetrics,
)

__all__ = [
    "ALL_PANELS",
    "FIGURE1",
    "FIGURE2",
    "FIGURES",
    "PanelSpec",
    "get_panel",
    "panels_of_figure",
    "PanelResult",
    "SweepEngine",
    "default_cache_dir",
    "point_seed",
    "sim_jobs",
    "sim_measure_cycles",
    "run_panel",
    "run_panel_model_only",
    "format_panel_table",
    "shape_metrics",
    "ShapeMetrics",
]
