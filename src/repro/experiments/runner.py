"""Run model and simulator over a figure panel's load grid.

Simulation run lengths scale with the environment variable
``REPRO_SIM_CYCLES`` (measurement cycles per point, default 120 000) so
CI-speed and paper-accuracy runs use the same code path.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, Optional

from repro.core.model import HotSpotLatencyModel
from repro.core.results import SweepPoint, SweepResult
from repro.experiments.figures import PanelSpec
from repro.simulator.config import SimulationConfig
from repro.simulator.sim import Simulation

__all__ = ["PanelResult", "run_panel", "run_panel_model_only", "sim_measure_cycles"]


def sim_measure_cycles(default: int = 120_000) -> int:
    """Measurement cycles per simulation point (env-overridable)."""
    raw = os.environ.get("REPRO_SIM_CYCLES", "")
    if not raw:
        return default
    value = int(raw)
    if value < 1_000:
        raise ValueError(
            f"REPRO_SIM_CYCLES={value} too small; need >= 1000 for meaningful stats"
        )
    return value


@dataclass
class PanelResult:
    """Paired model/simulation curves for one panel."""

    spec: PanelSpec
    model: SweepResult
    simulation: Optional[SweepResult]

    def paired_points(self) -> List[tuple]:
        """(rate, model latency, sim latency) rows, sim ``nan`` if absent."""
        sim_by_rate = {}
        if self.simulation is not None:
            sim_by_rate = {p.rate: p for p in self.simulation.points}
        rows = []
        for p in self.model.points:
            s = sim_by_rate.get(p.rate)
            rows.append(
                (p.rate, p.latency, s.latency if s is not None else math.nan)
            )
        return rows


def run_panel_model_only(
    spec: PanelSpec, *, trip_averaging: bool = True
) -> PanelResult:
    """Evaluate the analytical model over the panel grid (fast)."""
    model = HotSpotLatencyModel(
        k=spec.k,
        message_length=spec.message_length,
        hotspot_fraction=spec.hotspot_fraction,
        num_vcs=spec.num_vcs,
        trip_averaging=trip_averaging,
    )
    sweep = model.sweep(spec.rates, label=f"model:{spec.name}")
    return PanelResult(spec=spec, model=sweep, simulation=None)


def run_panel(
    spec: PanelSpec,
    *,
    seed: int = 42,
    measure_cycles: Optional[int] = None,
    warmup_cycles: Optional[int] = None,
    trip_averaging: bool = True,
) -> PanelResult:
    """Evaluate model *and* simulator over the panel grid.

    The simulation sweep stops at its first saturated point (the paper's
    curves end at saturation too, and saturated runs only burn time).
    """
    result = run_panel_model_only(spec, trip_averaging=trip_averaging)
    measure = measure_cycles if measure_cycles is not None else sim_measure_cycles()
    warmup = warmup_cycles if warmup_cycles is not None else max(measure // 8, 2_000)
    sim_sweep = SweepResult(label=f"sim:{spec.name}")
    for rate in spec.rates:
        cfg = SimulationConfig(
            k=spec.k,
            n=2,
            num_vcs=spec.num_vcs,
            message_length=spec.message_length,
            rate=float(rate),
            hotspot_fraction=spec.hotspot_fraction,
            warmup_cycles=warmup,
            measure_cycles=measure,
            seed=seed,
        )
        res = Simulation(cfg).run()
        latency = math.inf if res.saturated else res.mean_latency
        sim_sweep.points.append(
            SweepPoint(rate=float(rate), latency=latency, saturated=res.saturated)
        )
        if res.saturated:
            break
    result.simulation = sim_sweep
    return result
