"""Legacy panel runners, now thin wrappers over the sweep engine.

The orchestration itself — parallel simulation points, deterministic
per-point seeds, warm-started model solves, the on-disk result cache —
lives in :class:`repro.experiments.sweep.SweepEngine`; these functions
keep the original one-call API and the sequential ``jobs=1`` defaults.

Simulation run lengths scale with the environment variable
``REPRO_SIM_CYCLES`` (measurement cycles per point, default 120 000) so
CI-speed and paper-accuracy runs use the same code path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.experiments.figures import PanelSpec
from repro.experiments.sweep import PanelResult, SweepEngine, sim_measure_cycles

__all__ = ["PanelResult", "run_panel", "run_panel_model_only", "sim_measure_cycles"]


def run_panel_model_only(
    spec: PanelSpec, *, trip_averaging: bool = True
) -> PanelResult:
    """Evaluate the analytical model over the panel grid (fast)."""
    engine = SweepEngine(jobs=1, use_cache=False)
    return engine.run_panel(spec, simulate=False, trip_averaging=trip_averaging)


def run_panel(
    spec: PanelSpec,
    *,
    seed: int = 42,
    measure_cycles: Optional[int] = None,
    warmup_cycles: Optional[int] = None,
    trip_averaging: bool = True,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: "Path | str | None" = None,
) -> PanelResult:
    """Evaluate model *and* simulator over the panel grid.

    The simulation sweep stops at its first saturated point (the paper's
    curves end at saturation too, and saturated runs only burn time).
    ``jobs``, ``use_cache`` and ``cache_dir`` pass through to
    :class:`~repro.experiments.sweep.SweepEngine`; caching defaults off
    here so existing callers (tests, benchmarks) keep timing real runs.
    """
    engine = SweepEngine(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir)
    return engine.run_panel(
        spec,
        seed=seed,
        measure_cycles=measure_cycles,
        warmup_cycles=warmup_cycles,
        trip_averaging=trip_averaging,
    )
