"""Bursty (non-Poisson) source processes — the paper's future work.

The conclusion of the paper: "there have been some attempts to construct
analytical models for interconnection networks operating under
non-Poissonian traffic load, including bursty and self-similar traffic
... Our next objective is to extend the above modelling approach to deal
with such traffic patterns."  This module supplies the workload side of
that extension for the *simulator*:

* :class:`ExponentialArrivals` — the paper's Poisson process (renewal
  with exponential gaps), the default everywhere;
* :class:`OnOffArrivals` — a two-state Markov-modulated process: a
  source alternates exponential ON periods (generating at an elevated
  rate) and OFF periods (silent).  Mean rate is held at ``rate`` while
  the burstiness parameter concentrates the arrivals;
* :class:`ParetoOnOffArrivals` — ON/OFF with heavy-tailed (Pareto)
  sojourn times, the standard construction whose superposition over many
  sources exhibits self-similar traffic (Willinger et al.).

All are *inter-arrival samplers*: ``next_gap(rng)`` returns the time to
the next message.  They plug into
:class:`~repro.simulator.network.TorusWorkload` via the
``arrival_model`` parameter; the analytical model retains its Poisson
assumption (i), so comparing the two under bursty load quantifies
exactly the gap the paper's future work targets (see
``examples/bursty_traffic.py``).
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = [
    "ArrivalModel",
    "ExponentialArrivals",
    "OnOffArrivals",
    "ParetoOnOffArrivals",
]


class ArrivalModel(abc.ABC):
    """Per-source inter-arrival time sampler.

    Implementations must be *stateful per source*: the workload creates
    one instance per source via :meth:`fresh`.
    """

    @abc.abstractmethod
    def next_gap(self, rng: np.random.Generator) -> float:
        """Time (cycles, continuous) from the current arrival to the next."""

    def sample_gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` consecutive inter-arrival gaps as a float array.

        The workload pre-draws gaps in blocks through this method
        instead of calling :meth:`next_gap` once per message; renewal
        processes with a vectorisable gap distribution should override
        it (memoryless state must still advance exactly as ``count``
        sequential :meth:`next_gap` calls would).
        """
        return np.fromiter(
            (self.next_gap(rng) for _ in range(count)), dtype=float, count=count
        )

    @abc.abstractmethod
    def fresh(self) -> "ArrivalModel":
        """Independent copy with reset burst state (one per source)."""

    @property
    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrivals per cycle (what eq 3 calls ``lambda``)."""


class ExponentialArrivals(ArrivalModel):
    """Poisson process of rate ``rate`` (assumption i of the paper)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def next_gap(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_gaps(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # The process is memoryless, so one vectorised draw is exactly
        # `count` sequential next_gap calls.
        return rng.exponential(1.0 / self.rate, size=count)

    def fresh(self) -> "ExponentialArrivals":
        return ExponentialArrivals(self.rate)

    @property
    def mean_rate(self) -> float:
        return self.rate


class OnOffArrivals(ArrivalModel):
    """Markov-modulated ON/OFF source with exponential sojourns.

    The source spends exponential ON periods of mean ``on_mean`` cycles
    generating a Poisson stream at ``peak_rate``, then exponential OFF
    periods sized so the long-run mean equals ``rate``:

        duty = rate / peak_rate,   off_mean = on_mean * (1 - duty)/duty.

    ``burstiness = peak_rate / rate`` (> 1) measures how concentrated
    the arrivals are; ``burstiness -> 1`` recovers Poisson.
    """

    def __init__(
        self,
        rate: float,
        burstiness: float = 5.0,
        on_mean: float = 200.0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burstiness < 1.0:
            raise ValueError(f"burstiness must be >= 1, got {burstiness}")
        if on_mean <= 0:
            raise ValueError(f"on_mean must be positive, got {on_mean}")
        self.rate = float(rate)
        self.burstiness = float(burstiness)
        self.on_mean = float(on_mean)
        self.peak_rate = self.rate * self.burstiness
        duty = 1.0 / self.burstiness
        self.off_mean = self.on_mean * (1.0 - duty) / duty if duty < 1 else 0.0
        self._on_left = 0.0  # remaining ON time; starts OFF-boundary

    def next_gap(self, rng: np.random.Generator) -> float:
        gap = 0.0
        while True:
            if self._on_left <= 0.0:
                if self.off_mean > 0.0:
                    gap += float(rng.exponential(self.off_mean))
                self._on_left = float(rng.exponential(self.on_mean))
            candidate = float(rng.exponential(1.0 / self.peak_rate))
            if candidate <= self._on_left:
                self._on_left -= candidate
                return gap + candidate
            # ON period ended before the next arrival: burn it and loop.
            gap += self._on_left
            self._on_left = 0.0

    def fresh(self) -> "OnOffArrivals":
        return OnOffArrivals(self.rate, self.burstiness, self.on_mean)

    @property
    def mean_rate(self) -> float:
        return self.rate


class ParetoOnOffArrivals(ArrivalModel):
    """ON/OFF source with Pareto-distributed sojourn times.

    Heavy-tailed ON/OFF sojourns (shape ``alpha`` in (1, 2)) give the
    source long-range dependence; aggregating many such sources yields
    (asymptotically) self-similar traffic — the workload class the
    paper's conclusion points at.  Mean rate is matched to ``rate`` as
    in :class:`OnOffArrivals`.
    """

    def __init__(
        self,
        rate: float,
        burstiness: float = 5.0,
        on_mean: float = 200.0,
        alpha: float = 1.5,
    ) -> None:
        if not 1.0 < alpha < 2.0:
            raise ValueError(f"alpha must be in (1, 2), got {alpha}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burstiness < 1.0:
            raise ValueError(f"burstiness must be >= 1, got {burstiness}")
        self.rate = float(rate)
        self.burstiness = float(burstiness)
        self.on_mean = float(on_mean)
        self.alpha = float(alpha)
        self.peak_rate = self.rate * self.burstiness
        duty = 1.0 / self.burstiness
        self.off_mean = self.on_mean * (1.0 - duty) / duty if duty < 1 else 0.0
        self._on_left = 0.0

    def _pareto(self, rng: np.random.Generator, mean: float) -> float:
        # Pareto with shape alpha and mean `mean`: x_m = mean*(alpha-1)/alpha.
        xm = mean * (self.alpha - 1.0) / self.alpha
        return float(xm / rng.random() ** (1.0 / self.alpha))

    def next_gap(self, rng: np.random.Generator) -> float:
        gap = 0.0
        while True:
            if self._on_left <= 0.0:
                if self.off_mean > 0.0:
                    gap += self._pareto(rng, self.off_mean)
                self._on_left = self._pareto(rng, self.on_mean)
            candidate = float(rng.exponential(1.0 / self.peak_rate))
            if candidate <= self._on_left:
                self._on_left -= candidate
                return gap + candidate
            gap += self._on_left
            self._on_left = 0.0

    def fresh(self) -> "ParetoOnOffArrivals":
        return ParetoOnOffArrivals(
            self.rate, self.burstiness, self.on_mean, self.alpha
        )

    @property
    def mean_rate(self) -> float:
        return self.rate
