"""Analytical channel traffic rates (paper eqs 1-9).

Geometry conventions (paper §3, 2-D torus, hot node at ``(v_hx, v_hy)``):

* dimension 0 is "x", dimension 1 is "y";
* the *hot y-ring* is the column of nodes sharing the hot node's x
  coordinate — every hot-spot message finishes its trip inside it;
* a channel of the hot y-ring is ``j`` hops from the hot node when its
  source node is ``j`` hops upstream (``j = k`` labels the hot node's own
  outgoing channel);
* an x channel is ``j`` hops from the hot y-ring when its source node is
  ``j`` hops upstream of the hot column (``j = k`` labels channels leaving
  hot-column nodes).

Rates:

* eq 1: mean hops per dimension of regular traffic ``k̄ = (k-1)/2``;
* eq 2: mean channels crossed by a regular message ``d = n k̄``;
* eq 3: regular rate on every channel ``lam_r = lam (1-h) k̄``
  (``N lam (1-h) k̄`` traversals/cycle spread over the ``N`` channels of
  each dimension);
* eqs 4-5: fraction of system nodes whose hot-spot messages cross a given
  channel — ``P_hx,j = (k-j)/N`` (the ``k-j`` nodes of the same row at
  x-distance ``>= j``), ``P_hy,j = k(k-j)/N`` (all ``k`` nodes of each of
  the ``k-j`` rows at y-distance ``>= j``);
* eqs 6-7: hot-spot rates ``lam^h_x,j = N lam h P_hx,j``,
  ``lam^h_y,j = N lam h P_hy,j``;
* eqs 8-9: totals ``lam_x,j = lam_r + lam^h_x,j`` and likewise for y.

:func:`empirical_channel_rates` computes the exact expected crossing rate
of every channel by enumerating deterministic routes — the tests use it
to prove the closed forms correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.topology.kary_ncube import Channel, KAryNCube
from repro.topology.routing import DimensionOrderRouter
from repro.traffic.patterns import DestinationPattern

__all__ = ["ChannelRates", "HotSpotRates", "empirical_channel_rates"]


@dataclass(frozen=True)
class ChannelRates:
    """Mean-hop quantities and the regular channel rate (eqs 1-3)."""

    k: int
    n: int
    rate: float
    hotspot_fraction: float

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"radix must be >= 2, got {self.k}")
        if self.n < 1:
            raise ValueError(f"dimensions must be >= 1, got {self.n}")
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError(
                f"hot-spot fraction must be in [0,1], got {self.hotspot_fraction}"
            )

    @property
    def mean_hops_per_dimension(self) -> float:
        """Eq (1): ``k̄ = sum_{i=1}^{k-1} i/k = (k-1)/2``."""
        return (self.k - 1) / 2.0

    @property
    def mean_message_hops(self) -> float:
        """Eq (2): ``d = n k̄``."""
        return self.n * self.mean_hops_per_dimension

    @property
    def regular_rate(self) -> float:
        """Eq (3): regular traffic rate on any channel of any dimension."""
        return self.rate * (1.0 - self.hotspot_fraction) * self.mean_hops_per_dimension


class HotSpotRates:
    """Hot-spot channel rates of the 2-D model (eqs 4-9).

    Parameters
    ----------
    k:
        Radix; the network is the ``k x k`` unidirectional torus.
    rate:
        Per-node generation rate ``lambda`` (messages/cycle).
    hotspot_fraction:
        Pfister–Norton ``h``.

    Indexing: ``j`` runs over ``1..k`` per the paper's convention; arrays
    returned by the vector accessors are indexed ``[j-1]``.
    """

    def __init__(self, k: int, rate: float, hotspot_fraction: float) -> None:
        self.channel = ChannelRates(k=k, n=2, rate=rate, hotspot_fraction=hotspot_fraction)
        self.k = k
        self.rate = float(rate)
        self.h = float(hotspot_fraction)
        self.num_nodes = k * k

    # -- eq 4 / eq 5 ----------------------------------------------------
    def p_hx(self, j: int) -> float:
        """Eq (4): node fraction routing hot traffic over x channel j."""
        self._check_j(j)
        return (self.k - j) / self.num_nodes

    def p_hy(self, j: int) -> float:
        """Eq (5): node fraction routing hot traffic over hot-ring channel j."""
        self._check_j(j)
        return self.k * (self.k - j) / self.num_nodes

    # -- eq 6 / eq 7 ----------------------------------------------------
    def hot_rate_x(self, j: int) -> float:
        """Eq (6): ``lam^h_x,j = N lam h P_hx,j = lam h (k-j)``."""
        return self.num_nodes * self.rate * self.h * self.p_hx(j)

    def hot_rate_y(self, j: int) -> float:
        """Eq (7): ``lam^h_y,j = N lam h P_hy,j = lam h k (k-j)``."""
        return self.num_nodes * self.rate * self.h * self.p_hy(j)

    # -- eq 8 / eq 9 ----------------------------------------------------
    def total_rate_x(self, j: int) -> float:
        """Eq (8): regular + hot-spot rate on x channel j."""
        return self.channel.regular_rate + self.hot_rate_x(j)

    def total_rate_y(self, j: int) -> float:
        """Eq (9): regular + hot-spot rate on hot-ring channel j."""
        return self.channel.regular_rate + self.hot_rate_y(j)

    # -- vector forms (j = 1..k as array index j-1) ----------------------
    def hot_rates_x(self) -> np.ndarray:
        return np.array([self.hot_rate_x(j) for j in range(1, self.k + 1)])

    def hot_rates_y(self) -> np.ndarray:
        return np.array([self.hot_rate_y(j) for j in range(1, self.k + 1)])

    def _check_j(self, j: int) -> None:
        if not 1 <= j <= self.k:
            raise ValueError(f"hop index j must be in [1, {self.k}], got {j}")

    # -- conservation ----------------------------------------------------
    def total_hot_traffic_generated(self) -> float:
        """Hot messages generated per cycle, ``(N-1) lam h``.

        The hot node itself sends no hot-spot messages.
        """
        return (self.num_nodes - 1) * self.rate * self.h

    def total_hot_y_traversals(self) -> float:
        """Hot-spot crossings of hot-ring y channels per cycle.

        Equals ``sum_j lam^h_y,j`` over ``j = 1..k-1`` (channel ``j = k``
        leaves the hot node and carries no hot traffic).  Conservation:
        a source in a row at distance ``t`` crosses ``t`` y channels, so
        the total is ``lam h k sum_t t = lam h k^2 (k-1)/2``.
        """
        return float(sum(self.hot_rate_y(j) for j in range(1, self.k)))


def empirical_channel_rates(
    network: KAryNCube,
    rate: float,
    pattern: DestinationPattern,
) -> Dict[Channel, float]:
    """Exact expected crossing rate of every channel under a pattern.

    Enumerates all (source, destination) pairs, weights each by
    ``rate * P(dest | source)`` from the pattern's closed-form
    distribution, and accumulates over the deterministic route's
    channels.  O(N² · diameter); intended for test-sized networks.
    """
    router = DimensionOrderRouter(network)
    rates: Dict[Channel, float] = {ch: 0.0 for ch in network.channels()}
    for s in range(network.num_nodes):
        probs = pattern.destination_probabilities(s)
        src = network.unrank(s)
        for d in range(network.num_nodes):
            p = probs[d]
            if p == 0.0 or d == s:
                continue
            for hop in router.route(src, network.unrank(d)).hops:
                rates[hop.channel] += rate * p
    return rates
