"""Destination distributions (traffic patterns).

The paper's traffic model (assumption ii, after Pfister & Norton [20]):
"each generated message has a finite probability ``h`` of being directed
to the hot-spot node, and probability ``1-h`` of being uniformly directed
to the other network nodes".  :class:`HotSpotPattern` implements exactly
that; :class:`UniformPattern` is the ``h = 0`` degenerate case that the
pre-existing uniform-traffic models assume.

For the extended examples we also provide the classic permutation
patterns (matrix transpose, bit reversal) and an arbitrary
traffic-matrix pattern; they exercise the same simulator code paths with
non-uniform but hot-spot-free traffic.

Patterns are deterministic functions of an externally supplied
:class:`numpy.random.Generator`, so simulations are reproducible from a
seed.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.topology.kary_ncube import KAryNCube, Node

__all__ = [
    "DestinationPattern",
    "UniformPattern",
    "HotSpotPattern",
    "TransposePattern",
    "BitReversalPattern",
    "MatrixPattern",
]


class DestinationPattern(abc.ABC):
    """Chooses a destination rank for each message generated at a source.

    Subclasses must never return the source itself: the paper's traffic
    model draws destinations among *other* nodes (and the hot-spot node
    does not send hot-spot messages to itself).
    """

    def __init__(self, network: KAryNCube) -> None:
        self.network = network

    @abc.abstractmethod
    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        """Destination rank for one message generated at ``source_rank``."""

    def destination_probabilities(self, source_rank: int) -> np.ndarray:
        """Vector ``p[d]`` of destination probabilities for this source.

        Default implementation estimates nothing — subclasses override
        with their closed form.  Used by tests to validate :meth:`draw`
        against the intended distribution.
        """
        raise NotImplementedError

    def _uniform_other(self, source_rank: int, rng: np.random.Generator) -> int:
        """Uniform draw over the ``N-1`` nodes other than the source."""
        n = self.network.num_nodes
        d = int(rng.integers(0, n - 1))
        return d + 1 if d >= source_rank else d


class UniformPattern(DestinationPattern):
    """Uniform traffic over the other ``N-1`` nodes (the h=0 case)."""

    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        return self._uniform_other(source_rank, rng)

    def destination_probabilities(self, source_rank: int) -> np.ndarray:
        n = self.network.num_nodes
        p = np.full(n, 1.0 / (n - 1))
        p[source_rank] = 0.0
        return p


class HotSpotPattern(DestinationPattern):
    """Pfister–Norton hot-spot traffic (paper assumption ii).

    With probability ``h`` the destination is the hot-spot node; with
    probability ``1-h`` it is uniform over the other ``N-1`` nodes
    (which *include* the hot-spot node, so the hot node's total share is
    ``h + (1-h)/(N-1)``).  Messages generated *by* the hot-spot node are
    always regular — a node does not send to itself — matching the
    paper's "when the source is the hot-spot node, only regular traffic
    is generated".

    Parameters
    ----------
    network:
        Topology the pattern lives on.
    hotspot_fraction:
        The hot-spot probability ``h`` in [0, 1].
    hotspot_node:
        Coordinate vector of the hot node (defaults to the origin; by
        symmetry of the torus the choice is irrelevant to statistics).
    """

    def __init__(
        self,
        network: KAryNCube,
        hotspot_fraction: float,
        hotspot_node: Optional[Node] = None,
    ) -> None:
        super().__init__(network)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError(
                f"hot-spot fraction must be in [0, 1], got {hotspot_fraction}"
            )
        self.h = float(hotspot_fraction)
        if hotspot_node is None:
            hotspot_node = (0,) * network.n
        network._check_node(hotspot_node)
        self.hotspot_node: Node = tuple(hotspot_node)
        self.hotspot_rank = network.rank(self.hotspot_node)

    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        if source_rank != self.hotspot_rank and rng.random() < self.h:
            return self.hotspot_rank
        return self._uniform_other(source_rank, rng)

    def is_hot_message(self, source_rank: int, dest_rank: int) -> bool:
        """Classifier used by the simulator's statistics: a message is a
        *hot-spot message* when it targets the hot node and was not sent
        by the hot node itself.

        Note the ``(1-h)/(N-1)`` sliver of uniform messages that happen
        to hit the hot node is counted as hot by destination — the same
        aggregation the analytical channel rates use.
        """
        return dest_rank == self.hotspot_rank and source_rank != self.hotspot_rank

    def destination_probabilities(self, source_rank: int) -> np.ndarray:
        n = self.network.num_nodes
        if source_rank == self.hotspot_rank:
            p = np.full(n, 1.0 / (n - 1))
            p[source_rank] = 0.0
            return p
        p = np.full(n, (1.0 - self.h) / (n - 1))
        p[source_rank] = 0.0
        p[self.hotspot_rank] += self.h
        return p


class TransposePattern(DestinationPattern):
    """Matrix-transpose permutation: ``(x, y) -> (y, x)`` (2-D only).

    Nodes on the diagonal have themselves as image; they fall back to
    uniform traffic so the no-self-message invariant holds.
    """

    def __init__(self, network: KAryNCube) -> None:
        if network.n != 2:
            raise ValueError("transpose pattern requires a 2-D network")
        super().__init__(network)

    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        x, y = self.network.unrank(source_rank)
        if x == y:
            return self._uniform_other(source_rank, rng)
        return self.network.rank((y, x))


class BitReversalPattern(DestinationPattern):
    """Bit-reversal permutation on the rank's binary representation.

    Requires ``N`` to be a power of two.  Fixed points fall back to
    uniform traffic.
    """

    def __init__(self, network: KAryNCube) -> None:
        super().__init__(network)
        n = network.num_nodes
        if n & (n - 1):
            raise ValueError("bit reversal requires a power-of-two node count")
        self._bits = n.bit_length() - 1

    def _reverse(self, rank: int) -> int:
        out = 0
        for _ in range(self._bits):
            out = (out << 1) | (rank & 1)
            rank >>= 1
        return out

    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        dest = self._reverse(source_rank)
        if dest == source_rank:
            return self._uniform_other(source_rank, rng)
        return dest


class MatrixPattern(DestinationPattern):
    """Arbitrary stochastic traffic matrix ``P[s, d]``.

    ``matrix[s]`` must be a probability vector with ``matrix[s, s] == 0``.
    Useful for composing custom non-uniform workloads in examples.
    """

    def __init__(self, network: KAryNCube, matrix: Sequence[Sequence[float]]) -> None:
        super().__init__(network)
        m = np.asarray(matrix, dtype=float)
        n = network.num_nodes
        if m.shape != (n, n):
            raise ValueError(f"matrix must be {n}x{n}, got {m.shape}")
        if np.any(m < 0):
            raise ValueError("matrix entries must be non-negative")
        if np.any(np.abs(m.sum(axis=1) - 1.0) > 1e-9):
            raise ValueError("matrix rows must sum to 1")
        if np.any(np.diag(m) != 0):
            raise ValueError("self-traffic (diagonal entries) must be zero")
        self.matrix = m
        self._cumulative = np.cumsum(m, axis=1)

    def draw(self, source_rank: int, rng: np.random.Generator) -> int:
        u = rng.random()
        return int(np.searchsorted(self._cumulative[source_rank], u, side="right"))

    def destination_probabilities(self, source_rank: int) -> np.ndarray:
        return self.matrix[source_rank].copy()
