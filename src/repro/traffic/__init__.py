"""Traffic patterns, source processes and analytical channel rates.

* :mod:`~repro.traffic.patterns` — destination distributions: the
  Pfister–Norton hot-spot pattern used by the paper (assumption ii),
  plus uniform and several classic permutation patterns used by the
  extended examples.
* :mod:`~repro.traffic.generators` — Poisson message sources
  (assumption i) and message factories for the simulator.
* :mod:`~repro.traffic.rates` — closed-form channel traffic rates of the
  analytical model (eqs 1-9).
"""

from repro.traffic.patterns import (
    BitReversalPattern,
    DestinationPattern,
    HotSpotPattern,
    MatrixPattern,
    TransposePattern,
    UniformPattern,
)
from repro.traffic.generators import MessageSource, PoissonProcess
from repro.traffic.burst import (
    ArrivalModel,
    ExponentialArrivals,
    OnOffArrivals,
    ParetoOnOffArrivals,
)
from repro.traffic.rates import ChannelRates, HotSpotRates

__all__ = [
    "DestinationPattern",
    "HotSpotPattern",
    "UniformPattern",
    "TransposePattern",
    "BitReversalPattern",
    "MatrixPattern",
    "MessageSource",
    "PoissonProcess",
    "ArrivalModel",
    "ExponentialArrivals",
    "OnOffArrivals",
    "ParetoOnOffArrivals",
    "ChannelRates",
    "HotSpotRates",
]
