"""repro — Analytical modelling of hot-spot traffic in k-ary n-cubes.

A production-quality reproduction of

    S. Loucif, M. Ould-Khaoua, G. Min,
    "Analytical Modelling of Hot-Spot Traffic in Deterministically-Routed
    K-Ary N-Cubes", Proc. 19th IEEE IPDPS, 2005.

The package provides the paper's analytical latency model
(:class:`~repro.core.model.HotSpotLatencyModel`), every substrate it
depends on (topology, deterministic routing, queueing primitives,
traffic models) and the flit-level wormhole simulator used to validate
it, plus the experiment harness that regenerates the paper's Figures 1
and 2.

Quickstart
----------
>>> from repro import HotSpotLatencyModel, Simulation, SimulationConfig
>>> model = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.2)
>>> model.evaluate(0.0003).latency  # doctest: +SKIP
410.7...
>>> cfg = SimulationConfig(k=16, message_length=32, rate=0.0003,
...                        hotspot_fraction=0.2)
>>> Simulation(cfg).run().mean_latency  # doctest: +SKIP
395.2...
"""

from repro.core import (
    BlockingServicePolicy,
    FixedPointSolver,
    FixedPointStatus,
    HotSpotLatencyModel,
    HypercubeHotSpotModel,
    LatencyBreakdown,
    ModelResult,
    NDimHotSpotModel,
    SweepPoint,
    SweepResult,
    UniformLatencyModel,
)
from repro.simulator import Simulation, SimulationConfig, SimulationResult
from repro.topology import DimensionOrderRouter, KAryNCube
from repro.traffic import (
    ChannelRates,
    ExponentialArrivals,
    HotSpotPattern,
    HotSpotRates,
    OnOffArrivals,
    ParetoOnOffArrivals,
    UniformPattern,
)

__version__ = "1.0.0"

__all__ = [
    "HotSpotLatencyModel",
    "UniformLatencyModel",
    "NDimHotSpotModel",
    "HypercubeHotSpotModel",
    "BlockingServicePolicy",
    "ExponentialArrivals",
    "OnOffArrivals",
    "ParetoOnOffArrivals",
    "ModelResult",
    "LatencyBreakdown",
    "SweepPoint",
    "SweepResult",
    "FixedPointSolver",
    "FixedPointStatus",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "KAryNCube",
    "DimensionOrderRouter",
    "HotSpotPattern",
    "UniformPattern",
    "ChannelRates",
    "HotSpotRates",
    "__version__",
]
