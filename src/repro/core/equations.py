"""Pure-function forms of the paper's model equations.

Everything in this module is stateless: the fixed-point solver in
:mod:`repro.core.model` wires these functions together.  Keeping them
free-standing makes each equation unit-testable against first-principles
enumeration (see ``tests/test_equations.py``).

Naming: the paper's 2-D torus has dimensions x (crossed first) and y;
the *hot y-ring* is the column containing the hot-spot node.  Messages
fall into the path classes

=============  =====================================================
class           description
=============  =====================================================
``hy``          regular, travels only in the hot y-ring
``hybar``       regular, travels only in a non-hot y-ring
``x``           regular, travels only in dimension x
``xhy``         regular, crosses x then finishes in the hot y-ring
``xhybar``      regular, crosses x then finishes in a non-hot y-ring
``h_y``         hot-spot, generated inside the hot y-ring
``h_x``         hot-spot, generated outside the hot y-ring
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PathProbabilities",
    "regular_service_profile",
    "chained_service_profile",
    "hot_y_service_profile",
    "hot_x_service_profile",
]


@dataclass(frozen=True)
class PathProbabilities:
    """Exact path-class probabilities for uniform destinations.

    Derived by counting (source, destination) pairs of the ``k x k``
    torus with destinations uniform over the other ``N-1 = k^2-1``
    nodes; all the paper's coefficients (eqs 12, 13, 15, 31) coincide
    with these exact counts.

    Attributes
    ----------
    p_hot_y_only:
        Source and destination both in the hot column (eq 12 weight):
        ``1 / (k(k+1))``.
    p_nonhot_y_only:
        Same column, not the hot one (eq 13 weight):
        ``(k-1) / (k(k+1))``.
    p_enter_x:
        Destination in a different column (eq 14 weight): ``k/(k+1)``.
    p_x_only_given_x:
        Destination in the same row, conditional on entering x: ``1/k``.
    p_x_to_hot_given_x:
        Continue into the hot column, conditional on entering x:
        ``(k-1)/k²``.
    p_x_to_nonhot_given_x:
        Continue into a non-hot column, conditional: ``(k-1)²/k²``.
    """

    k: int

    @property
    def p_hot_y_only(self) -> float:
        k = self.k
        return 1.0 / (k * (k + 1))

    @property
    def p_nonhot_y_only(self) -> float:
        k = self.k
        return (k - 1.0) / (k * (k + 1))

    @property
    def p_enter_x(self) -> float:
        k = self.k
        return k / (k + 1.0)

    @property
    def p_x_only_given_x(self) -> float:
        return 1.0 / self.k

    @property
    def p_x_to_hot_given_x(self) -> float:
        k = self.k
        return (k - 1.0) / k**2

    @property
    def p_x_to_nonhot_given_x(self) -> float:
        k = self.k
        return (k - 1.0) ** 2 / k**2

    def total(self) -> float:
        """Sanity check: the class probabilities sum to one."""
        return (
            self.p_hot_y_only
            + self.p_nonhot_y_only
            + self.p_enter_x
            * (
                self.p_x_only_given_x
                + self.p_x_to_hot_given_x
                + self.p_x_to_nonhot_given_x
            )
        )


def regular_service_profile(
    k: int, blocking: float, message_length: float
) -> np.ndarray:
    """Service times of a class terminating at its destination (eqs 16-18).

    With a position-independent mean blocking delay ``B`` the recurrence

        S_1 = 1 + B + Lm,      S_j = 1 + B + S_{j-1}

    closes to ``S_j = j (1 + B) + Lm``.  Returns the array ``S_1..S_k``
    (index ``[j-1]``); ``S_k`` is the paper's "service time at the
    entrance of the dimension".

    An infinite blocking delay (saturated channel) propagates to every
    position.
    """
    if k < 2:
        raise ValueError(f"radix must be >= 2, got {k}")
    if message_length < 1:
        raise ValueError(f"message length must be >= 1, got {message_length}")
    j = np.arange(1, k + 1, dtype=float)
    return j * (1.0 + blocking) + message_length


def chained_service_profile(
    k: int, blocking: float, next_dimension_entry: float
) -> np.ndarray:
    """Service times of an x class that continues into y (eqs 19-20).

    The ``j = 1`` case chains into the next dimension's entrance service
    time instead of draining the message:

        S_1 = 1 + B + S_y_entry,     S_j = 1 + B + S_{j-1}
        =>   S_j = j (1 + B) + S_y_entry.
    """
    if k < 2:
        raise ValueError(f"radix must be >= 2, got {k}")
    if next_dimension_entry < 0:
        raise ValueError(
            f"next-dimension entry time must be >= 0, got {next_dimension_entry}"
        )
    j = np.arange(1, k + 1, dtype=float)
    return j * (1.0 + blocking) + next_dimension_entry


def hot_y_service_profile(
    k: int, blocking_per_position: np.ndarray, message_length: float
) -> np.ndarray:
    """Hot-spot service times inside the hot y-ring (eq 23).

    ``blocking_per_position[j-1]`` is the mean blocking delay at the
    hot-ring channel ``j`` hops from the hot node.  Unlike the regular
    classes, blocking here is position-*dependent* (the hot rate
    ``lam^h_y,j`` grows towards the hot node), so the recurrence is
    evaluated literally:

        S^h_y,1 = 1 + B_1 + Lm,     S^h_y,j = 1 + B_j + S^h_y,j-1.

    Returns ``S^h_y,1..S^h_y,k-1`` (a hot-spot message makes at most
    ``k-1`` hops); index ``[j-1]``.
    """
    b = np.asarray(blocking_per_position, dtype=float)
    if b.shape != (k - 1,) and b.shape != (k,):
        raise ValueError(
            f"expected k-1={k-1} (or k) blocking values, got shape {b.shape}"
        )
    out = np.empty(k - 1)
    out[0] = 1.0 + b[0] + message_length
    for j in range(1, k - 1):
        out[j] = 1.0 + b[j] + out[j - 1]
    return out


def hot_x_service_profile(
    k: int,
    blocking_per_position: np.ndarray,
    hot_y_profile: np.ndarray,
    message_length: float,
) -> np.ndarray:
    """Hot-spot service times for sources outside the hot ring (eq 25).

    ``blocking_per_position[j-1, t-1]`` is the blocking delay at the x
    channel ``j`` hops from the hot column inside the x-ring (row) ``t``
    hops from the hot node (``t = k``: the hot node's own row).

    The last x hop (``j = 1``) either delivers the message (``t = k``,
    the row contains the hot node) or chains into the hot ring at
    y-distance ``t`` (``t != k``):

        S^h_x,1,k = 1 + B_{1,k} + Lm
        S^h_x,1,t = 1 + B_{1,t} + S^h_y,t          (t = 1..k-1)
        S^h_x,j,t = 1 + B_{j,t} + S^h_x,j-1,t      (j = 2..k-1)

    Returns the ``(k-1, k)`` array indexed ``[j-1, t-1]``.
    """
    b = np.asarray(blocking_per_position, dtype=float)
    if b.shape != (k - 1, k):
        raise ValueError(f"expected blocking shape {(k - 1, k)}, got {b.shape}")
    hy = np.asarray(hot_y_profile, dtype=float)
    if hy.shape != (k - 1,):
        raise ValueError(f"expected hot-y profile of length {k - 1}, got {hy.shape}")
    out = np.empty((k - 1, k))
    # j = 1 row: chain into y (t = 1..k-1) or deliver (t = k).
    out[0, : k - 1] = 1.0 + b[0, : k - 1] + hy
    out[0, k - 1] = 1.0 + b[0, k - 1] + message_length
    for j in range(1, k - 1):
        out[j, :] = 1.0 + b[j, :] + out[j - 1, :]
    return out
