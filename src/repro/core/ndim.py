"""n-dimensional generalisation of the hot-spot model (extension).

The paper analyses the 2-D torus and notes the approach "can be easily
extended".  This module carries out that extension for an arbitrary
number of dimensions ``n``, preserving the 2-D model's structure:

* **Hot-spot channel rates.**  With dimension-order routing a hot-spot
  message corrects dimensions ``0..n-1`` in order, so when it crosses
  dimension ``i`` its coordinates in dimensions ``< i`` already equal the
  hot node's.  A dimension-``i`` channel ``j`` hops upstream of the hot
  coordinate therefore carries hot traffic from the ``k**i * (k - j)``
  sources that share its trailing coordinates and lie at distance
  ``>= j``; the rate is

      lam^h_{i,j} = lam * h * k**i * (k - j),

  which reduces to eqs (6)-(7) for ``n = 2``.
* **Regular classes.**  A regular message is charged, per dimension it
  uses, the entrance service time of that dimension, where the blocking
  delay of dimension ``i`` is averaged over the ``k**(n-1) * k`` channel
  positions exactly as eq (18) averages over the ``k x k`` grid: hot
  positions are weighted ``1/k**(n-i-1)... `` — concretely, a fraction
  ``k**i / k**(n-1)... `` of dimension-``i`` rings contain hot traffic.
  We average ``B_i`` over positions ``j = 1..k`` and over "carries hot
  traffic or not": only the rings whose trailing coordinates match the
  hot node carry hot traffic in dimension i, a fraction
  ``f_i = k**i / N * k = k**(i+1-n)``.
* **Hot-spot latency.**  A hot message from a source at per-dimension
  distances ``(j_0.. j_{n-1})`` accumulates the position-dependent
  recurrences dimension by dimension, exactly like eq (25) chains into
  eq (23).  To avoid enumerating all ``k**n`` sources, the implementation
  exploits that the service profile of dimension ``i`` depends only on
  the remaining distance vector through the *entry point* into dimension
  ``i+1``; profiles are computed once per dimension and reused.

This is a faithful structural generalisation, not a claim from the
paper.  It compresses the 2-D model's per-(ring, position) hot profiles
into per-dimension profiles (averaging over the chaining distance), so
for ``n = 2`` it *approximates* — closely, but not bit-for-bit —
:class:`~repro.core.model.HotSpotLatencyModel`; the agreement and the
divergence under load are characterised in ``tests/test_ndim.py`` and
the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.fixed_point import FixedPointSolver, FixedPointStatus
from repro.core.results import ModelResult, SweepPoint, SweepResult
from repro.queueing.blocking import BlockingInputs, blocking_delay
from repro.queueing.mg1 import mg1_waiting_time
from repro.queueing.vc_multiplexing import multiplexing_degree

__all__ = ["NDimHotSpotModel"]


class NDimHotSpotModel:
    """Hot-spot latency model for the unidirectional k-ary n-cube.

    Parameters mirror :class:`~repro.core.model.HotSpotLatencyModel`,
    plus ``n``.  For ``n = 2`` the two models share rates and blocking
    machinery but this one averages the hot-spot chaining over rings, so
    it tracks (rather than duplicates) the 2-D model.
    """

    def __init__(
        self,
        k: int,
        n: int,
        message_length: int,
        hotspot_fraction: float,
        num_vcs: int = 2,
        *,
        solver: Optional[FixedPointSolver] = None,
    ) -> None:
        if k < 2:
            raise ValueError(f"radix must be >= 2, got {k}")
        if n < 1:
            raise ValueError(f"dimensions must be >= 1, got {n}")
        if message_length < 1:
            raise ValueError(f"message length must be >= 1, got {message_length}")
        if not 0.0 <= hotspot_fraction < 1.0:
            raise ValueError(
                f"hot-spot fraction must be in [0, 1), got {hotspot_fraction}"
            )
        if num_vcs < 2:
            raise ValueError(f"need >= 2 virtual channels, got {num_vcs}")
        self.k = int(k)
        self.n = int(n)
        self.num_nodes = self.k**self.n
        self.message_length = int(message_length)
        self.h = float(hotspot_fraction)
        self.num_vcs = int(num_vcs)
        self.solver = solver or FixedPointSolver(
            tol=1e-10, max_iterations=5_000, damping=0.5
        )

    # ------------------------------------------------------------------
    def hot_rate(self, dim: int, j: int) -> float:
        """Hot-spot rate on a dimension-``dim`` channel ``j`` hops upstream.

        Unit generation rate; multiply by ``lam``.  ``j = k`` (the channel
        leaving the hot hyperplane) carries none.
        """
        if not 0 <= dim < self.n:
            raise ValueError(f"dimension {dim} out of range")
        if not 1 <= j <= self.k:
            raise ValueError(f"hop index {j} out of range [1, {self.k}]")
        return self.h * (self.k**dim) * (self.k - j)

    def hot_ring_fraction(self, dim: int) -> float:
        """Fraction of dimension-``dim`` rings that carry hot traffic.

        A dimension-``dim`` ring is identified by its ``n-1`` other
        coordinates; it carries hot traffic iff its coordinates in
        dimensions ``< dim`` equal the hot node's (dimensions ``> dim``
        are free).  That is ``k**(n-1-dim)`` of the ``k**(n-1)`` rings.
        """
        return self.k ** (self.n - 1 - dim) / self.k ** (self.n - 1)

    # ------------------------------------------------------------------
    # Fixed point over per-dimension structures
    # ------------------------------------------------------------------
    def _state_size(self) -> int:
        # Per dimension: entrance service time of the regular class (1)
        # and the hot profile S^h_{i,j}, j = 1..k-1.
        return self.n * (1 + (self.k - 1))

    def _unpack(self, state: np.ndarray):
        entries = state[: self.n]
        hot = state[self.n :].reshape(self.n, self.k - 1)
        return entries, hot

    def _pack(self, entries: np.ndarray, hot: np.ndarray) -> np.ndarray:
        return np.concatenate([entries, hot.ravel()])

    def _zero_state(self) -> np.ndarray:
        k, lm = self.k, self.message_length
        entries = np.full(self.n, float(k + lm))
        hot = np.empty((self.n, k - 1))
        # Zero-load hot profiles: last dimension drains (Lm), earlier
        # dimensions chain into the next dimension's mean entry.
        for i in reversed(range(self.n)):
            tail = lm if i == self.n - 1 else lm + float(np.mean(hot[i + 1]))
            for j in range(1, k):
                hot[i, j - 1] = j + tail
        return self._pack(entries, hot)

    def _update(self, rate: float, state: np.ndarray) -> np.ndarray:
        k, lm, n = self.k, self.message_length, self.n
        lam_r = rate * (1.0 - self.h) * (k - 1) / 2.0
        entries, hot = self._unpack(state)
        new_entries = np.empty(n)
        new_hot = np.empty((n, k - 1))
        # Walk dimensions backwards so hot chaining uses fresh profiles.
        for i in reversed(range(n)):
            frac_hot = self.hot_ring_fraction(i)
            # Averaged regular blocking over ring type and position.
            b_terms: List[float] = []
            tx = float(lm + 1)  # transmission-time competing service
            for j in range(1, k + 1):
                gam = rate * self.hot_rate(i, j)
                s_gam = tx if j < k else 0.0
                b_hot_pos = blocking_delay(
                    BlockingInputs(lam_r, gam, tx, s_gam), lm
                )
                b_cold = blocking_delay(
                    BlockingInputs(lam_r, 0.0, tx, 0.0), lm
                )
                if not (math.isfinite(b_hot_pos) and math.isfinite(b_cold)):
                    return np.full_like(state, np.inf)
                b_terms.append(frac_hot * b_hot_pos + (1.0 - frac_hot) * b_cold)
            b_i = float(np.mean(b_terms))
            # Regular entrance: chain into the mix of draining/continuing.
            if i == n - 1:
                tail = float(lm)
            else:
                p_use = (k - 1.0) / k
                tail = float(lm) * (1 - p_use) + p_use * float(new_entries[i + 1])
            new_entries[i] = k * (1.0 + b_i) + tail

            # Hot profile: position-dependent blocking, chains into the
            # next dimension's mean hot entry (hot messages always use
            # every remaining dimension segment that is non-zero; we
            # average over the next dimension's distance uniformly, which
            # is exact for the uniform source distribution).
            if i == n - 1:
                hot_tail = float(lm)
            else:
                hot_tail = float(lm)  # j=0 continuation handled below
            prev = None
            for j in range(1, k):
                gam = rate * self.hot_rate(i, j)
                b = blocking_delay(
                    BlockingInputs(lam_r, gam, tx, tx),
                    lm,
                )
                if not math.isfinite(b):
                    return np.full_like(state, np.inf)
                if j == 1:
                    if i == n - 1:
                        base = float(lm)
                    else:
                        # Chain into dimension i+1: the source's remaining
                        # distance there is 0 with prob 1/k (skip) else
                        # uniform 1..k-1.
                        nxt = new_hot[i + 1]
                        base = (1.0 / k) * float(lm) + (
                            (k - 1.0) / k
                        ) * float(np.mean(nxt))
                    prev = 1.0 + b + base
                else:
                    prev = 1.0 + b + prev
                new_hot[i, j - 1] = prev
        return self._pack(new_entries, new_hot)

    # ------------------------------------------------------------------
    def evaluate(self, rate: float) -> ModelResult:
        """Mean message latency at per-node rate ``rate``."""
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        k, lm, n, h = self.k, self.message_length, self.n, self.h
        lam_r = rate * (1.0 - h) * (k - 1) / 2.0
        if rate == 0.0:
            state = self._zero_state()
            iterations = 0
        else:
            result = self.solver.solve(lambda s: self._update(rate, s), self._zero_state())
            if result.status is not FixedPointStatus.CONVERGED:
                return ModelResult(
                    rate=rate,
                    latency=math.inf,
                    saturated=True,
                    iterations=result.iterations,
                )
            state = result.state
            iterations = result.iterations
        entries, hot = self._unpack(state)

        # Regular network latency: dimension entered = first non-matching
        # dimension; weight by skip probabilities.
        network = 0.0
        total_w = 0.0
        p_skip = 1.0 / k
        for i in range(n):
            w = (p_skip**i) * (1.0 - p_skip)
            network += w * float(entries[i])
            total_w += w
        network /= total_w

        # Hot network latency: average S^h over source distance vectors;
        # source enters at its first non-zero dimension.
        hot_latency = 0.0
        for i in range(n):
            w = (p_skip**i) * (1.0 - p_skip)
            hot_latency += w * float(np.mean(hot[i]))
        hot_latency /= total_w

        v_bars = [
            multiplexing_degree(
                lam_r + rate * float(np.mean([self.hot_rate(i, j) for j in range(1, k + 1)])) * self.hot_ring_fraction(i),
                float(entries[i]),
                self.num_vcs,
            )
            for i in range(n)
        ]
        v_bar = float(np.mean(v_bars))
        s_node = (1.0 - h) * network + h * hot_latency
        ws = mg1_waiting_time(rate / self.num_vcs, s_node, lm)
        if not math.isfinite(ws):
            return ModelResult(
                rate=rate, latency=math.inf, saturated=True, iterations=iterations
            )
        latency = ((1.0 - h) * (network + ws) + h * (hot_latency + ws)) * v_bar
        return ModelResult(
            rate=rate,
            latency=float(latency),
            saturated=False,
            iterations=iterations,
            mean_multiplexing_x=v_bar,
            mean_multiplexing_hot_ring=v_bar,
            mean_multiplexing_nonhot_ring=v_bar,
            max_utilization=float(lam_r * (lm + 1)),
        )

    def sweep(self, rates, label: str = "ndim-model") -> SweepResult:
        out = SweepResult(label=label)
        for r in rates:
            res = self.evaluate(float(r))
            out.points.append(
                SweepPoint(rate=float(r), latency=res.latency, saturated=res.saturated)
            )
        return out
