"""Hypercube hot-spot baseline (the paper's predecessor model [12]).

Loucif & Ould-Khaoua, "Modelling latency in deterministic wormhole-routed
hypercubes under hot-spot traffic", J. Supercomputing 27(3), 2004, is the
paper's own prior work and the model it generalises from the binary
hypercube to high-radix tori.  A hypercube is exactly the k-ary n-cube
with ``k = 2`` (the paper, §1: "no study has been so far reported ... for
modelling deterministic routing in HIGH RADIX k-ary n-cubes"), so the
baseline falls out of the n-dimensional machinery:

* e-cube (dimension-order) routing corrects one bit per dimension;
* per-dimension hot-spot rate: the dimension-``i`` channel on the hot
  path carries the hot traffic of the ``2**i`` sources that share its
  trailing bits — ``lam^h_i = lam * h * 2**i`` (the ``k - j`` factor of
  eqs 6-7 degenerates to 1);
* a regular message uses each dimension with probability 1/2, crossing
  ``n/2`` channels on average (eq 2 with ``k̄ = 1/2``).

:class:`HypercubeHotSpotModel` wraps :class:`~repro.core.ndim.NDimHotSpotModel`
at ``k = 2`` with hypercube-flavoured accessors; the flit-level simulator
runs the same configuration via ``SimulationConfig(k=2, n=dims)``, which
is how ``tests/test_hypercube.py`` validates the baseline end-to-end.
"""

from __future__ import annotations

from typing import Optional

from repro.core.fixed_point import FixedPointSolver
from repro.core.ndim import NDimHotSpotModel
from repro.core.results import ModelResult, SweepResult

__all__ = ["HypercubeHotSpotModel"]


class HypercubeHotSpotModel:
    """Mean-latency model for hot-spot traffic in a binary n-cube.

    Parameters
    ----------
    dimensions:
        Hypercube dimension ``n`` (``N = 2**n`` nodes).
    message_length, hotspot_fraction, num_vcs:
        As in :class:`~repro.core.model.HotSpotLatencyModel`.  Note the
        hypercube has no wrap-around channels, so deadlock freedom does
        not *require* 2 VCs; they are kept for comparability with the
        torus models (and extra VCs still multiplex bandwidth).
    """

    def __init__(
        self,
        dimensions: int,
        message_length: int,
        hotspot_fraction: float,
        num_vcs: int = 2,
        *,
        solver: Optional[FixedPointSolver] = None,
    ) -> None:
        if dimensions < 1:
            raise ValueError(f"dimension must be >= 1, got {dimensions}")
        self.dimensions = int(dimensions)
        self._model = NDimHotSpotModel(
            k=2,
            n=dimensions,
            message_length=message_length,
            hotspot_fraction=hotspot_fraction,
            num_vcs=num_vcs,
            solver=solver,
        )

    @property
    def num_nodes(self) -> int:
        return 2**self.dimensions

    @property
    def mean_message_hops(self) -> float:
        """Eq (2) at k = 2: ``n/2`` (each address bit flips w.p. 1/2)."""
        return self.dimensions / 2.0

    def hot_rate(self, dim: int) -> float:
        """Hot-spot rate factor on the dimension-``dim`` hot-path channel.

        Multiply by the generation rate ``lam``; equals ``h * 2**dim``.
        """
        return self._model.hot_rate(dim, 1)

    def evaluate(self, rate: float) -> ModelResult:
        """Mean message latency at per-node rate ``rate``."""
        return self._model.evaluate(rate)

    def sweep(self, rates, label: str = "hypercube-model") -> SweepResult:
        return self._model.sweep(rates, label=label)

    def saturation_rate(self, hi: float = 0.5, tol: float = 1e-7) -> float:
        """Smallest saturated rate (bisection)."""
        if not self.evaluate(hi).saturated:
            raise ValueError(f"upper bound {hi} does not saturate the model")
        lo_rate, hi_rate = 0.0, hi
        while hi_rate - lo_rate > tol * max(1.0, hi_rate):
            mid = 0.5 * (lo_rate + hi_rate)
            if self.evaluate(mid).saturated:
                hi_rate = mid
            else:
                lo_rate = mid
        return hi_rate
