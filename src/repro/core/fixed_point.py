"""Damped fixed-point iteration for the model's interdependent variables.

The paper: "Examining all above equations reveal that there are several
interdependencies between the different variables of the model.  Given
that a closed-form solution to these interdependencies is very difficult
to determine, the different variables of the model are computed using
iterative techniques for solving equations [12, 17, 21]."

The solver iterates a user-supplied map ``x -> F(x)`` over a flat
``numpy`` state vector with under-relaxation

    x_{i+1} = (1 - damping) * x_i + damping * F(x_i)

until the relative change falls below ``tol``.  Three outcomes:

* ``CONVERGED`` — a finite fixed point was found;
* ``SATURATED`` — the map produced a non-finite value (a channel or
  source queue whose utilisation reached one): the offered load has no
  steady state, which the latency model reports as operating past the
  saturation point;
* ``MAX_ITERATIONS`` — no convergence within the budget (treated as
  saturation by the latency model, since near-saturation loads are
  exactly where the iteration stops contracting).

:meth:`FixedPointSolver.solve_batch` iterates *many* independent fixed
points at once over a 2-D ``(points, variables)`` state: each numpy
sweep applies a batched update to the still-active rows, converged rows
are frozen at the iteration they converge, and rows whose update turns
non-finite are retired as saturated.  With ``chain=True`` the rows are
assumed ordered along a sweep axis (e.g. increasing injection rate) and
are solved in rate-ordered *waves*: every row of a later wave starts
from the converged state of the highest already-converged row — the
batched form of the sweep engine's warm-start chaining.  A row that is
never warm-seeded follows exactly the trajectory the scalar
:meth:`~FixedPointSolver.solve` would, so batched and sequential solves
agree bit for bit on those rows; warm-seeded rows are flagged so
callers can fall back to a cold solve when one fails, preserving the
scalar warm-start contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "FixedPointStatus",
    "FixedPointResult",
    "BatchFixedPointResult",
    "FixedPointSolver",
    "UpdateFailure",
    "solve_batch_with_fallback",
]


class FixedPointStatus(enum.Enum):
    CONVERGED = "converged"
    SATURATED = "saturated"
    MAX_ITERATIONS = "max_iterations"
    #: The update map raised :class:`UpdateFailure` (a numerical failure
    #: or an injected fault) — the point is a failure *record*, not a
    #: propagated abort, and in a batch only the raising rows carry it.
    FAILED = "failed"


class UpdateFailure(Exception):
    """Raised by an update map to fail one fixed point (one batch row).

    The solver converts it into a :data:`FixedPointStatus.FAILED` record
    for exactly the affected point instead of aborting the whole solve:
    a scalar :meth:`FixedPointSolver.solve` returns a FAILED result, a
    batched :meth:`FixedPointSolver.solve_batch` retires only the rows
    whose update raised and keeps iterating the rest.  Any other
    exception type still propagates — only deliberate failures (and the
    fault-injection harness's :class:`~repro.faults.InjectedFault`,
    which subclasses this) get the record treatment.
    """


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point solve."""

    status: FixedPointStatus
    state: np.ndarray
    iterations: int
    residual: float

    @property
    def converged(self) -> bool:
        return self.status is FixedPointStatus.CONVERGED


@dataclass(frozen=True)
class BatchFixedPointResult:
    """Outcome of a batched multi-point fixed-point solve.

    Attributes
    ----------
    status:
        Object array of :class:`FixedPointStatus`, one per point.
    states:
        ``(points, variables)`` array: the converged state of each
        converged row, the last finite iterate otherwise.
    iterations:
        Iteration index at which each row froze (converged or retired);
        ``max_iterations`` for rows that exhausted the budget.
    residuals:
        Final per-row residual (``inf`` for saturated rows).
    reseeded:
        Rows that were warm-seeded from an earlier converged row during
        chaining — callers that must preserve cold-start semantics
        (e.g. saturation classification) retry exactly these rows from
        a cold start when they fail.
    """

    status: np.ndarray
    states: np.ndarray
    iterations: np.ndarray
    residuals: np.ndarray
    reseeded: np.ndarray

    @property
    def converged(self) -> np.ndarray:
        return self.status == FixedPointStatus.CONVERGED


def solve_batch_with_fallback(
    solver: "FixedPointSolver",
    update: Callable[[np.ndarray, np.ndarray], np.ndarray],
    initial: np.ndarray,
    warm: np.ndarray,
    cold: np.ndarray,
    *,
    chain: bool,
    wave: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Batched solve with the scalar warm-start fallback contract.

    Runs :meth:`FixedPointSolver.solve_batch` on ``initial`` (rows
    flagged in ``warm`` carry caller-supplied starts), then re-solves
    every failed row whose start was warm or chain-seeded from the
    ``cold`` state with chaining off — so no load a cold solve resolves
    is ever reported unconverged, exactly like the scalar ``evaluate``
    warm start.  Returns ``(converged mask, final states, total
    iterations per row)`` with retry iterations accumulated.
    """
    res = solver.solve_batch(update, initial, chain=chain, wave=wave)
    iterations = res.iterations.copy()
    ok = res.converged
    retry = ~ok & (res.reseeded | warm)
    if np.any(retry):
        retry_rows = np.flatnonzero(retry)

        def update_retry(sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
            return update(sub, retry_rows[idx])

        res2 = solver.solve_batch(
            update_retry, np.tile(cold, (retry_rows.size, 1))
        )
        iterations[retry] += res2.iterations
        ok[retry] = res2.converged
        res.states[retry] = res2.states
    return ok, res.states, iterations


class FixedPointSolver:
    """Iterates ``x -> F(x)`` with damping until convergence.

    Parameters
    ----------
    tol:
        Convergence threshold on ``max |x' - x| / (1 + max |x|)``.
    max_iterations:
        Iteration budget.
    damping:
        Under-relaxation factor in (0, 1]; 1 is plain Picard iteration.
        The latency model uses 0.5, which converges for every load below
        saturation in practice while damping the oscillation that plain
        iteration exhibits near saturation.
    """

    def __init__(
        self,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        damping: float = 0.5,
    ) -> None:
        if tol <= 0:
            raise ValueError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise ValueError(f"iteration budget must be >= 1, got {max_iterations}")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)

    def solve(
        self,
        update: Callable[[np.ndarray], np.ndarray],
        initial: np.ndarray,
    ) -> FixedPointResult:
        """Run the iteration from ``initial``.

        ``update`` may return non-finite entries to signal saturation;
        it must not mutate its argument.
        """
        x = np.array(initial, dtype=float, copy=True)
        if not np.all(np.isfinite(x)):
            raise ValueError("initial state must be finite")
        residual = np.inf
        for i in range(1, self.max_iterations + 1):
            try:
                if i == 1:
                    _maybe_injected_solver_fault()
                fx = np.asarray(update(x), dtype=float)
            except UpdateFailure:
                return FixedPointResult(
                    status=FixedPointStatus.FAILED,
                    state=x,
                    iterations=i,
                    residual=np.inf,
                )
            if fx.shape != x.shape:
                raise ValueError(
                    f"update changed state shape {x.shape} -> {fx.shape}"
                )
            if not np.all(np.isfinite(fx)):
                return FixedPointResult(
                    status=FixedPointStatus.SATURATED,
                    state=x,
                    iterations=i,
                    residual=np.inf,
                )
            new = (1.0 - self.damping) * x + self.damping * fx
            residual = float(np.max(np.abs(new - x)) / (1.0 + np.max(np.abs(x))))
            x = new
            if residual < self.tol:
                return FixedPointResult(
                    status=FixedPointStatus.CONVERGED,
                    state=x,
                    iterations=i,
                    residual=residual,
                )
        return FixedPointResult(
            status=FixedPointStatus.MAX_ITERATIONS,
            state=x,
            iterations=self.max_iterations,
            residual=residual,
        )

    def solve_batch(
        self,
        update: Callable[[np.ndarray, np.ndarray], np.ndarray],
        initial: np.ndarray,
        *,
        chain: bool = False,
        wave: int = 4,
    ) -> BatchFixedPointResult:
        """Iterate many independent fixed points in one numpy sweep.

        Parameters
        ----------
        update:
            Batched map ``(states, idx) -> F(states)``: ``states`` is the
            ``(active, variables)`` sub-array of still-active rows and
            ``idx`` their row indices in ``initial`` (so per-point
            parameters — e.g. per-rate traffic arrays — can be sliced).
            Rows may come back non-finite to signal saturation; the
            argument must not be mutated.
        initial:
            ``(points, variables)`` array of start states, all finite.
        chain:
            Warm-start chaining along the batch axis.  Rows must be
            ordered so that neighbours have nearby fixed points (e.g. by
            increasing injection rate); they are then solved in
            consecutive waves of ``wave`` rows.  Every row of a later
            wave starts from a secant extrapolation of the two highest
            already-converged states (clamped to their elementwise
            minimum, falling back to the single converged state while
            only one exists) — first-order chaining that lands far
            closer to each row's fixed point than re-using the
            neighbouring state.  The slope is taken over *row indices*,
            so on (near-)uniformly spaced sweep grids whose state grows
            convexly along the sweep axis — the shape of every
            latency-vs-load curve here — the seed stays *below* the true
            fixed point and cannot push a stable row into spurious
            saturation; on irregular grids a seed may overshoot, which
            costs that row a wasted warm attempt but never changes its
            outcome (see below).  Chaining never changes which fixed
            point a row converges to (to tolerance); it only accelerates
            — and every warm-seeded row is reported in ``reseeded`` so
            the caller can fall back to a cold solve when one fails,
            mirroring the scalar warm-start contract.
        wave:
            Rows per chaining wave (ignored without ``chain``).

        Notes
        -----
        Convergence and saturation are masked per row: a converged row is
        frozen (its state no longer updated, its iteration count pinned),
        a saturated row is retired from the active set immediately.  The
        iteration budget applies per row — each row performs at most
        ``max_iterations`` updates, exactly as many as a sequential
        :meth:`solve` from the same start state would, so an unseeded
        batched row and the scalar solve agree bit for bit.
        """
        x = np.array(initial, dtype=float, copy=True)
        if x.ndim != 2:
            raise ValueError(
                f"batched initial state must be 2-D (points, variables), "
                f"got shape {x.shape}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("initial states must be finite")
        if chain and wave < 1:
            raise ValueError(f"chaining wave must be >= 1, got {wave}")
        n_points = x.shape[0]
        status = np.full(n_points, FixedPointStatus.MAX_ITERATIONS, dtype=object)
        iterations = np.full(n_points, self.max_iterations, dtype=np.int64)
        residuals = np.full(n_points, np.inf)
        reseeded = np.zeros(n_points, dtype=bool)
        out = BatchFixedPointResult(
            status=status,
            states=x,
            iterations=iterations,
            residuals=residuals,
            reseeded=reseeded,
        )
        if n_points == 0:
            return out
        if not chain:
            self._iterate_masked(update, out, np.arange(n_points))
            return out
        anchors: "list[int]" = []  # indices of the two highest converged rows
        # The first wave only needs to establish the two secant anchors,
        # so it is clamped to 2 rows — every later row then starts from
        # an extrapolated seed, even in batches smaller than ``wave``.
        start = 0
        while start < n_points:
            width = min(2, wave) if start == 0 else wave
            rows = np.arange(start, min(start + width, n_points))
            start += width
            if len(anchors) == 2:
                pp, p = anchors
                slope = (x[p] - x[pp]) / (p - pp)
                seeds = x[p] + slope * (rows - p)[:, None]
                x[rows] = np.maximum(seeds, np.minimum(x[p], x[pp]))
                reseeded[rows] = True
            elif len(anchors) == 1:
                x[rows] = x[anchors[0]]
                reseeded[rows] = True
            self._iterate_masked(update, out, rows)
            for q in rows[out.status[rows] == FixedPointStatus.CONVERGED]:
                anchors = (anchors + [int(q)])[-2:]
        return out

    def _iterate_masked(
        self,
        update: Callable[[np.ndarray, np.ndarray], np.ndarray],
        out: BatchFixedPointResult,
        rows: np.ndarray,
    ) -> None:
        """Run the masked damped iteration on ``rows`` of ``out`` in place."""
        x = out.states
        active = np.zeros(x.shape[0], dtype=bool)
        active[rows] = True
        flags = _injected_solver_fault_flags(len(rows))
        if flags is not None:
            bad = rows[np.asarray(flags, dtype=bool)]
            if bad.size:
                out.status[bad] = FixedPointStatus.FAILED
                out.iterations[bad] = 0
                out.residuals[bad] = np.inf
                active[bad] = False
                if not active.any():
                    return
        for i in range(1, self.max_iterations + 1):
            idx = np.flatnonzero(active)
            try:
                fx = np.asarray(update(x[idx], idx), dtype=float)
            except UpdateFailure:
                # One (or more) rows failed: isolate them row by row so
                # they become FAILED records while the rest keep going.
                idx, fx = self._isolate_update_failures(
                    update, x, idx, out, i, active
                )
                if idx.size == 0:
                    if not active.any():
                        return
                    continue
            if fx.shape != (len(idx), x.shape[1]):
                raise ValueError(
                    f"update changed state shape {(len(idx), x.shape[1])} "
                    f"-> {fx.shape}"
                )
            finite = np.all(np.isfinite(fx), axis=1)
            sat_rows = idx[~finite]
            if sat_rows.size:
                # Retire saturated rows: keep the pre-update iterate, as
                # the scalar solver does.
                out.status[sat_rows] = FixedPointStatus.SATURATED
                out.iterations[sat_rows] = i
                out.residuals[sat_rows] = np.inf
                active[sat_rows] = False
                idx = idx[finite]
                fx = fx[finite]
            if idx.size:
                old = x[idx]
                new = (1.0 - self.damping) * old + self.damping * fx
                step = np.max(np.abs(new - old), axis=1) / (
                    1.0 + np.max(np.abs(old), axis=1)
                )
                x[idx] = new
                out.residuals[idx] = step
                conv_rows = idx[step < self.tol]
                if conv_rows.size:
                    out.status[conv_rows] = FixedPointStatus.CONVERGED
                    out.iterations[conv_rows] = i
                    active[conv_rows] = False
            if not active.any():
                return

    def _isolate_update_failures(
        self,
        update: Callable[[np.ndarray, np.ndarray], np.ndarray],
        x: np.ndarray,
        idx: np.ndarray,
        out: BatchFixedPointResult,
        i: int,
        active: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Re-run a raising batched update row by row.

        Rows whose update raises :class:`UpdateFailure` are retired as
        FAILED records; the survivors' updates are reassembled so the
        batch iteration continues without them.  Returns the surviving
        ``(idx, fx)`` pair (possibly empty).
        """
        keep: "list[int]" = []
        fx_rows: "list[np.ndarray]" = []
        for r in idx:
            row_idx = np.asarray([r])
            try:
                fr = np.asarray(update(x[row_idx], row_idx), dtype=float)
            except UpdateFailure:
                out.status[r] = FixedPointStatus.FAILED
                out.iterations[r] = i
                out.residuals[r] = np.inf
                active[r] = False
            else:
                keep.append(int(r))
                fx_rows.append(fr.reshape(-1))
        if not keep:
            return np.empty(0, dtype=np.int64), np.empty((0, x.shape[1]))
        return np.asarray(keep, dtype=np.int64), np.vstack(fx_rows)


def _maybe_injected_solver_fault() -> None:
    """Fault-injection hook for scalar solves (no-op without a plan).

    Imported lazily so :mod:`repro.faults` (which imports this module
    for :class:`UpdateFailure`) never forms an import cycle.
    """
    from repro.faults import maybe_solver_fault

    maybe_solver_fault()


def _injected_solver_fault_flags(count: int) -> "list[bool] | None":
    """Per-row fault-injection flags for batched solves (lazy import)."""
    from repro.faults import solver_fault_flags

    return solver_fault_flags(count)
