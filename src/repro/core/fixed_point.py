"""Damped fixed-point iteration for the model's interdependent variables.

The paper: "Examining all above equations reveal that there are several
interdependencies between the different variables of the model.  Given
that a closed-form solution to these interdependencies is very difficult
to determine, the different variables of the model are computed using
iterative techniques for solving equations [12, 17, 21]."

The solver iterates a user-supplied map ``x -> F(x)`` over a flat
``numpy`` state vector with under-relaxation

    x_{i+1} = (1 - damping) * x_i + damping * F(x_i)

until the relative change falls below ``tol``.  Three outcomes:

* ``CONVERGED`` — a finite fixed point was found;
* ``SATURATED`` — the map produced a non-finite value (a channel or
  source queue whose utilisation reached one): the offered load has no
  steady state, which the latency model reports as operating past the
  saturation point;
* ``MAX_ITERATIONS`` — no convergence within the budget (treated as
  saturation by the latency model, since near-saturation loads are
  exactly where the iteration stops contracting).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["FixedPointStatus", "FixedPointResult", "FixedPointSolver"]


class FixedPointStatus(enum.Enum):
    CONVERGED = "converged"
    SATURATED = "saturated"
    MAX_ITERATIONS = "max_iterations"


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point solve."""

    status: FixedPointStatus
    state: np.ndarray
    iterations: int
    residual: float

    @property
    def converged(self) -> bool:
        return self.status is FixedPointStatus.CONVERGED


class FixedPointSolver:
    """Iterates ``x -> F(x)`` with damping until convergence.

    Parameters
    ----------
    tol:
        Convergence threshold on ``max |x' - x| / (1 + max |x|)``.
    max_iterations:
        Iteration budget.
    damping:
        Under-relaxation factor in (0, 1]; 1 is plain Picard iteration.
        The latency model uses 0.5, which converges for every load below
        saturation in practice while damping the oscillation that plain
        iteration exhibits near saturation.
    """

    def __init__(
        self,
        tol: float = 1e-9,
        max_iterations: int = 10_000,
        damping: float = 0.5,
    ) -> None:
        if tol <= 0:
            raise ValueError(f"tolerance must be positive, got {tol}")
        if max_iterations < 1:
            raise ValueError(f"iteration budget must be >= 1, got {max_iterations}")
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.damping = float(damping)

    def solve(
        self,
        update: Callable[[np.ndarray], np.ndarray],
        initial: np.ndarray,
    ) -> FixedPointResult:
        """Run the iteration from ``initial``.

        ``update`` may return non-finite entries to signal saturation;
        it must not mutate its argument.
        """
        x = np.array(initial, dtype=float, copy=True)
        if not np.all(np.isfinite(x)):
            raise ValueError("initial state must be finite")
        residual = np.inf
        for i in range(1, self.max_iterations + 1):
            fx = np.asarray(update(x), dtype=float)
            if fx.shape != x.shape:
                raise ValueError(
                    f"update changed state shape {x.shape} -> {fx.shape}"
                )
            if not np.all(np.isfinite(fx)):
                return FixedPointResult(
                    status=FixedPointStatus.SATURATED,
                    state=x,
                    iterations=i,
                    residual=np.inf,
                )
            new = (1.0 - self.damping) * x + self.damping * fx
            residual = float(np.max(np.abs(new - x)) / (1.0 + np.max(np.abs(x))))
            x = new
            if residual < self.tol:
                return FixedPointResult(
                    status=FixedPointStatus.CONVERGED,
                    state=x,
                    iterations=i,
                    residual=residual,
                )
        return FixedPointResult(
            status=FixedPointStatus.MAX_ITERATIONS,
            state=x,
            iterations=self.max_iterations,
            residual=residual,
        )
