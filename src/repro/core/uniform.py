"""Uniform-traffic baseline model (the ``h = 0`` degenerate case).

Before this paper, analytical models of deterministic wormhole routing in
k-ary n-cubes assumed a uniform traffic distribution (the paper cites
Dally [4] and Draper & Ghosh [6] among others).  This module implements
that baseline with the same modelling machinery — M/G/1 blocking at every
channel, Dally VC multiplexing, M/G/1 source queue — for an
``n``-dimensional unidirectional k-ary n-cube.

Two uses:

* a correctness cross-check: at ``h = 0`` the hot-spot model of
  :class:`~repro.core.model.HotSpotLatencyModel` must coincide with this
  baseline for ``n = 2`` (tested in ``tests/test_model.py``);
* the "what did hot-spots change" comparisons in the examples and
  ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.equations import chained_service_profile, regular_service_profile
from repro.core.fixed_point import (
    FixedPointSolver,
    FixedPointStatus,
    solve_batch_with_fallback,
)
from repro.core.results import ModelResult, SweepPoint, SweepResult
from repro.queueing.blocking import BlockingInputs, blocking_delay, blocking_delay_raw
from repro.queueing.mg1 import mg1_waiting_time
from repro.queueing.vc_multiplexing import multiplexing_degree

__all__ = ["UniformLatencyModel"]


class UniformLatencyModel:
    """Mean-latency model for uniform traffic in a k-ary n-cube.

    Messages cross dimensions in increasing order; by symmetry every
    channel of dimension ``i`` carries rate ``lam_r = lam * (k-1)/2``
    (eq 3 with ``h = 0``).  The per-dimension entrance service times
    ``S_i`` obey

        S_{n-1,j} = j (1 + B_{n-1}) + Lm
        S_{i,j}   = j (1 + B_i) + P(later dims used | reached) * ...

    Following the 2-D hot-spot model's structure, a message entering
    dimension ``i`` either terminates there or chains into the entrance
    service time of the next *used* dimension; with uniform traffic each
    later dimension is skipped with probability ``1/k``.  The same
    ``trip_averaging`` switch as the hot-spot model selects entrance
    values or trip-length-averaged values.
    """

    def __init__(
        self,
        k: int,
        n: int,
        message_length: int,
        num_vcs: int = 2,
        *,
        trip_averaging: bool = True,
        blocking_service: "BlockingServicePolicy | str" = "transmission",
        kernel: str = "auto",
        solver: Optional[FixedPointSolver] = None,
    ) -> None:
        if k < 3:
            raise ValueError(f"radix must be >= 3, got {k}")
        if n < 1:
            raise ValueError(f"dimensions must be >= 1, got {n}")
        if message_length < 1:
            raise ValueError(f"message length must be >= 1, got {message_length}")
        if num_vcs < 2:
            raise ValueError(f"need >= 2 virtual channels, got {num_vcs}")
        self.k = int(k)
        self.n = int(n)
        self.num_nodes = self.k**self.n
        self.message_length = int(message_length)
        self.num_vcs = int(num_vcs)
        self.trip_averaging = bool(trip_averaging)
        from repro.core.model import BlockingServicePolicy, resolve_model_kernel

        if isinstance(blocking_service, str):
            blocking_service = BlockingServicePolicy(blocking_service)
        self.blocking_service = blocking_service
        # Cached policy decision: the vector kernel branches on this in
        # its fixed-point hot loop.
        self.blocking_service_is_transmission = (
            blocking_service is BlockingServicePolicy.TRANSMISSION
        )
        self.kernel = resolve_model_kernel(kernel)
        self.solver = solver or FixedPointSolver(
            tol=1e-10, max_iterations=5_000, damping=0.5
        )

    @property
    def regular_rate_factor(self) -> float:
        """Channel rate per unit generation rate: ``(k-1)/2``."""
        return (self.k - 1) / 2.0

    def _competing_service(self, entry: float) -> float:
        """Service time charged to competing traffic per the policy.

        Under uniform traffic there is a single class, so HOLDING and
        ENTRANCE coincide on the entrance value; TRANSMISSION charges the
        bandwidth occupancy ``Lm + 1``.
        """
        from repro.core.model import BlockingServicePolicy

        if self.blocking_service is BlockingServicePolicy.TRANSMISSION:
            return float(self.message_length + 1)
        return entry

    def _class_latency(self, profile: np.ndarray) -> float:
        if self.trip_averaging:
            return float(np.mean(profile[: self.k - 1]))
        return float(profile[-1])

    def _entrance_times(self, rate: float, entries: np.ndarray) -> np.ndarray:
        """One update of the per-dimension entrance service times.

        ``entries[i]`` is the previous iterate of dimension i's entrance
        service time (used as the competing traffic's service time in the
        blocking term of dimension i).
        """
        k, lm = self.k, self.message_length
        lam_r = rate * self.regular_rate_factor
        new = np.empty(self.n)
        # Walk dimensions from the last (terminates at the PE) backwards.
        next_entry: float | None = None
        for i in reversed(range(self.n)):
            b = blocking_delay(
                BlockingInputs(lam_r, 0.0, self._competing_service(float(entries[i])), 0.0),
                lm,
            )
            if not math.isfinite(b):
                return np.full(self.n, np.inf)
            if next_entry is None:
                prof = regular_service_profile(k, b, lm)
            else:
                # A message that continues past dimension i uses each later
                # dimension with probability (k-1)/k; the expected
                # continuation is the weighted mix of draining (Lm) and the
                # next dimension's entrance time.
                p_use = (k - 1.0) / k
                tail = p_use * next_entry + (1.0 - p_use) * lm
                prof = chained_service_profile(k, b, tail)
            new[i] = prof[-1]
            next_entry = self._class_latency(prof) if self.trip_averaging else prof[-1]
        return new

    # ------------------------------------------------------------------
    # Vector kernel: batched entrance times and evaluation
    # ------------------------------------------------------------------
    def _competing_service_batch(self, entries: np.ndarray):
        """Batched :meth:`_competing_service` over ``(P, n)`` entries."""
        if self.blocking_service_is_transmission:
            return float(self.message_length + 1)
        return entries

    def _profiles_batch(
        self, b: np.ndarray
    ) -> tuple:
        """Per-dimension class latencies and entrance times for a batch.

        ``b`` is the ``(P, n)`` per-dimension blocking grid.  Walks the
        dimensions from the last (terminates at the PE) backwards,
        exactly like the scalar recurrence, but with every point of the
        batch advanced per numpy step.  Returns ``(entrances (P, n),
        class_latencies (P, n))``.
        """
        k, lm, n = self.k, self.message_length, self.n
        n_points = b.shape[0]
        j = np.arange(1, k + 1, dtype=float)[None, :]
        p_use = (k - 1.0) / k
        entrances = np.empty((n_points, n))
        class_lat = np.empty((n_points, n))
        next_entry: "np.ndarray | None" = None
        for i in reversed(range(n)):
            if next_entry is None:
                tail = np.full(n_points, float(lm))
            else:
                # A message that continues past dimension i uses each
                # later dimension with probability (k-1)/k; the expected
                # continuation mixes draining (Lm) and the next
                # dimension's entrance time.
                tail = p_use * next_entry + (1.0 - p_use) * lm
            prof = j * (1.0 + b[:, i])[:, None] + tail[:, None]
            entrances[:, i] = prof[:, -1]
            if self.trip_averaging:
                class_lat[:, i] = np.mean(prof[:, : k - 1], axis=1)
            else:
                class_lat[:, i] = prof[:, -1]
            next_entry = class_lat[:, i]
        return entrances, class_lat

    def _entrance_times_batch(
        self, lam_r: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`_entrance_times`: one update for every row.

        Saturated rows carry ``inf`` (the infinite blocking delay
        propagates through the backward chain); the batched solver
        retires them.
        """
        entrances, _ = self._profiles_batch(self._blocking_batch(lam_r, states))
        return entrances

    def _blocking_batch(self, lam_r: np.ndarray, states: np.ndarray) -> np.ndarray:
        """Per-dimension blocking delays, shape ``(P, n)``.

        Under TRANSMISSION the competing service time is a constant, so
        the elementwise result is broadcast back to the full grid.
        """
        comp = self._competing_service_batch(states)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            b = blocking_delay_raw(
                lam_r[:, None], 0.0, comp, 0.0, self.message_length
            )
        return np.broadcast_to(b, (lam_r.size, self.n))

    def evaluate_batch(
        self,
        rates: "Sequence[float] | np.ndarray",
        *,
        initials: Optional[Sequence[Optional[np.ndarray]]] = None,
        chain: bool = True,
        wave: int = 4,
    ) -> List[ModelResult]:
        """Evaluate many offered loads in one batched fixed-point solve.

        Same contract as
        :meth:`repro.core.model.HotSpotLatencyModel.evaluate_batch`:
        per-point convergence/saturation masking, warm-start chaining
        along the (assumed ordered) rate axis, and a cold-start retry
        for any warm-seeded point that fails.  Zero-rate points always
        use the exact zero-load state, and ``chain=True`` replaces
        caller initials past the first wave — pass ``chain=False`` when
        the initials should drive the solve.
        """
        k, lm, vcs = self.k, self.message_length, self.num_vcs
        rates_arr = np.asarray([float(r) for r in rates], dtype=float)
        if rates_arr.size and np.any(rates_arr < 0):
            bad = float(rates_arr[rates_arr < 0][0])
            raise ValueError(f"rate must be non-negative, got {bad}")
        n_points = rates_arr.size
        cold = np.full(self.n, float(k + lm))
        states0 = np.tile(cold, (n_points, 1))
        warm = np.zeros(n_points, dtype=bool)
        if initials is not None:
            if len(initials) != n_points:
                raise ValueError(
                    f"got {len(initials)} initial states for {n_points} rates"
                )
            for p, init in enumerate(initials):
                if init is None or rates_arr[p] == 0.0:
                    continue
                init = np.asarray(init, dtype=float)
                if init.shape != cold.shape:
                    raise ValueError(
                        f"initial state has shape {init.shape}, "
                        f"expected {cold.shape}"
                    )
                states0[p] = init
                warm[p] = True

        lam_r = rates_arr * self.regular_rate_factor
        solve_rows = np.flatnonzero(rates_arr > 0.0)
        iterations = np.zeros(n_points, dtype=np.int64)
        converged = np.ones(n_points, dtype=bool)
        final_states = states0.copy()

        if solve_rows.size:
            def update(sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
                return self._entrance_times_batch(lam_r[solve_rows[idx]], sub)

            ok, states, iters = solve_batch_with_fallback(
                self.solver,
                update,
                states0[solve_rows],
                warm[solve_rows],
                cold,
                chain=chain,
                wave=wave,
            )
            iterations[solve_rows] = iters
            converged[solve_rows] = ok
            final_states[solve_rows] = states

        results: List[Optional[ModelResult]] = [None] * n_points
        agg_rows = np.flatnonzero(converged)
        if agg_rows.size:
            entries = final_states[agg_rows]
            _, class_lat = self._profiles_batch(
                self._blocking_batch(lam_r[agg_rows], entries)
            )
            # Entry weights (1/k)^i (1 - 1/k), normalised.
            p_skip = 1.0 / k
            weights = (p_skip ** np.arange(self.n)) * (1.0 - p_skip)
            network = class_lat @ weights / weights.sum()
            v_bar = multiplexing_degree(
                lam_r[agg_rows], entries[:, -1], vcs
            )
            ws = mg1_waiting_time(rates_arr[agg_rows] / vcs, network, lm)
            if self.blocking_service_is_transmission:
                util = lam_r[agg_rows] * (lm + 1.0)
            else:
                util = lam_r[agg_rows] * np.max(entries, axis=1)
            with np.errstate(invalid="ignore"):
                latency = (network + ws) * v_bar
            for row_pos, row in enumerate(agg_rows):
                if not math.isfinite(float(np.asarray(ws)[row_pos])):
                    results[row] = ModelResult(
                        rate=float(rates_arr[row]),
                        latency=math.inf,
                        saturated=True,
                        iterations=int(iterations[row]),
                    )
                    continue
                vb = float(np.asarray(v_bar)[row_pos])
                results[row] = ModelResult(
                    rate=float(rates_arr[row]),
                    latency=float(latency[row_pos]),
                    saturated=False,
                    iterations=int(iterations[row]),
                    mean_multiplexing_x=vb,
                    mean_multiplexing_hot_ring=vb,
                    mean_multiplexing_nonhot_ring=vb,
                    max_utilization=float(util[row_pos]),
                    fixed_point_state=entries[row_pos].copy(),
                )
        for p in np.flatnonzero(~converged):
            results[p] = ModelResult(
                rate=float(rates_arr[p]),
                latency=math.inf,
                saturated=True,
                iterations=int(iterations[p]),
            )
        return results  # type: ignore[return-value]

    def evaluate(
        self, rate: float, *, initial: Optional[np.ndarray] = None
    ) -> ModelResult:
        """Mean message latency at per-node rate ``rate`` (uniform traffic).

        ``initial`` warm-starts the fixed-point solve from a previous
        result's ``fixed_point_state`` (same contract as
        :meth:`repro.core.model.HotSpotLatencyModel.evaluate`): a
        non-converging warm start falls back to the cold start, so a
        warm start can only improve convergence — it never reports
        saturated a load the cold solve resolves, though it may resolve
        a borderline load whose cold solve only ran out of budget.
        """
        if self.kernel == "vector":
            return self.evaluate_batch(
                [rate],
                initials=None if initial is None else [initial],
                chain=False,
            )[0]
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        k, lm = self.k, self.message_length
        lam_r = rate * self.regular_rate_factor
        init = np.full(self.n, float(k + lm))
        if initial is not None:
            initial = np.asarray(initial, dtype=float)
            if initial.shape != init.shape:
                raise ValueError(
                    f"initial state has shape {initial.shape}, expected {init.shape}"
                )
        if rate == 0.0:
            entries = init
            iterations = 0
        else:
            result = self.solver.solve(
                lambda s: self._entrance_times(rate, s),
                init if initial is None else initial,
            )
            iterations = result.iterations
            if result.status is not FixedPointStatus.CONVERGED and initial is not None:
                result = self.solver.solve(
                    lambda s: self._entrance_times(rate, s), init
                )
                iterations += result.iterations
            if result.status is not FixedPointStatus.CONVERGED:
                return ModelResult(
                    rate=rate,
                    latency=math.inf,
                    saturated=True,
                    iterations=iterations,
                )
            entries = result.state

        # Network latency: a message enters at its first non-matching
        # dimension (weight (1/k)^i (1-1/k)); each entry dimension's
        # class latency chains into the next dimension's class latency
        # (entrance value, or trip-averaged value in averaged mode) —
        # the same convention _entrance_times uses.
        p_skip = 1.0 / k
        class_lat = [0.0] * self.n
        next_latency: float | None = None
        for i in reversed(range(self.n)):
            b = blocking_delay(
                BlockingInputs(lam_r, 0.0, self._competing_service(float(entries[i])), 0.0),
                lm,
            )
            if next_latency is None:
                prof = regular_service_profile(k, b, lm)
            else:
                p_use = (k - 1.0) / k
                tail = p_use * next_latency + (1.0 - p_use) * lm
                prof = chained_service_profile(k, b, tail)
            class_lat[i] = self._class_latency(prof)
            next_latency = class_lat[i]
        network = 0.0
        total_weight = 0.0
        for i in range(self.n):
            weight = (p_skip**i) * (1.0 - p_skip)
            network += weight * class_lat[i]
            total_weight += weight
        network /= total_weight

        # V-bar uses the unchained single-dimension entrance time (the
        # last dimension's entry, k(1+B)+Lm) — the convention the 2-D
        # hot-spot model inherits from the paper's eqs 36-37.
        v_bar = multiplexing_degree(lam_r, float(entries[-1]), self.num_vcs)
        ws = mg1_waiting_time(rate / self.num_vcs, network, lm)
        if not math.isfinite(ws):
            return ModelResult(
                rate=rate, latency=math.inf, saturated=True, iterations=iterations
            )
        latency = (network + ws) * v_bar
        return ModelResult(
            rate=rate,
            latency=float(latency),
            saturated=False,
            iterations=iterations,
            mean_multiplexing_x=v_bar,
            mean_multiplexing_hot_ring=v_bar,
            mean_multiplexing_nonhot_ring=v_bar,
            max_utilization=lam_r * self._competing_service(float(np.max(entries))),
            fixed_point_state=np.array(entries, dtype=float, copy=True),
        )

    def saturation_rate(
        self, lo: float = 0.0, hi: float = 0.1, tol: float = 1e-9
    ) -> float:
        """Smallest rate at which the model saturates.

        Scalar kernel: bisection.  Vector kernel: batched bracketing
        (a probe grid per round as one solve), same ``tol`` contract.
        """
        if self.kernel == "vector":
            from repro.core.model import batched_saturation_search

            return batched_saturation_search(self, lo, hi, tol)
        if not self.evaluate(hi).saturated:
            raise ValueError(f"upper bound {hi} does not saturate the model")
        lo_rate, hi_rate = lo, hi
        while hi_rate - lo_rate > tol * max(1.0, hi_rate):
            mid = 0.5 * (lo_rate + hi_rate)
            if self.evaluate(mid).saturated:
                hi_rate = mid
            else:
                lo_rate = mid
        return hi_rate

    def sweep(
        self, rates, label: str = "uniform-model", *, warm_start: bool = True
    ) -> SweepResult:
        """Evaluate over a rate grid, warm-starting adjacent solves.

        The vector kernel runs the grid as one batched solve with
        warm-start chaining along the rate axis; the scalar kernel
        chains sequentially.
        """
        out = SweepResult(label=label)
        if self.kernel == "vector":
            for res in self.evaluate_batch(rates, chain=warm_start):
                out.points.append(
                    SweepPoint(
                        rate=res.rate,
                        latency=res.latency,
                        saturated=res.saturated,
                        iterations=res.iterations,
                    )
                )
            return out
        state: Optional[np.ndarray] = None
        for r in rates:
            res = self.evaluate(float(r), initial=state if warm_start else None)
            state = res.fixed_point_state
            out.points.append(
                SweepPoint(
                    rate=float(r),
                    latency=res.latency,
                    saturated=res.saturated,
                    iterations=res.iterations,
                )
            )
        return out
