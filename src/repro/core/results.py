"""Result types returned by the analytical models."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.resilience import PointFailure

__all__ = [
    "LatencyBreakdown",
    "ModelResult",
    "PointFailure",
    "SweepPoint",
    "SweepResult",
]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-class decomposition of the mean message latency.

    All values are in cycles.  The regular components already include
    their path probability (the paper's eq 11 convention), so
    ``regular_total = regular_hot_ring + regular_nonhot_ring +
    regular_enter_x``.
    """

    regular_hot_ring: float
    regular_nonhot_ring: float
    regular_enter_x: float
    hot_from_hot_ring: float
    hot_from_x: float
    regular_source_wait: float
    regular_network_latency: float

    @property
    def regular_total(self) -> float:
        """Mean latency of regular messages, ``S_r`` of eq (11)."""
        return (
            self.regular_hot_ring
            + self.regular_nonhot_ring
            + self.regular_enter_x
        )

    @property
    def hot_total(self) -> float:
        """Mean latency of hot-spot messages, ``S_h`` of eq (21)."""
        return self.hot_from_hot_ring + self.hot_from_x


@dataclass(frozen=True)
class ModelResult:
    """Outcome of one analytical evaluation at a fixed offered load.

    Attributes
    ----------
    rate:
        Per-node generation rate (messages/cycle).
    latency:
        Mean message latency in cycles (eq 10); ``math.inf`` when
        saturated.
    saturated:
        The offered load exceeded the model's saturation point (no
        finite steady state exists / the iteration diverged).
    iterations:
        Fixed-point iterations used.
    breakdown:
        Per-class latency decomposition; ``None`` when saturated.
    mean_multiplexing_x / _hot_ring / _nonhot_ring:
        Average virtual-channel multiplexing degrees (eqs 35-37).
    max_utilization:
        Largest channel utilisation seen by the converged solution —
        useful for locating the saturation point.
    fixed_point_state:
        The converged solver state vector (``None`` when saturated or
        when the model needed no solve).  Pass it as ``initial`` to a
        subsequent ``evaluate`` at a nearby rate to warm-start the
        fixed-point iteration — the mechanism behind
        :class:`~repro.experiments.sweep.SweepEngine`'s fast sweeps.
    """

    rate: float
    latency: float
    saturated: bool
    iterations: int
    breakdown: Optional[LatencyBreakdown] = None
    mean_multiplexing_x: float = float("nan")
    mean_multiplexing_hot_ring: float = float("nan")
    mean_multiplexing_nonhot_ring: float = float("nan")
    max_utilization: float = float("nan")
    fixed_point_state: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def finite(self) -> bool:
        return not self.saturated and math.isfinite(self.latency)


@dataclass(frozen=True)
class SweepPoint:
    """One (rate, latency) sample of a load sweep.

    ``iterations`` records the fixed-point iterations the analytical
    model spent on the point (0 for simulated points) — the quantity
    warm-started sweeps minimise.
    """

    rate: float
    latency: float
    saturated: bool
    iterations: int = 0


@dataclass
class SweepResult:
    """A latency-vs-load curve produced by a model or simulator.

    ``failures`` records grid points that could not be computed after
    exhausting the engine's retry budget (worker crash, per-point
    timeout, or a raised exception) as structured
    :class:`~repro.resilience.PointFailure` records — a failed point is
    skipped in ``points`` (the curve keeps its completed samples)
    instead of aborting the whole sweep.  Fault-free sweeps always have
    an empty ``failures`` list, so result equality is unchanged.
    """

    label: str
    points: List[SweepPoint] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def rates(self) -> List[float]:
        return [p.rate for p in self.points]

    @property
    def latencies(self) -> List[float]:
        return [p.latency for p in self.points]

    @property
    def total_iterations(self) -> int:
        """Fixed-point iterations summed over the curve's points."""
        return sum(p.iterations for p in self.points)

    def finite_points(self) -> List[SweepPoint]:
        return [p for p in self.points if not p.saturated and math.isfinite(p.latency)]

    def saturation_rate(self) -> Optional[float]:
        """Smallest sampled rate that saturated, or ``None``."""
        for p in self.points:
            if p.saturated:
                return p.rate
        return None
