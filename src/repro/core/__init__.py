"""The paper's analytical latency model and baselines.

* :mod:`~repro.core.equations` — pure-function forms of the paper's
  equations (path probabilities, service-time recurrences).
* :mod:`~repro.core.fixed_point` — damped fixed-point solver used to
  resolve the interdependencies between model variables (paper §3:
  "the different variables of the model are computed using iterative
  techniques").
* :mod:`~repro.core.model` — :class:`HotSpotLatencyModel`, the paper's
  contribution (eqs 1-37) for the 2-D unidirectional torus.
* :mod:`~repro.core.uniform` — uniform-traffic baseline model (the
  ``h = 0`` degenerate case, cross-checking against the classic
  deterministic-routing models the paper builds on).
* :mod:`~repro.core.ndim` — the n-dimensional generalisation the paper
  sketches ("can be easily extended").
"""

from repro.core.model import BlockingServicePolicy, HotSpotLatencyModel
from repro.core.results import LatencyBreakdown, ModelResult, SweepPoint, SweepResult
from repro.core.uniform import UniformLatencyModel
from repro.core.ndim import NDimHotSpotModel
from repro.core.hypercube import HypercubeHotSpotModel
from repro.core.fixed_point import FixedPointSolver, FixedPointStatus

__all__ = [
    "HotSpotLatencyModel",
    "BlockingServicePolicy",
    "HypercubeHotSpotModel",
    "UniformLatencyModel",
    "NDimHotSpotModel",
    "ModelResult",
    "LatencyBreakdown",
    "SweepPoint",
    "SweepResult",
    "FixedPointSolver",
    "FixedPointStatus",
]
