"""The paper's analytical hot-spot latency model (eqs 1-37).

:class:`HotSpotLatencyModel` predicts the mean message latency of a
``k x k`` unidirectional torus with deterministic (x-then-y) wormhole
routing, ``V`` virtual channels per physical channel, fixed ``Lm``-flit
messages, Poisson sources of rate ``lambda`` messages/cycle per node and
Pfister–Norton hot-spot traffic with fraction ``h``.

Solution structure
------------------
The model variables — the dimension-entrance service times of the three
regular path families and the position-dependent hot-spot service times
— are mutually dependent through the blocking delays (eqs 16-20, 23, 25
all contain ``B(...)`` terms that reference the entrance service times).
They are resolved by damped fixed-point iteration
(:class:`~repro.core.fixed_point.FixedPointSolver`), after which the
latency aggregation (eqs 10-15, 21-24, 31-32, 36-37) is evaluated once.

The ``trip_averaging`` switch selects between averaging the
per-position recurrence values over the true uniform trip-length
distribution (the default — consistent with the paper's plotted
light-load agreement with simulation) and the literal text's reading
where every message of a class is charged the *entrance* service time
``S_{.,k}`` of the full k-channel ring pipeline (see DESIGN.md §4).
Both variants use the same fixed point; only the aggregation differs.

Model kernels
-------------
Two interchangeable implementations of the hot path exist, selected by
the ``kernel`` constructor argument / the ``REPRO_MODEL_KERNEL``
environment variable (mirroring the simulator's ``REPRO_ENGINE``):

``vector`` (default)
    Array-native: the per-iteration blocking grids, service-time
    recurrences and the latency aggregation are whole-grid numpy
    expressions, and :meth:`HotSpotLatencyModel.evaluate_batch` solves
    *many* offered loads in one batched fixed-point sweep
    (:meth:`~repro.core.fixed_point.FixedPointSolver.solve_batch`) with
    per-point convergence/saturation masking and warm-start chaining
    along the rate axis — a whole figure panel is one solve.
``scalar``
    The original per-channel Python loops, kept as the reference
    oracle; ``tests/test_model_kernel_equivalence.py`` pins the two
    kernels against each other.
"""

from __future__ import annotations

import enum
import math
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.equations import (
    PathProbabilities,
    chained_service_profile,
    hot_x_service_profile,
    hot_y_service_profile,
    regular_service_profile,
)
from repro.core.fixed_point import (
    FixedPointSolver,
    FixedPointStatus,
    solve_batch_with_fallback,
)
from repro.core.results import LatencyBreakdown, ModelResult, SweepPoint, SweepResult
from repro.queueing.blocking import BlockingInputs, blocking_delay, blocking_delay_raw
from repro.queueing.mg1 import mg1_waiting_time
from repro.queueing.vc_multiplexing import multiplexing_degree
from repro.traffic.rates import HotSpotRates

__all__ = [
    "HotSpotLatencyModel",
    "BlockingServicePolicy",
    "resolve_model_kernel",
    "batched_saturation_search",
]

_MODEL_KERNELS = ("auto", "scalar", "vector")


def resolve_model_kernel(requested: str = "auto") -> str:
    """Resolve the analytical-model kernel: ``scalar`` or ``vector``.

    ``requested`` (normally a constructor argument) wins over the
    ``REPRO_MODEL_KERNEL`` environment variable; ``auto`` defers to the
    environment and defaults to ``vector``.  Raises :class:`ValueError`
    naming the offending source on anything else.
    """
    req = (requested or "auto").strip().lower() or "auto"
    if req not in _MODEL_KERNELS:
        raise ValueError(
            f"model kernel must be one of {_MODEL_KERNELS}, got {requested!r}"
        )
    if req != "auto":
        return req
    env = os.environ.get("REPRO_MODEL_KERNEL", "auto").strip().lower() or "auto"
    if env not in _MODEL_KERNELS:
        raise ValueError(
            f"REPRO_MODEL_KERNEL must be one of {_MODEL_KERNELS}, got {env!r}"
        )
    return "vector" if env == "auto" else env


def batched_saturation_search(model, lo: float, hi: float, tol: float, probes: int = 12) -> float:
    """Bracketing search for the smallest saturated rate, in batches.

    Each round evaluates ``probes`` interior rates of the current
    bracket as one ``evaluate_batch`` call and narrows the bracket to
    the first saturated probe, shrinking it ``probes + 1``-fold — the
    multi-point replacement for scalar bisection, with the same
    contract: returns the saturated end of a final bracket no wider
    than ``tol * max(1, hi)``.
    """
    if not model.evaluate(hi).saturated:
        raise ValueError(f"upper bound {hi} does not saturate the model")
    lo_rate, hi_rate = lo, hi
    while hi_rate - lo_rate > tol * max(1.0, hi_rate):
        grid = np.linspace(lo_rate, hi_rate, probes + 2)[1:-1]
        flags = [r.saturated for r in model.evaluate_batch(grid, chain=False)]
        first = next((i for i, s in enumerate(flags) if s), None)
        if first is None:
            lo_rate = float(grid[-1])
        else:
            hi_rate = float(grid[first])
            if first > 0:
                lo_rate = float(grid[first - 1])
    return hi_rate


class BlockingServicePolicy(enum.Enum):
    """Which service time a channel's *competing* traffic is charged in
    the blocking terms (eqs 26-30).

    The paper's prose charges each class "the mean service time expected"
    at the channel, but reading that as the full recurrence value
    ``S_{.,j}`` (own blocking delay included) makes the fixed point
    diverge at roughly half the load the paper's own validation figures
    reach — the blocking delay then feeds its own utilisation.  The three
    defensible readings, ordered by where they place saturation:

    ``TRANSMISSION`` (default)
        Each message occupies the channel's *bandwidth* for its
        transmission time ``Lm + 1`` (header + body at one flit/cycle).
        A worm stalled downstream holds a virtual channel but leaves the
        physical bandwidth to other VCs, so this is the physically
        correct stability boundary: channels saturate when the flit
        throughput demand reaches one — which is exactly where the
        paper's figures saturate (e.g. ``lam*h*k(k-1)*Lm ~ 1``).
    ``HOLDING``
        Each message occupies the channel from header acquisition until
        its tail crosses: ``1 + S_{.,j-1}`` (downstream delays included,
        own acquisition wait excluded).  Captures virtual-channel
        exhaustion ("tree saturation"), so it saturates earlier —
        a conservative bound.
    ``ENTRANCE``
        The literal recurrence values (own blocking included) —
        reproduced for completeness and for the ablation benchmark; the
        self-reference makes this the most pessimistic reading.
    """

    TRANSMISSION = "transmission"
    HOLDING = "holding"
    ENTRANCE = "entrance"


@dataclass(frozen=True)
class _FixedPointView:
    """Typed view over the solver's flat state vector."""

    s_x_entry: float
    s_hy_entry: float
    s_hybar_entry: float
    s_hot_y: np.ndarray  # shape (k-1,), index j-1
    s_hot_x: np.ndarray  # shape (k-1, k), index (j-1, t-1)

    @staticmethod
    def unpack(state: np.ndarray, k: int) -> "_FixedPointView":
        hot_y = state[3 : 3 + (k - 1)]
        hot_x = state[3 + (k - 1) :].reshape(k - 1, k)
        return _FixedPointView(
            s_x_entry=float(state[0]),
            s_hy_entry=float(state[1]),
            s_hybar_entry=float(state[2]),
            s_hot_y=hot_y,
            s_hot_x=hot_x,
        )

    @staticmethod
    def pack(
        s_x_entry: float,
        s_hy_entry: float,
        s_hybar_entry: float,
        s_hot_y: np.ndarray,
        s_hot_x: np.ndarray,
    ) -> np.ndarray:
        return np.concatenate(
            [
                np.array([s_x_entry, s_hy_entry, s_hybar_entry]),
                np.asarray(s_hot_y, dtype=float).ravel(),
                np.asarray(s_hot_x, dtype=float).ravel(),
            ]
        )


class HotSpotLatencyModel:
    """Mean-latency model for hot-spot traffic in a 2-D unidirectional torus.

    Parameters
    ----------
    k:
        Radix; the network is the ``k x k`` torus with ``N = k**2`` nodes
        (the paper validates with ``k = 16``).
    message_length:
        Message length ``Lm`` in flits (one flit crosses one channel per
        cycle).
    hotspot_fraction:
        Pfister–Norton hot-spot probability ``h``.
    num_vcs:
        Virtual channels per physical channel, ``V >= 2`` (deadlock
        freedom on the torus requires at least two; assumption vi).
    trip_averaging:
        ``True`` (default): class latencies average the service-time
        recurrence over the uniform trip-length distribution — the
        reading consistent with the paper's plotted light-load agreement
        with simulation.  ``False``: the literal text's dimension-
        entrance value ``S_{.,k}`` (a constant ~``k - k̄`` overestimate;
        kept for the ablation benchmark).
    kernel:
        ``"vector"`` (default via ``auto``): whole-grid numpy equations
        and batched multi-rate solves.  ``"scalar"``: the original
        per-channel loop implementation, kept as the reference oracle.
        ``"auto"`` follows ``REPRO_MODEL_KERNEL``.
    solver:
        Optional custom fixed-point solver.

    Examples
    --------
    >>> model = HotSpotLatencyModel(k=16, message_length=32,
    ...                             hotspot_fraction=0.2)
    >>> r = model.evaluate(0.0003)
    >>> r.saturated
    False
    >>> r.latency > 32
    True
    """

    def __init__(
        self,
        k: int,
        message_length: int,
        hotspot_fraction: float,
        num_vcs: int = 2,
        *,
        trip_averaging: bool = True,
        blocking_service: BlockingServicePolicy | str = BlockingServicePolicy.TRANSMISSION,
        kernel: str = "auto",
        solver: Optional[FixedPointSolver] = None,
    ) -> None:
        if k < 3:
            raise ValueError(f"radix must be >= 3 for the 2-D model, got {k}")
        if message_length < 1:
            raise ValueError(f"message length must be >= 1, got {message_length}")
        if not 0.0 <= hotspot_fraction < 1.0:
            raise ValueError(
                f"hot-spot fraction must be in [0, 1), got {hotspot_fraction}"
            )
        if num_vcs < 2:
            raise ValueError(
                f"deadlock freedom on the torus needs >= 2 VCs, got {num_vcs}"
            )
        self.k = int(k)
        self.n = 2
        self.num_nodes = self.k**2
        self.message_length = int(message_length)
        self.h = float(hotspot_fraction)
        self.num_vcs = int(num_vcs)
        self.trip_averaging = bool(trip_averaging)
        if isinstance(blocking_service, str):
            blocking_service = BlockingServicePolicy(blocking_service)
        self.blocking_service = blocking_service
        self.kernel = resolve_model_kernel(kernel)
        self.solver = solver or FixedPointSolver(
            tol=1e-10, max_iterations=5_000, damping=0.5
        )
        self.probabilities = PathProbabilities(k=self.k)
        # Constant competing-service grids of the TRANSMISSION policy
        # (position k carries no hot traffic), shared by every batched
        # update of the vector kernel.
        tx = float(self.message_length + 1)
        self._tx_comp_y = np.full(self.k, tx)
        self._tx_comp_y[self.k - 1] = 0.0
        self._tx_comp_x = np.full((self.k, self.k), tx)
        self._tx_comp_x[self.k - 1, :] = 0.0
        # The same grids in the packed channel layout of the batched
        # update: [hybar | hy positions 1..k | x grid (k, k) row-major].
        self._tx_comp_packed = np.concatenate(
            [[0.0], self._tx_comp_y, self._tx_comp_x.ravel()]
        )

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------
    def _hot_holding_times(
        self, s_hot_y: np.ndarray, s_hot_x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Channel-holding times of hot-spot messages (see DESIGN.md §4).

        A message holds a channel from header acquisition until its tail
        crosses: the holding time is its remaining service *after*
        acquiring the channel, ``S_{.,j} - B_j = 1 + S_{.,j-1}`` — the
        wait to acquire the channel itself is spent upstream and must not
        be charged to this channel's utilisation.  Feeding the full
        ``S_{.,j}`` (own blocking included) into eq (27) instead creates
        a self-referential blow-up that saturates the model at roughly
        half the load the paper's own figures reach, so the holding time
        is the reconstruction consistent with the published curves.

        Returns hold times padded to position ``k`` (rate there is zero).
        """
        k, lm = self.k, self.message_length
        hold_y = np.empty(k)
        hold_y[0] = 1.0 + lm
        hold_y[1 : k - 1] = 1.0 + s_hot_y[: k - 2]
        hold_y[k - 1] = 0.0  # position k carries no hot traffic
        hold_x = np.empty((k, k))
        hold_x[0, : k - 1] = 1.0 + s_hot_y  # chain into y at distance t
        hold_x[0, k - 1] = 1.0 + lm  # hot row: delivers
        hold_x[1 : k - 1, :] = 1.0 + s_hot_x[: k - 2, :]
        hold_x[k - 1, :] = 0.0  # position k carries no hot traffic
        return hold_y, hold_x

    def _competing_services(
        self, v: "_FixedPointView"
    ) -> Tuple[float, float, float, np.ndarray, np.ndarray]:
        """Service times charged to competing traffic in blocking terms.

        Returns ``(reg_x, reg_hy, reg_hybar, hot_y[k], hot_x[k, k])``
        according to :class:`BlockingServicePolicy`.
        """
        k, lm = self.k, self.message_length
        policy = self.blocking_service
        if policy is BlockingServicePolicy.TRANSMISSION:
            tx = float(lm + 1)
            hot_y = np.full(k, tx)
            hot_y[k - 1] = 0.0  # no hot traffic leaves the hot node
            hot_x = np.full((k, k), tx)
            hot_x[k - 1, :] = 0.0
            return tx, tx, tx, hot_y, hot_x
        if policy is BlockingServicePolicy.HOLDING:
            hold_y, hold_x = self._hot_holding_times(v.s_hot_y, v.s_hot_x)
            return v.s_x_entry, v.s_hy_entry, v.s_hybar_entry, hold_y, hold_x
        # ENTRANCE: the literal recurrence values.
        hot_y = np.append(v.s_hot_y, 0.0)
        hot_x = np.vstack([v.s_hot_x, np.zeros(k)])
        return v.s_x_entry, v.s_hy_entry, v.s_hybar_entry, hot_y, hot_x

    def _zero_load_state(self) -> np.ndarray:
        k, lm = self.k, self.message_length
        prof = regular_service_profile(k, 0.0, lm)
        hot_y = hot_y_service_profile(k, np.zeros(k - 1), lm)
        hot_x = hot_x_service_profile(k, np.zeros((k - 1, k)), hot_y, lm)
        return _FixedPointView.pack(prof[-1], prof[-1], prof[-1], hot_y, hot_x)

    def _update(self, rates: HotSpotRates, state: np.ndarray) -> np.ndarray:
        k, lm = self.k, self.message_length
        v = _FixedPointView.unpack(state, k)
        lam_r = rates.channel.regular_rate
        hot_x_rates = rates.hot_rates_x()  # index j-1, j = 1..k (j=k entry 0)
        hot_y_rates = rates.hot_rates_y()

        # Competing-traffic service times per the blocking policy.
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)

        # Eq (16): non-hot y-rings carry only regular traffic.
        b_hybar = blocking_delay(BlockingInputs(lam_r, 0.0, reg_hybar, 0.0), lm)
        # Eq (17): hot-ring blocking averaged over the k positions.
        b_hy_terms = [
            blocking_delay(
                BlockingInputs(
                    lam_r, float(hot_y_rates[l]), reg_hy, float(comp_y[l])
                ),
                lm,
            )
            for l in range(k)
        ]
        b_hy = float(np.mean(b_hy_terms))
        # Eqs (18-20): x-channel blocking averaged over the k x k
        # (ring t, position l) grid.
        b_x_terms = np.empty((k, k))  # [l, t]
        for l in range(k):
            for t in range(k):
                b_x_terms[l, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[l]),
                        reg_x,
                        float(comp_x[l, t]),
                    ),
                    lm,
                )
        b_x = float(np.mean(b_x_terms))

        if not (math.isfinite(b_hybar) and math.isfinite(b_hy) and math.isfinite(b_x)):
            return np.full_like(state, np.inf)

        prof_x = regular_service_profile(k, b_x, lm)
        prof_hy = regular_service_profile(k, b_hy, lm)
        prof_hybar = regular_service_profile(k, b_hybar, lm)

        # Eq (23): hot messages in the hot ring see position-dependent
        # blocking.
        b_hot_y = np.array(
            [
                blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_y_rates[j]),
                        reg_hy,
                        float(comp_y[j]),
                    ),
                    lm,
                )
                for j in range(k - 1)
            ]
        )
        # Eq (25): per (j, t) blocking for hot messages crossing x.
        b_hot_x = np.empty((k - 1, k))
        for j in range(k - 1):
            for t in range(k):
                b_hot_x[j, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[j]),
                        reg_x,
                        float(comp_x[j, t]),
                    ),
                    lm,
                )
        if not (np.all(np.isfinite(b_hot_y)) and np.all(np.isfinite(b_hot_x))):
            return np.full_like(state, np.inf)

        new_hot_y = hot_y_service_profile(k, b_hot_y, lm)
        new_hot_x = hot_x_service_profile(k, b_hot_x, new_hot_y, lm)

        return _FixedPointView.pack(
            prof_x[-1], prof_hy[-1], prof_hybar[-1], new_hot_y, new_hot_x
        )

    # ------------------------------------------------------------------
    # Vector kernel: whole-grid equations over a (points, ...) batch
    # ------------------------------------------------------------------
    def _batch_rates(
        self, rates: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-point channel rates (eqs 3, 6, 7) for a rate batch.

        Returns ``(lam_r (P,), hot_x (P, k), hot_y (P, k))`` — the same
        values (to the bit) as :class:`~repro.traffic.rates.HotSpotRates`
        produces per point.
        """
        k, h = self.k, self.h
        j = np.arange(1, k + 1, dtype=float)
        lam_r = rates * (1.0 - h) * ((k - 1) / 2.0)
        scale = (self.num_nodes * rates * h)[:, None]
        hot_x = scale * ((k - j) / self.num_nodes)[None, :]
        hot_y = scale * (k * (k - j) / self.num_nodes)[None, :]
        return lam_r, hot_x, hot_y

    @staticmethod
    def _unpack_batch(
        states: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Views ``(s_x, s_hy, s_hybar, s_hot_y, s_hot_x)`` of a batch."""
        n_points = states.shape[0]
        return (
            states[:, 0],
            states[:, 1],
            states[:, 2],
            states[:, 3 : 3 + (k - 1)],
            states[:, 3 + (k - 1) :].reshape(n_points, k - 1, k),
        )

    def _hot_holding_times_batch(
        self, s_hot_y: np.ndarray, s_hot_x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_hot_holding_times` — shapes (P, k), (P, k, k)."""
        k, lm = self.k, self.message_length
        n_points = s_hot_y.shape[0]
        hold_y = np.empty((n_points, k))
        hold_y[:, 0] = 1.0 + lm
        hold_y[:, 1 : k - 1] = 1.0 + s_hot_y[:, : k - 2]
        hold_y[:, k - 1] = 0.0
        hold_x = np.empty((n_points, k, k))
        hold_x[:, 0, : k - 1] = 1.0 + s_hot_y
        hold_x[:, 0, k - 1] = 1.0 + lm
        hold_x[:, 1 : k - 1, :] = 1.0 + s_hot_x[:, : k - 2, :]
        hold_x[:, k - 1, :] = 0.0
        return hold_y, hold_x

    def _packed_gam(self, hot_x_rates: np.ndarray, hot_y_rates: np.ndarray) -> np.ndarray:
        """Competing (hot) rates in the packed channel layout, per point.

        Layout ``[hybar | hy 1..k | x (ring, position) row-major]`` —
        one column per channel family position, so a single elementwise
        :func:`blocking_delay_raw` call covers every blocking term of an
        update.  Rate-dependent only, so computed once per solve.
        """
        n_points = hot_x_rates.shape[0]
        return np.concatenate(
            [
                np.zeros((n_points, 1)),
                hot_y_rates,
                np.repeat(hot_x_rates, self.k, axis=1),
            ],
            axis=1,
        )

    def _packed_competing_services(
        self, states: np.ndarray, holding: Optional[Tuple[np.ndarray, np.ndarray]] = None
    ) -> Tuple:
        """Batched :meth:`_competing_services` in the packed layout.

        Returns ``(s_lam, s_gam)`` broadcastable against the packed
        ``(P, 1 + k + k^2)`` channel grid — the single batched
        representation of the per-policy competing services, shared by
        the update loop and the aggregation.  ``holding`` passes
        already-computed ``(hold_y, hold_x)`` grids so callers that need
        them anyway (the aggregation) don't build them twice.
        """
        k = self.k
        if self.blocking_service is BlockingServicePolicy.TRANSMISSION:
            return float(self.message_length + 1), self._tx_comp_packed
        n_points = states.shape[0]
        s_x, s_hy, s_hybar, s_hot_y, s_hot_x = self._unpack_batch(states, k)
        if self.blocking_service is BlockingServicePolicy.HOLDING:
            hold_y, hold_x = (
                holding
                if holding is not None
                else self._hot_holding_times_batch(s_hot_y, s_hot_x)
            )
            comp = np.concatenate(
                [np.zeros((n_points, 1)), hold_y, hold_x.reshape(n_points, -1)],
                axis=1,
            )
        else:  # ENTRANCE: the literal recurrence values.
            comp = np.zeros((n_points, 1 + k + k * k))
            comp[:, 1:k] = s_hot_y
            comp[:, 1 + k :] = np.concatenate(
                [s_hot_x, np.zeros((n_points, 1, k))], axis=1
            ).reshape(n_points, -1)
        s_lam = np.concatenate(
            [
                s_hybar[:, None],
                np.broadcast_to(s_hy[:, None], (n_points, k)),
                np.broadcast_to(s_x[:, None], (n_points, k * k)),
            ],
            axis=1,
        )
        return s_lam, comp

    def _update_batch(
        self,
        states: np.ndarray,
        lam_r: np.ndarray,
        gam_all: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`_update`: one fixed-point step for every row.

        All blocking terms of an update — eqs 16-20, 23 and 25 across
        every channel family and position — evaluate as *one*
        elementwise :func:`blocking_delay_raw` call on the packed
        ``(P, 1 + k + k^2)`` channel grid (``gam_all`` from
        :meth:`_packed_gam`).  Saturated rows carry ``inf`` entries (an
        infinite blocking delay propagates through every sum), which
        the batched solver retires — no separate finiteness pass is
        needed because no operation here can turn ``inf`` into ``nan``.
        """
        k, lm = self.k, self.message_length
        n_points = states.shape[0]
        s_lam, s_gam = self._packed_competing_services(states)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            b_all = blocking_delay_raw(lam_r[:, None], gam_all, s_lam, s_gam, lm)
        b_hy_terms = b_all[:, 1 : 1 + k]
        b_x_flat = b_all[:, 1 + k :]
        b_hybar = b_all[:, 0]
        b_hy = b_hy_terms.mean(axis=1)
        b_x = b_x_flat.mean(axis=1)

        # Eqs (23) and (25): the position-dependent blocking of the hot
        # classes at positions 1..k-1 coincides with the per-position
        # regular terms (same rates, same competing services), so the
        # grids are slices — the scalar oracle recomputes them instead.
        b_hot_y = b_hy_terms[:, : k - 1]
        b_hot_x = b_x_flat.reshape(n_points, k, k)[:, : k - 1, :]

        out = np.empty((n_points, states.shape[1]))
        # Entrance values S_{.,k} = k (1 + B) + Lm of the regular classes.
        out[:, 0] = k * (1.0 + b_x) + lm
        out[:, 1] = k * (1.0 + b_hy) + lm
        out[:, 2] = k * (1.0 + b_hybar) + lm
        # Position-dependent recurrences (eqs 23, 25) as cumulative sums:
        # S_j = sum_{i<=j} (1 + B_i) + tail.
        new_hot_y = np.cumsum(1.0 + b_hot_y, axis=1) + lm
        out[:, 3 : 3 + (k - 1)] = new_hot_y
        tail = np.empty((n_points, k))
        tail[:, : k - 1] = new_hot_y
        tail[:, k - 1] = lm
        new_hot_x = np.cumsum(1.0 + b_hot_x, axis=1) + tail[:, None, :]
        out[:, 3 + (k - 1) :] = new_hot_x.reshape(n_points, -1)
        return out

    def _channel_multiplexing_batch(
        self, lam, gam, s_lam, s_gam
    ) -> np.ndarray:
        """Batched :meth:`_channel_multiplexing` over broadcast grids."""
        total = np.asarray(lam + gam)
        with np.errstate(divide="ignore", invalid="ignore"):
            s_bar = (lam * s_lam + gam * s_gam) / np.where(total == 0.0, 1.0, total)
        degree = multiplexing_degree(total, s_bar, self.num_vcs)
        return np.where(total == 0.0, 1.0, degree)

    def _aggregate_batch(
        self,
        rates: np.ndarray,
        lam_r: np.ndarray,
        hot_x_rates: np.ndarray,
        hot_y_rates: np.ndarray,
        gam_all: np.ndarray,
        states: np.ndarray,
        iterations: np.ndarray,
    ) -> List[ModelResult]:
        """Batched latency aggregation (eqs 10-15, 21-24, 31-37).

        ``states`` rows must be converged fixed points; rows whose
        source-queue waits diverge still come back saturated, exactly
        like the scalar path.  The converged blocking delays are
        recomputed once on the same packed channel grid the update loop
        uses (the state stores only entrance values for the regular
        classes).
        """
        k, lm, h, vcs = self.k, self.message_length, self.h, self.num_vcs
        n_points = states.shape[0]
        probs = self.probabilities
        s_x, s_hy, s_hybar, s_hot_y, s_hot_x = self._unpack_batch(states, k)

        hold_y, hold_x = self._hot_holding_times_batch(s_hot_y, s_hot_x)
        s_lam_packed, comp_packed = self._packed_competing_services(
            states, holding=(hold_y, hold_x)
        )
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            b_all = blocking_delay_raw(
                lam_r[:, None], gam_all, s_lam_packed, comp_packed, lm
            )
        b_hybar = b_all[:, 0]
        b_hy = b_all[:, 1 : 1 + k].mean(axis=1)
        b_x = b_all[:, 1 + k :].mean(axis=1)

        # Full regular service profiles S_{.,1..k} and class latencies.
        j = np.arange(1, k + 1, dtype=float)[None, :]
        prof_x = j * (1.0 + b_x)[:, None] + lm
        prof_hy = j * (1.0 + b_hy)[:, None] + lm
        prof_hybar = j * (1.0 + b_hybar)[:, None] + lm
        s_hy_latency = self._class_latency_batch(prof_hy)
        s_hybar_latency = self._class_latency_batch(prof_hybar)
        prof_xhy = j * (1.0 + b_x)[:, None] + s_hy_latency[:, None]
        prof_xhybar = j * (1.0 + b_x)[:, None] + s_hybar_latency[:, None]
        s_x_latency = self._class_latency_batch(prof_x)
        s_xhy_latency = self._class_latency_batch(prof_xhy)
        s_xhybar_latency = self._class_latency_batch(prof_xhybar)

        # Eq (15) and eq (31).
        t_x = probs.p_enter_x * (
            probs.p_x_only_given_x * s_x_latency
            + probs.p_x_to_hot_given_x * s_xhy_latency
            + probs.p_x_to_nonhot_given_x * s_xhybar_latency
        )
        s_r_network = (
            t_x
            + probs.p_hot_y_only * s_hy_latency
            + probs.p_nonhot_y_only * s_hybar_latency
        )

        # Virtual-channel multiplexing (eqs 33-37).
        v_hybar = multiplexing_degree(lam_r, s_hybar, vcs)
        v_hy_pos = self._channel_multiplexing_batch(
            lam_r[:, None], hot_y_rates, s_hy[:, None], hold_y
        )
        v_hy = np.mean(v_hy_pos, axis=1)  # eq (36)
        v_x_grid = self._channel_multiplexing_batch(
            lam_r[:, None, None],
            hot_x_rates[:, :, None],
            s_x[:, None, None],
            hold_x,
        )
        v_x = np.mean(v_x_grid, axis=(1, 2))  # eq (37)

        # Source queue waiting times (eq 32) via the vectorized M/G/1.
        lam_vc = rates / vcs
        wait_hot_node = mg1_waiting_time(lam_vc, s_r_network, lm)
        wait_hot_ring = mg1_waiting_time(
            lam_vc[:, None], (1.0 - h) * s_r_network[:, None] + h * s_hot_y, lm
        )
        wait_x = mg1_waiting_time(
            lam_vc[:, None, None],
            (1.0 - h) * s_r_network[:, None, None] + h * s_hot_x,
            lm,
        )
        wait_all = np.concatenate(
            [
                np.asarray(wait_hot_node).reshape(n_points, 1),
                wait_hot_ring,
                wait_x.reshape(n_points, -1),
            ],
            axis=1,
        )
        ws_r = np.mean(wait_all, axis=1)
        sat = ~np.isfinite(ws_r)

        with np.errstate(invalid="ignore"):
            # Regular latency (eqs 11-15).
            reg_hot_ring = probs.p_hot_y_only * (s_hy_latency + ws_r) * v_hy
            reg_nonhot_ring = (
                probs.p_nonhot_y_only * (s_hybar_latency + ws_r) * v_hybar
            )
            reg_enter_x = (t_x + probs.p_enter_x * ws_r) * v_x
            s_r = reg_hot_ring + reg_nonhot_ring + reg_enter_x

            # Hot-spot latency (eqs 21-24).
            denom = self.num_nodes - 1
            s_h_y = (
                np.sum((s_hot_y + wait_hot_ring) * v_hy_pos[:, : k - 1], axis=1)
                / denom
            )
            s_h_x = (
                np.sum(
                    (s_hot_x + wait_x) * v_x_grid[:, : k - 1, :], axis=(1, 2)
                )
                / denom
            )
            latency = (1.0 - h) * s_r + h * (s_h_y + s_h_x)  # eq (10)

        # Largest channel utilisation of the converged solution — the
        # packed grid's per-channel occupancy maximised per point.
        util = np.max(
            lam_r[:, None] * np.asarray(s_lam_packed, dtype=float)
            + gam_all * comp_packed,
            axis=1,
        )

        results: List[ModelResult] = []
        for p in range(n_points):
            if sat[p]:
                results.append(
                    ModelResult(
                        rate=float(rates[p]),
                        latency=math.inf,
                        saturated=True,
                        iterations=int(iterations[p]),
                    )
                )
                continue
            breakdown = LatencyBreakdown(
                regular_hot_ring=float(reg_hot_ring[p]),
                regular_nonhot_ring=float(reg_nonhot_ring[p]),
                regular_enter_x=float(reg_enter_x[p]),
                hot_from_hot_ring=float(s_h_y[p]),
                hot_from_x=float(s_h_x[p]),
                regular_source_wait=float(ws_r[p]),
                regular_network_latency=float(s_r_network[p]),
            )
            results.append(
                ModelResult(
                    rate=float(rates[p]),
                    latency=float(latency[p]),
                    saturated=False,
                    iterations=int(iterations[p]),
                    breakdown=breakdown,
                    mean_multiplexing_x=float(v_x[p]),
                    mean_multiplexing_hot_ring=float(v_hy[p]),
                    mean_multiplexing_nonhot_ring=float(v_hybar[p]),
                    max_utilization=float(util[p]),
                    fixed_point_state=states[p].copy(),
                )
            )
        return results

    def _class_latency_batch(self, profiles: np.ndarray) -> np.ndarray:
        """Batched :meth:`_class_latency` over ``(P, k)`` profiles."""
        if self.trip_averaging:
            return np.mean(profiles[:, : self.k - 1], axis=1)
        return profiles[:, -1]

    def evaluate_batch(
        self,
        rates: "Sequence[float] | np.ndarray",
        *,
        initials: Optional[Sequence[Optional[np.ndarray]]] = None,
        chain: bool = True,
        wave: int = 4,
    ) -> List[ModelResult]:
        """Evaluate many offered loads in one batched fixed-point solve.

        The vector-kernel workhorse behind :meth:`evaluate`,
        :meth:`sweep` and :meth:`saturation_rate`: all points iterate
        simultaneously as a 2-D ``(points, variables)`` state with
        per-point convergence/saturation masking; ``chain`` adds
        warm-start chaining along the (assumed ordered) rate axis in
        waves of ``wave`` points.  Any warm-seeded point that fails is
        re-solved from the cold zero-load start — identical fallback
        semantics to the scalar :meth:`evaluate` warm start, so no load
        a cold evaluation resolves is ever reported saturated.

        ``initials`` optionally warm-starts individual points (entries
        may be ``None``); zero-rate points always use the exact
        zero-load state, like the scalar path.  Note that ``chain=True``
        re-seeds every row past the first wave from converged
        neighbours, replacing caller-supplied initials there — pass
        ``chain=False`` (as :meth:`evaluate` does) when the initials
        themselves should drive the solve.  Results come back in input
        order.
        """
        rates_arr = np.asarray([float(r) for r in rates], dtype=float)
        if rates_arr.size and np.any(rates_arr < 0):
            bad = float(rates_arr[rates_arr < 0][0])
            raise ValueError(f"rate must be non-negative, got {bad}")
        n_points = rates_arr.size
        cold = self._zero_load_state()
        states0 = np.tile(cold, (n_points, 1))
        warm = np.zeros(n_points, dtype=bool)
        if initials is not None:
            if len(initials) != n_points:
                raise ValueError(
                    f"got {len(initials)} initial states for {n_points} rates"
                )
            for p, init in enumerate(initials):
                if init is None or rates_arr[p] == 0.0:
                    continue
                init = np.asarray(init, dtype=float)
                if init.shape != cold.shape:
                    raise ValueError(
                        f"initial state has shape {init.shape}, "
                        f"expected {cold.shape}"
                    )
                states0[p] = init
                warm[p] = True

        lam_r, hot_x, hot_y = self._batch_rates(rates_arr)
        gam_all = self._packed_gam(hot_x, hot_y)
        solve_rows = np.flatnonzero(rates_arr > 0.0)
        iterations = np.zeros(n_points, dtype=np.int64)
        converged = np.ones(n_points, dtype=bool)
        final_states = states0.copy()

        if solve_rows.size:
            def update(sub: np.ndarray, idx: np.ndarray) -> np.ndarray:
                rows = solve_rows[idx]
                return self._update_batch(sub, lam_r[rows], gam_all[rows])

            ok, states, iters = solve_batch_with_fallback(
                self.solver,
                update,
                states0[solve_rows],
                warm[solve_rows],
                cold,
                chain=chain,
                wave=wave,
            )
            iterations[solve_rows] = iters
            converged[solve_rows] = ok
            final_states[solve_rows] = states

        results: List[Optional[ModelResult]] = [None] * n_points
        agg_rows = np.flatnonzero(converged)
        if agg_rows.size:
            aggregated = self._aggregate_batch(
                rates_arr[agg_rows],
                lam_r[agg_rows],
                hot_x[agg_rows],
                hot_y[agg_rows],
                gam_all[agg_rows],
                final_states[agg_rows],
                iterations[agg_rows],
            )
            for row, result in zip(agg_rows, aggregated):
                results[row] = result
        for p in np.flatnonzero(~converged):
            results[p] = ModelResult(
                rate=float(rates_arr[p]),
                latency=math.inf,
                saturated=True,
                iterations=int(iterations[p]),
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _class_latency(self, profile: np.ndarray) -> float:
        """Latency charged to a class from its service-time profile.

        Literal mode: the entrance value ``S_{.,k}``.  Averaged mode: the
        mean over the uniform 1..k-1 trip-length distribution.
        """
        if self.trip_averaging:
            return float(np.mean(profile[: self.k - 1]))
        return float(profile[-1])

    def evaluate(
        self, rate: float, *, initial: Optional[np.ndarray] = None
    ) -> ModelResult:
        """Mean message latency at per-node generation rate ``rate``.

        Returns a saturated :class:`ModelResult` (``latency = inf``) when
        the offered load has no steady state under the model.

        ``initial`` warm-starts the fixed-point solve — pass the
        ``fixed_point_state`` of a previous result at a nearby rate (as
        :meth:`sweep` does) to converge in a handful of iterations
        instead of hundreds.  A warm start can only improve convergence:
        if the warm-started solve fails, the evaluation falls back to
        the cold zero-load start, so no load a cold evaluation resolves
        is ever reported saturated.  The one asymmetry is the borderline
        load whose cold solve exhausts the iteration budget: a warm
        start may legitimately converge there (the fixed point exists —
        the cold "saturated" verdict was a budget artefact).
        """
        if self.kernel == "vector":
            return self.evaluate_batch(
                [rate],
                initials=None if initial is None else [initial],
                chain=False,
            )[0]
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        k, lm, h, vcs = self.k, self.message_length, self.h, self.num_vcs
        n_nodes = self.num_nodes
        rates = HotSpotRates(k, rate, h)
        lam_r = rates.channel.regular_rate
        hot_x_rates = rates.hot_rates_x()
        hot_y_rates = rates.hot_rates_y()

        cold_start = self._zero_load_state()
        if initial is not None:
            initial = np.asarray(initial, dtype=float)
            if initial.shape != cold_start.shape:
                raise ValueError(
                    f"initial state has shape {initial.shape}, "
                    f"expected {cold_start.shape}"
                )

        if rate == 0.0:
            state = cold_start
            fp_iterations = 0
        else:
            result = self.solver.solve(
                lambda s: self._update(rates, s),
                cold_start if initial is None else initial,
            )
            fp_iterations = result.iterations
            if result.status is not FixedPointStatus.CONVERGED and initial is not None:
                result = self.solver.solve(
                    lambda s: self._update(rates, s), cold_start
                )
                fp_iterations += result.iterations
            if result.status is not FixedPointStatus.CONVERGED:
                return ModelResult(
                    rate=rate,
                    latency=math.inf,
                    saturated=True,
                    iterations=fp_iterations,
                )
            state = result.state

        v = _FixedPointView.unpack(state, k)
        probs = self.probabilities

        # Recompute the converged blocking delays once to obtain the full
        # profiles (the state stores only entrance values for the regular
        # classes).
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)
        hold_y, hold_x = self._hot_holding_times(v.s_hot_y, v.s_hot_x)
        b_hybar = blocking_delay(BlockingInputs(lam_r, 0.0, reg_hybar, 0.0), lm)
        b_hy = float(
            np.mean(
                [
                    blocking_delay(
                        BlockingInputs(
                            lam_r,
                            float(hot_y_rates[l]),
                            reg_hy,
                            float(comp_y[l]),
                        ),
                        lm,
                    )
                    for l in range(k)
                ]
            )
        )
        b_x_grid = np.empty((k, k))
        for l in range(k):
            for t in range(k):
                b_x_grid[l, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[l]),
                        reg_x,
                        float(comp_x[l, t]),
                    ),
                    lm,
                )
        b_x = float(np.mean(b_x_grid))
        prof_x = regular_service_profile(k, b_x, lm)
        prof_hy = regular_service_profile(k, b_hy, lm)
        prof_hybar = regular_service_profile(k, b_hybar, lm)
        s_hy_latency = self._class_latency(prof_hy)
        s_hybar_latency = self._class_latency(prof_hybar)
        prof_xhy = chained_service_profile(k, b_x, s_hy_latency)
        prof_xhybar = chained_service_profile(k, b_x, s_hybar_latency)
        s_x_latency = self._class_latency(prof_x)
        s_xhy_latency = self._class_latency(prof_xhy)
        s_xhybar_latency = self._class_latency(prof_xhybar)

        # Eq (15): x-entering network latency including path weights.
        t_x = probs.p_enter_x * (
            probs.p_x_only_given_x * s_x_latency
            + probs.p_x_to_hot_given_x * s_xhy_latency
            + probs.p_x_to_nonhot_given_x * s_xhybar_latency
        )
        # Eq (31): regular network latency seen at any source.
        s_r_network = (
            t_x
            + probs.p_hot_y_only * s_hy_latency
            + probs.p_nonhot_y_only * s_hybar_latency
        )

        # --- Virtual-channel multiplexing (eqs 33-37) -------------------
        v_hybar = multiplexing_degree(lam_r, v.s_hybar_entry, vcs)
        v_hy_pos = np.array(
            [
                self._channel_multiplexing(
                    lam_r, float(hot_y_rates[j]), v.s_hy_entry, float(hold_y[j])
                )
                for j in range(k)
            ]
        )
        v_hy = float(np.mean(v_hy_pos))  # eq (36)
        v_x_grid = np.empty((k, k))  # [j, t]
        for j in range(k):
            for t in range(k):
                v_x_grid[j, t] = self._channel_multiplexing(
                    lam_r,
                    float(hot_x_rates[j]),
                    v.s_x_entry,
                    float(hold_x[j, t]),
                )
        v_x = float(np.mean(v_x_grid))  # eq (37)

        # --- Source queue waiting times (eq 32) --------------------------
        lam_vc = rate / vcs
        # Hot node: generates only regular traffic; hot-ring sources at
        # distance j = 1..k-1; remaining sources at (j = 1..k-1, t = 1..k)
        # — one broadcast M/G/1 call per source family.
        wait_hot_node = mg1_waiting_time(lam_vc, s_r_network, lm)
        wait_hot_ring = mg1_waiting_time(
            lam_vc, (1.0 - h) * s_r_network + h * v.s_hot_y, lm
        )
        wait_x = mg1_waiting_time(
            lam_vc, (1.0 - h) * s_r_network + h * v.s_hot_x, lm
        )
        wait_terms = np.concatenate(
            [[wait_hot_node], wait_hot_ring, wait_x.ravel()]
        )
        if not np.all(np.isfinite(wait_terms)):
            return ModelResult(
                rate=rate, latency=math.inf, saturated=True, iterations=fp_iterations
            )
        ws_r = float(np.mean(wait_terms))

        # --- Regular latency (eqs 11-15) ---------------------------------
        reg_hot_ring = probs.p_hot_y_only * (s_hy_latency + ws_r) * v_hy
        reg_nonhot_ring = probs.p_nonhot_y_only * (s_hybar_latency + ws_r) * v_hybar
        reg_enter_x = (t_x + probs.p_enter_x * ws_r) * v_x
        s_r = reg_hot_ring + reg_nonhot_ring + reg_enter_x

        # --- Hot-spot latency (eqs 21-24) ---------------------------------
        denom = n_nodes - 1
        hot_y_sum = 0.0
        for j in range(k - 1):
            hot_y_sum += (
                float(v.s_hot_y[j]) + float(wait_hot_ring[j])
            ) * float(v_hy_pos[j])
        s_h_y = hot_y_sum / denom
        hot_x_sum = 0.0
        for j in range(k - 1):
            for t in range(k):
                hot_x_sum += (
                    float(v.s_hot_x[j, t]) + float(wait_x[j, t])
                ) * float(v_x_grid[j, t])
        s_h_x = hot_x_sum / denom
        s_h = s_h_y + s_h_x

        latency = (1.0 - h) * s_r + h * s_h  # eq (10)

        breakdown = LatencyBreakdown(
            regular_hot_ring=reg_hot_ring,
            regular_nonhot_ring=reg_nonhot_ring,
            regular_enter_x=reg_enter_x,
            hot_from_hot_ring=s_h_y,
            hot_from_x=s_h_x,
            regular_source_wait=ws_r,
            regular_network_latency=s_r_network,
        )
        return ModelResult(
            rate=rate,
            latency=float(latency),
            saturated=False,
            iterations=fp_iterations,
            breakdown=breakdown,
            mean_multiplexing_x=v_x,
            mean_multiplexing_hot_ring=v_hy,
            mean_multiplexing_nonhot_ring=v_hybar,
            max_utilization=self._max_utilization(rates, v),
            fixed_point_state=state.copy(),
        )

    def _channel_multiplexing(
        self, lam: float, gam: float, s_lam: float, s_gam: float
    ) -> float:
        """V̄ at a channel shared by the two classes (text above eq 36)."""
        total = lam + gam
        if total == 0.0:
            return 1.0
        s_bar = (lam * s_lam + gam * s_gam) / total
        return multiplexing_degree(total, s_bar, self.num_vcs)

    def _max_utilization(self, rates: HotSpotRates, v: _FixedPointView) -> float:
        """Largest channel utilisation of the converged solution."""
        k = self.k
        lam_r = rates.channel.regular_rate
        hot_y_rates = rates.hot_rates_y()
        hot_x_rates = rates.hot_rates_x()
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)
        util = lam_r * reg_hybar
        for j in range(k):
            util = max(
                util,
                lam_r * reg_hy + float(hot_y_rates[j]) * float(comp_y[j]),
            )
            for t in range(k):
                util = max(
                    util,
                    lam_r * reg_x + float(hot_x_rates[j]) * float(comp_x[j, t]),
                )
        return float(util)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        rates: "np.ndarray | list[float]",
        label: str = "model",
        *,
        warm_start: bool = True,
    ) -> SweepResult:
        """Evaluate the model over a grid of per-node rates.

        With ``warm_start`` (the default) each point's solve starts from
        a converged state at a nearby rate — adjacent grid rates have
        nearby fixed points, so the total iteration count of a figure
        sweep drops severalfold while every point converges (to solver
        tolerance) on the same fixed point as a cold solve.  The vector
        kernel solves the whole grid as *one* batched fixed point with
        warm-start chaining along the rate axis; the scalar kernel
        chains the points sequentially.
        """
        out = SweepResult(label=label)
        if self.kernel == "vector":
            for res in self.evaluate_batch(rates, chain=warm_start):
                out.points.append(
                    SweepPoint(
                        rate=res.rate,
                        latency=res.latency,
                        saturated=res.saturated,
                        iterations=res.iterations,
                    )
                )
            return out
        state: Optional[np.ndarray] = None
        for r in rates:
            res = self.evaluate(float(r), initial=state if warm_start else None)
            state = res.fixed_point_state
            out.points.append(
                SweepPoint(
                    rate=float(r),
                    latency=res.latency,
                    saturated=res.saturated,
                    iterations=res.iterations,
                )
            )
        return out

    def saturation_rate(
        self, lo: float = 0.0, hi: float = 1.0, tol: float = 1e-9
    ) -> float:
        """Smallest rate at which the model saturates (bracketing search).

        ``hi`` must saturate; the default upper bound of 1 message/cycle
        per node saturates any realistic configuration.  The scalar
        kernel bisects one evaluation at a time; the vector kernel
        evaluates a whole probe grid inside the bracket per round as one
        batched solve, shrinking the bracket ~13x per round instead of
        2x.  Both return the saturated end of the final bracket, so the
        result agrees to the same ``tol``.
        """
        if self.kernel == "vector":
            return batched_saturation_search(self, lo, hi, tol)
        if not self.evaluate(hi).saturated:
            raise ValueError(f"upper bound {hi} does not saturate the model")
        lo_rate, hi_rate = lo, hi
        while hi_rate - lo_rate > tol * max(1.0, hi_rate):
            mid = 0.5 * (lo_rate + hi_rate)
            if self.evaluate(mid).saturated:
                hi_rate = mid
            else:
                lo_rate = mid
        return hi_rate
