"""The paper's analytical hot-spot latency model (eqs 1-37).

:class:`HotSpotLatencyModel` predicts the mean message latency of a
``k x k`` unidirectional torus with deterministic (x-then-y) wormhole
routing, ``V`` virtual channels per physical channel, fixed ``Lm``-flit
messages, Poisson sources of rate ``lambda`` messages/cycle per node and
Pfister–Norton hot-spot traffic with fraction ``h``.

Solution structure
------------------
The model variables — the dimension-entrance service times of the three
regular path families and the position-dependent hot-spot service times
— are mutually dependent through the blocking delays (eqs 16-20, 23, 25
all contain ``B(...)`` terms that reference the entrance service times).
They are resolved by damped fixed-point iteration
(:class:`~repro.core.fixed_point.FixedPointSolver`), after which the
latency aggregation (eqs 10-15, 21-24, 31-32, 36-37) is evaluated once.

The ``trip_averaging`` switch selects between averaging the
per-position recurrence values over the true uniform trip-length
distribution (the default — consistent with the paper's plotted
light-load agreement with simulation) and the literal text's reading
where every message of a class is charged the *entrance* service time
``S_{.,k}`` of the full k-channel ring pipeline (see DESIGN.md §4).
Both variants use the same fixed point; only the aggregation differs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.equations import (
    PathProbabilities,
    chained_service_profile,
    hot_x_service_profile,
    hot_y_service_profile,
    regular_service_profile,
)
from repro.core.fixed_point import FixedPointSolver, FixedPointStatus
from repro.core.results import LatencyBreakdown, ModelResult, SweepPoint, SweepResult
from repro.queueing.blocking import BlockingInputs, blocking_delay
from repro.queueing.mg1 import mg1_waiting_time
from repro.queueing.vc_multiplexing import multiplexing_degree
from repro.traffic.rates import HotSpotRates

__all__ = ["HotSpotLatencyModel", "BlockingServicePolicy"]


class BlockingServicePolicy(enum.Enum):
    """Which service time a channel's *competing* traffic is charged in
    the blocking terms (eqs 26-30).

    The paper's prose charges each class "the mean service time expected"
    at the channel, but reading that as the full recurrence value
    ``S_{.,j}`` (own blocking delay included) makes the fixed point
    diverge at roughly half the load the paper's own validation figures
    reach — the blocking delay then feeds its own utilisation.  The three
    defensible readings, ordered by where they place saturation:

    ``TRANSMISSION`` (default)
        Each message occupies the channel's *bandwidth* for its
        transmission time ``Lm + 1`` (header + body at one flit/cycle).
        A worm stalled downstream holds a virtual channel but leaves the
        physical bandwidth to other VCs, so this is the physically
        correct stability boundary: channels saturate when the flit
        throughput demand reaches one — which is exactly where the
        paper's figures saturate (e.g. ``lam*h*k(k-1)*Lm ~ 1``).
    ``HOLDING``
        Each message occupies the channel from header acquisition until
        its tail crosses: ``1 + S_{.,j-1}`` (downstream delays included,
        own acquisition wait excluded).  Captures virtual-channel
        exhaustion ("tree saturation"), so it saturates earlier —
        a conservative bound.
    ``ENTRANCE``
        The literal recurrence values (own blocking included) —
        reproduced for completeness and for the ablation benchmark; the
        self-reference makes this the most pessimistic reading.
    """

    TRANSMISSION = "transmission"
    HOLDING = "holding"
    ENTRANCE = "entrance"


@dataclass(frozen=True)
class _FixedPointView:
    """Typed view over the solver's flat state vector."""

    s_x_entry: float
    s_hy_entry: float
    s_hybar_entry: float
    s_hot_y: np.ndarray  # shape (k-1,), index j-1
    s_hot_x: np.ndarray  # shape (k-1, k), index (j-1, t-1)

    @staticmethod
    def unpack(state: np.ndarray, k: int) -> "_FixedPointView":
        hot_y = state[3 : 3 + (k - 1)]
        hot_x = state[3 + (k - 1) :].reshape(k - 1, k)
        return _FixedPointView(
            s_x_entry=float(state[0]),
            s_hy_entry=float(state[1]),
            s_hybar_entry=float(state[2]),
            s_hot_y=hot_y,
            s_hot_x=hot_x,
        )

    @staticmethod
    def pack(
        s_x_entry: float,
        s_hy_entry: float,
        s_hybar_entry: float,
        s_hot_y: np.ndarray,
        s_hot_x: np.ndarray,
    ) -> np.ndarray:
        return np.concatenate(
            [
                np.array([s_x_entry, s_hy_entry, s_hybar_entry]),
                np.asarray(s_hot_y, dtype=float).ravel(),
                np.asarray(s_hot_x, dtype=float).ravel(),
            ]
        )


class HotSpotLatencyModel:
    """Mean-latency model for hot-spot traffic in a 2-D unidirectional torus.

    Parameters
    ----------
    k:
        Radix; the network is the ``k x k`` torus with ``N = k**2`` nodes
        (the paper validates with ``k = 16``).
    message_length:
        Message length ``Lm`` in flits (one flit crosses one channel per
        cycle).
    hotspot_fraction:
        Pfister–Norton hot-spot probability ``h``.
    num_vcs:
        Virtual channels per physical channel, ``V >= 2`` (deadlock
        freedom on the torus requires at least two; assumption vi).
    trip_averaging:
        ``True`` (default): class latencies average the service-time
        recurrence over the uniform trip-length distribution — the
        reading consistent with the paper's plotted light-load agreement
        with simulation.  ``False``: the literal text's dimension-
        entrance value ``S_{.,k}`` (a constant ~``k - k̄`` overestimate;
        kept for the ablation benchmark).
    solver:
        Optional custom fixed-point solver.

    Examples
    --------
    >>> model = HotSpotLatencyModel(k=16, message_length=32,
    ...                             hotspot_fraction=0.2)
    >>> r = model.evaluate(0.0003)
    >>> r.saturated
    False
    >>> r.latency > 32
    True
    """

    def __init__(
        self,
        k: int,
        message_length: int,
        hotspot_fraction: float,
        num_vcs: int = 2,
        *,
        trip_averaging: bool = True,
        blocking_service: BlockingServicePolicy | str = BlockingServicePolicy.TRANSMISSION,
        solver: Optional[FixedPointSolver] = None,
    ) -> None:
        if k < 3:
            raise ValueError(f"radix must be >= 3 for the 2-D model, got {k}")
        if message_length < 1:
            raise ValueError(f"message length must be >= 1, got {message_length}")
        if not 0.0 <= hotspot_fraction < 1.0:
            raise ValueError(
                f"hot-spot fraction must be in [0, 1), got {hotspot_fraction}"
            )
        if num_vcs < 2:
            raise ValueError(
                f"deadlock freedom on the torus needs >= 2 VCs, got {num_vcs}"
            )
        self.k = int(k)
        self.n = 2
        self.num_nodes = self.k**2
        self.message_length = int(message_length)
        self.h = float(hotspot_fraction)
        self.num_vcs = int(num_vcs)
        self.trip_averaging = bool(trip_averaging)
        if isinstance(blocking_service, str):
            blocking_service = BlockingServicePolicy(blocking_service)
        self.blocking_service = blocking_service
        self.solver = solver or FixedPointSolver(
            tol=1e-10, max_iterations=5_000, damping=0.5
        )
        self.probabilities = PathProbabilities(k=self.k)

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------
    def _hot_holding_times(
        self, s_hot_y: np.ndarray, s_hot_x: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Channel-holding times of hot-spot messages (see DESIGN.md §4).

        A message holds a channel from header acquisition until its tail
        crosses: the holding time is its remaining service *after*
        acquiring the channel, ``S_{.,j} - B_j = 1 + S_{.,j-1}`` — the
        wait to acquire the channel itself is spent upstream and must not
        be charged to this channel's utilisation.  Feeding the full
        ``S_{.,j}`` (own blocking included) into eq (27) instead creates
        a self-referential blow-up that saturates the model at roughly
        half the load the paper's own figures reach, so the holding time
        is the reconstruction consistent with the published curves.

        Returns hold times padded to position ``k`` (rate there is zero).
        """
        k, lm = self.k, self.message_length
        hold_y = np.empty(k)
        hold_y[0] = 1.0 + lm
        hold_y[1 : k - 1] = 1.0 + s_hot_y[: k - 2]
        hold_y[k - 1] = 0.0  # position k carries no hot traffic
        hold_x = np.empty((k, k))
        hold_x[0, : k - 1] = 1.0 + s_hot_y  # chain into y at distance t
        hold_x[0, k - 1] = 1.0 + lm  # hot row: delivers
        hold_x[1 : k - 1, :] = 1.0 + s_hot_x[: k - 2, :]
        hold_x[k - 1, :] = 0.0  # position k carries no hot traffic
        return hold_y, hold_x

    def _competing_services(
        self, v: "_FixedPointView"
    ) -> Tuple[float, float, float, np.ndarray, np.ndarray]:
        """Service times charged to competing traffic in blocking terms.

        Returns ``(reg_x, reg_hy, reg_hybar, hot_y[k], hot_x[k, k])``
        according to :class:`BlockingServicePolicy`.
        """
        k, lm = self.k, self.message_length
        policy = self.blocking_service
        if policy is BlockingServicePolicy.TRANSMISSION:
            tx = float(lm + 1)
            hot_y = np.full(k, tx)
            hot_y[k - 1] = 0.0  # no hot traffic leaves the hot node
            hot_x = np.full((k, k), tx)
            hot_x[k - 1, :] = 0.0
            return tx, tx, tx, hot_y, hot_x
        if policy is BlockingServicePolicy.HOLDING:
            hold_y, hold_x = self._hot_holding_times(v.s_hot_y, v.s_hot_x)
            return v.s_x_entry, v.s_hy_entry, v.s_hybar_entry, hold_y, hold_x
        # ENTRANCE: the literal recurrence values.
        hot_y = np.append(v.s_hot_y, 0.0)
        hot_x = np.vstack([v.s_hot_x, np.zeros(k)])
        return v.s_x_entry, v.s_hy_entry, v.s_hybar_entry, hot_y, hot_x

    def _zero_load_state(self) -> np.ndarray:
        k, lm = self.k, self.message_length
        prof = regular_service_profile(k, 0.0, lm)
        hot_y = hot_y_service_profile(k, np.zeros(k - 1), lm)
        hot_x = hot_x_service_profile(k, np.zeros((k - 1, k)), hot_y, lm)
        return _FixedPointView.pack(prof[-1], prof[-1], prof[-1], hot_y, hot_x)

    def _update(self, rates: HotSpotRates, state: np.ndarray) -> np.ndarray:
        k, lm = self.k, self.message_length
        v = _FixedPointView.unpack(state, k)
        lam_r = rates.channel.regular_rate
        hot_x_rates = rates.hot_rates_x()  # index j-1, j = 1..k (j=k entry 0)
        hot_y_rates = rates.hot_rates_y()

        # Competing-traffic service times per the blocking policy.
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)

        # Eq (16): non-hot y-rings carry only regular traffic.
        b_hybar = blocking_delay(BlockingInputs(lam_r, 0.0, reg_hybar, 0.0), lm)
        # Eq (17): hot-ring blocking averaged over the k positions.
        b_hy_terms = [
            blocking_delay(
                BlockingInputs(
                    lam_r, float(hot_y_rates[l]), reg_hy, float(comp_y[l])
                ),
                lm,
            )
            for l in range(k)
        ]
        b_hy = float(np.mean(b_hy_terms))
        # Eqs (18-20): x-channel blocking averaged over the k x k
        # (ring t, position l) grid.
        b_x_terms = np.empty((k, k))  # [l, t]
        for l in range(k):
            for t in range(k):
                b_x_terms[l, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[l]),
                        reg_x,
                        float(comp_x[l, t]),
                    ),
                    lm,
                )
        b_x = float(np.mean(b_x_terms))

        if not (math.isfinite(b_hybar) and math.isfinite(b_hy) and math.isfinite(b_x)):
            return np.full_like(state, np.inf)

        prof_x = regular_service_profile(k, b_x, lm)
        prof_hy = regular_service_profile(k, b_hy, lm)
        prof_hybar = regular_service_profile(k, b_hybar, lm)

        # Eq (23): hot messages in the hot ring see position-dependent
        # blocking.
        b_hot_y = np.array(
            [
                blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_y_rates[j]),
                        reg_hy,
                        float(comp_y[j]),
                    ),
                    lm,
                )
                for j in range(k - 1)
            ]
        )
        # Eq (25): per (j, t) blocking for hot messages crossing x.
        b_hot_x = np.empty((k - 1, k))
        for j in range(k - 1):
            for t in range(k):
                b_hot_x[j, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[j]),
                        reg_x,
                        float(comp_x[j, t]),
                    ),
                    lm,
                )
        if not (np.all(np.isfinite(b_hot_y)) and np.all(np.isfinite(b_hot_x))):
            return np.full_like(state, np.inf)

        new_hot_y = hot_y_service_profile(k, b_hot_y, lm)
        new_hot_x = hot_x_service_profile(k, b_hot_x, new_hot_y, lm)

        return _FixedPointView.pack(
            prof_x[-1], prof_hy[-1], prof_hybar[-1], new_hot_y, new_hot_x
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _class_latency(self, profile: np.ndarray) -> float:
        """Latency charged to a class from its service-time profile.

        Literal mode: the entrance value ``S_{.,k}``.  Averaged mode: the
        mean over the uniform 1..k-1 trip-length distribution.
        """
        if self.trip_averaging:
            return float(np.mean(profile[: self.k - 1]))
        return float(profile[-1])

    def evaluate(
        self, rate: float, *, initial: Optional[np.ndarray] = None
    ) -> ModelResult:
        """Mean message latency at per-node generation rate ``rate``.

        Returns a saturated :class:`ModelResult` (``latency = inf``) when
        the offered load has no steady state under the model.

        ``initial`` warm-starts the fixed-point solve — pass the
        ``fixed_point_state`` of a previous result at a nearby rate (as
        :meth:`sweep` does) to converge in a handful of iterations
        instead of hundreds.  A warm start can only improve convergence:
        if the warm-started solve fails, the evaluation falls back to
        the cold zero-load start, so no load a cold evaluation resolves
        is ever reported saturated.  The one asymmetry is the borderline
        load whose cold solve exhausts the iteration budget: a warm
        start may legitimately converge there (the fixed point exists —
        the cold "saturated" verdict was a budget artefact).
        """
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        k, lm, h, vcs = self.k, self.message_length, self.h, self.num_vcs
        n_nodes = self.num_nodes
        rates = HotSpotRates(k, rate, h)
        lam_r = rates.channel.regular_rate
        hot_x_rates = rates.hot_rates_x()
        hot_y_rates = rates.hot_rates_y()

        cold_start = self._zero_load_state()
        if initial is not None:
            initial = np.asarray(initial, dtype=float)
            if initial.shape != cold_start.shape:
                raise ValueError(
                    f"initial state has shape {initial.shape}, "
                    f"expected {cold_start.shape}"
                )

        if rate == 0.0:
            state = cold_start
            fp_iterations = 0
        else:
            result = self.solver.solve(
                lambda s: self._update(rates, s),
                cold_start if initial is None else initial,
            )
            fp_iterations = result.iterations
            if result.status is not FixedPointStatus.CONVERGED and initial is not None:
                result = self.solver.solve(
                    lambda s: self._update(rates, s), cold_start
                )
                fp_iterations += result.iterations
            if result.status is not FixedPointStatus.CONVERGED:
                return ModelResult(
                    rate=rate,
                    latency=math.inf,
                    saturated=True,
                    iterations=fp_iterations,
                )
            state = result.state

        v = _FixedPointView.unpack(state, k)
        probs = self.probabilities

        # Recompute the converged blocking delays once to obtain the full
        # profiles (the state stores only entrance values for the regular
        # classes).
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)
        hold_y, hold_x = self._hot_holding_times(v.s_hot_y, v.s_hot_x)
        b_hybar = blocking_delay(BlockingInputs(lam_r, 0.0, reg_hybar, 0.0), lm)
        b_hy = float(
            np.mean(
                [
                    blocking_delay(
                        BlockingInputs(
                            lam_r,
                            float(hot_y_rates[l]),
                            reg_hy,
                            float(comp_y[l]),
                        ),
                        lm,
                    )
                    for l in range(k)
                ]
            )
        )
        b_x_grid = np.empty((k, k))
        for l in range(k):
            for t in range(k):
                b_x_grid[l, t] = blocking_delay(
                    BlockingInputs(
                        lam_r,
                        float(hot_x_rates[l]),
                        reg_x,
                        float(comp_x[l, t]),
                    ),
                    lm,
                )
        b_x = float(np.mean(b_x_grid))
        prof_x = regular_service_profile(k, b_x, lm)
        prof_hy = regular_service_profile(k, b_hy, lm)
        prof_hybar = regular_service_profile(k, b_hybar, lm)
        s_hy_latency = self._class_latency(prof_hy)
        s_hybar_latency = self._class_latency(prof_hybar)
        prof_xhy = chained_service_profile(k, b_x, s_hy_latency)
        prof_xhybar = chained_service_profile(k, b_x, s_hybar_latency)
        s_x_latency = self._class_latency(prof_x)
        s_xhy_latency = self._class_latency(prof_xhy)
        s_xhybar_latency = self._class_latency(prof_xhybar)

        # Eq (15): x-entering network latency including path weights.
        t_x = probs.p_enter_x * (
            probs.p_x_only_given_x * s_x_latency
            + probs.p_x_to_hot_given_x * s_xhy_latency
            + probs.p_x_to_nonhot_given_x * s_xhybar_latency
        )
        # Eq (31): regular network latency seen at any source.
        s_r_network = (
            t_x
            + probs.p_hot_y_only * s_hy_latency
            + probs.p_nonhot_y_only * s_hybar_latency
        )

        # --- Virtual-channel multiplexing (eqs 33-37) -------------------
        v_hybar = multiplexing_degree(lam_r, v.s_hybar_entry, vcs)
        v_hy_pos = np.array(
            [
                self._channel_multiplexing(
                    lam_r, float(hot_y_rates[j]), v.s_hy_entry, float(hold_y[j])
                )
                for j in range(k)
            ]
        )
        v_hy = float(np.mean(v_hy_pos))  # eq (36)
        v_x_grid = np.empty((k, k))  # [j, t]
        for j in range(k):
            for t in range(k):
                v_x_grid[j, t] = self._channel_multiplexing(
                    lam_r,
                    float(hot_x_rates[j]),
                    v.s_x_entry,
                    float(hold_x[j, t]),
                )
        v_x = float(np.mean(v_x_grid))  # eq (37)

        # --- Source queue waiting times (eq 32) --------------------------
        lam_vc = rate / vcs
        # Hot node: generates only regular traffic.
        wait_terms = [mg1_waiting_time(lam_vc, s_r_network, lm)]
        # Hot-ring sources, distance j = 1..k-1.
        s_node_hot_ring = (1.0 - h) * s_r_network + h * v.s_hot_y
        wait_hot_ring = np.array(
            [mg1_waiting_time(lam_vc, float(s), lm) for s in s_node_hot_ring]
        )
        wait_terms.extend(wait_hot_ring.tolist())
        # Remaining sources at (j = 1..k-1, t = 1..k).
        s_node_x = (1.0 - h) * s_r_network + h * v.s_hot_x
        wait_x = np.array(
            [
                [mg1_waiting_time(lam_vc, float(s_node_x[j, t]), lm) for t in range(k)]
                for j in range(k - 1)
            ]
        )
        wait_terms.extend(wait_x.ravel().tolist())
        if not all(math.isfinite(w) for w in wait_terms):
            return ModelResult(
                rate=rate, latency=math.inf, saturated=True, iterations=fp_iterations
            )
        ws_r = float(np.mean(wait_terms))

        # --- Regular latency (eqs 11-15) ---------------------------------
        reg_hot_ring = probs.p_hot_y_only * (s_hy_latency + ws_r) * v_hy
        reg_nonhot_ring = probs.p_nonhot_y_only * (s_hybar_latency + ws_r) * v_hybar
        reg_enter_x = (t_x + probs.p_enter_x * ws_r) * v_x
        s_r = reg_hot_ring + reg_nonhot_ring + reg_enter_x

        # --- Hot-spot latency (eqs 21-24) ---------------------------------
        denom = n_nodes - 1
        hot_y_sum = 0.0
        for j in range(k - 1):
            hot_y_sum += (
                float(v.s_hot_y[j]) + float(wait_hot_ring[j])
            ) * float(v_hy_pos[j])
        s_h_y = hot_y_sum / denom
        hot_x_sum = 0.0
        for j in range(k - 1):
            for t in range(k):
                hot_x_sum += (
                    float(v.s_hot_x[j, t]) + float(wait_x[j, t])
                ) * float(v_x_grid[j, t])
        s_h_x = hot_x_sum / denom
        s_h = s_h_y + s_h_x

        latency = (1.0 - h) * s_r + h * s_h  # eq (10)

        breakdown = LatencyBreakdown(
            regular_hot_ring=reg_hot_ring,
            regular_nonhot_ring=reg_nonhot_ring,
            regular_enter_x=reg_enter_x,
            hot_from_hot_ring=s_h_y,
            hot_from_x=s_h_x,
            regular_source_wait=ws_r,
            regular_network_latency=s_r_network,
        )
        return ModelResult(
            rate=rate,
            latency=float(latency),
            saturated=False,
            iterations=fp_iterations,
            breakdown=breakdown,
            mean_multiplexing_x=v_x,
            mean_multiplexing_hot_ring=v_hy,
            mean_multiplexing_nonhot_ring=v_hybar,
            max_utilization=self._max_utilization(rates, v),
            fixed_point_state=state.copy(),
        )

    def _channel_multiplexing(
        self, lam: float, gam: float, s_lam: float, s_gam: float
    ) -> float:
        """V̄ at a channel shared by the two classes (text above eq 36)."""
        total = lam + gam
        if total == 0.0:
            return 1.0
        s_bar = (lam * s_lam + gam * s_gam) / total
        return multiplexing_degree(total, s_bar, self.num_vcs)

    def _max_utilization(self, rates: HotSpotRates, v: _FixedPointView) -> float:
        """Largest channel utilisation of the converged solution."""
        k = self.k
        lam_r = rates.channel.regular_rate
        hot_y_rates = rates.hot_rates_y()
        hot_x_rates = rates.hot_rates_x()
        reg_x, reg_hy, reg_hybar, comp_y, comp_x = self._competing_services(v)
        util = lam_r * reg_hybar
        for j in range(k):
            util = max(
                util,
                lam_r * reg_hy + float(hot_y_rates[j]) * float(comp_y[j]),
            )
            for t in range(k):
                util = max(
                    util,
                    lam_r * reg_x + float(hot_x_rates[j]) * float(comp_x[j, t]),
                )
        return float(util)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        rates: "np.ndarray | list[float]",
        label: str = "model",
        *,
        warm_start: bool = True,
    ) -> SweepResult:
        """Evaluate the model over a grid of per-node rates.

        With ``warm_start`` (the default) each point's solve starts from
        the previous point's converged fixed-point state — adjacent grid
        rates have nearby fixed points, so the total iteration count of
        a figure sweep drops severalfold while every point converges (to
        solver tolerance) on the same fixed point as a cold solve.
        """
        out = SweepResult(label=label)
        state: Optional[np.ndarray] = None
        for r in rates:
            res = self.evaluate(float(r), initial=state if warm_start else None)
            state = res.fixed_point_state
            out.points.append(
                SweepPoint(
                    rate=float(r),
                    latency=res.latency,
                    saturated=res.saturated,
                    iterations=res.iterations,
                )
            )
        return out

    def saturation_rate(
        self, lo: float = 0.0, hi: float = 1.0, tol: float = 1e-9
    ) -> float:
        """Smallest rate at which the model saturates (bisection search).

        ``hi`` must saturate; the default upper bound of 1 message/cycle
        per node saturates any realistic configuration.
        """
        if not self.evaluate(hi).saturated:
            raise ValueError(f"upper bound {hi} does not saturate the model")
        lo_rate, hi_rate = lo, hi
        while hi_rate - lo_rate > tol * max(1.0, hi_rate):
            mid = 0.5 * (lo_rate + hi_rate)
            if self.evaluate(mid).saturated:
                hi_rate = mid
            else:
                lo_rate = mid
        return hi_rate
