#!/usr/bin/env python3
"""Design-space exploration with the analytical model.

The point of an analytical model over a simulator is speed: thousands of
design points per second instead of minutes per point.  This example
uses the model as the paper intends — "a practical evaluation tool for
gaining insight" — to answer three design questions for a 256-node
machine under 40% hot-spot traffic:

1. Do more virtual channels help hot-spot traffic?
2. Is a wider (higher-radix, lower-dimensional) torus better than a
   deeper one at equal node count?  (Uses the n-dimensional extension.)
3. How does message length trade against saturation bandwidth?

Run:  python examples/design_space_sweep.py
"""

from repro import HotSpotLatencyModel, NDimHotSpotModel

H = 0.4
LM = 32


def q1_virtual_channels() -> None:
    print("Q1: virtual channels (16x16 torus, Lm=32, h=40%)")
    print(f"{'V':>3} | {'saturation rate':>16} | {'latency @ 2e-4':>15}")
    print("-" * 42)
    for v in (2, 3, 4, 6, 8):
        model = HotSpotLatencyModel(
            k=16, message_length=LM, hotspot_fraction=H, num_vcs=v
        )
        sat = model.saturation_rate(hi=0.01)
        lat = model.evaluate(2e-4).latency
        print(f"{v:>3} | {sat:>16.6f} | {lat:>15.1f}")
    print("(The hot column is a *bandwidth* bottleneck: extra VCs shave "
        "queueing\n variance but cannot create bandwidth, so returns "
        "diminish fast.)\n")


def q2_radix_vs_dimension() -> None:
    print("Q2: radix vs dimension at ~256 nodes (Lm=32, h=40%)")
    print(f"{'shape':>10} | {'saturation rate':>16} | {'zero-load latency':>18}")
    print("-" * 52)
    for k, n in ((256, 1), (16, 2), (4, 4), (2, 8)):
        model = NDimHotSpotModel(
            k=max(k, 3) if k >= 3 else 3,  # model needs k >= 3
            n=n,
            message_length=LM,
            hotspot_fraction=H,
        ) if k >= 3 else None
        if model is None:
            print(f"{f'{k}^{n}':>10} | {'(k<3 unsupported)':>16} |")
            continue
        sat_lo, sat_hi = 0.0, 0.05
        for _ in range(40):
            mid = (sat_lo + sat_hi) / 2
            if model.evaluate(mid).saturated:
                sat_hi = mid
            else:
                sat_lo = mid
        lat0 = model.evaluate(0.0).latency
        print(f"{f'{k}^{n}':>10} | {sat_hi:>16.6f} | {lat0:>18.1f}")
    print("(Low-dimensional high-radix networks walk farther per message;"
          "\n high-dimensional ones concentrate hot traffic on the last "
          "dimension's\n final channels — the bottleneck rate "
          "lam*h*k^(n-1)*(k-1) barely moves.)\n")


def q3_message_length() -> None:
    print("Q3: message length vs saturation (16x16, h=40%)")
    print(f"{'Lm':>5} | {'saturation rate':>16} | {'sat * Lm (flits)':>17}")
    print("-" * 46)
    for lm in (8, 16, 32, 64, 100, 128):
        model = HotSpotLatencyModel(
            k=16, message_length=lm, hotspot_fraction=H
        )
        sat = model.saturation_rate(hi=0.05)
        print(f"{lm:>5} | {sat:>16.6f} | {sat * lm:>17.6f}")
    print("(Saturation rate scales ~1/Lm: the hot column's flit bandwidth "
          "is the\n invariant — the product sat*Lm stays ~constant.)")


def main() -> None:
    q1_virtual_channels()
    q2_radix_vs_dimension()
    q3_message_length()


if __name__ == "__main__":
    main()
