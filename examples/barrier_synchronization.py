#!/usr/bin/env python3
"""Global barrier synchronisation as a hot-spot workload.

The paper motivates hot-spots with "global synchronisation [23] where
each node in the system sends a synchronisation message to a
distinguished node".  This example models a parallel application that
alternates compute phases with barriers on a 2-D torus:

* between barriers, nodes exchange uniform traffic (the application's
  regular communication);
* at each barrier, every node sends a short message to the barrier
  master — a transient 100%-hot-spot burst.

Sweeping the fraction of traffic that is barrier-bound shows how quickly
the barrier master's column becomes the system bottleneck: the sustainable
application throughput collapses roughly as 1/h, the model's bandwidth
limit lam*h*k(k-1)*(Lm+1) ~ 1.

Run:  python examples/barrier_synchronization.py
"""

import os

import numpy as np

from repro import HotSpotLatencyModel, Simulation, SimulationConfig

QUICK = bool(os.environ.get("REPRO_QUICK"))

K = 16
BARRIER_MSG = 8  # short synchronisation messages (flits)


def sustainable_rate(h: float) -> float:
    """Highest per-node rate the model sustains at barrier share h."""
    model = HotSpotLatencyModel(k=K, message_length=BARRIER_MSG, hotspot_fraction=h)
    return model.saturation_rate(hi=0.05)


def main() -> None:
    print(f"{K}x{K} torus, {BARRIER_MSG}-flit barrier messages")
    print("barrier share h | sustainable rate | latency at 60% of it")
    print("-" * 58)
    shares = (0.1, 0.2, 0.4, 0.6, 0.8)
    for h in shares:
        sat = sustainable_rate(h)
        model = HotSpotLatencyModel(
            k=K, message_length=BARRIER_MSG, hotspot_fraction=h
        )
        lat = model.evaluate(0.6 * sat).latency
        print(f"{h:>15.0%} | {sat:>16.6f} | {lat:>10.1f} cycles")

    # The collapse is ~1/h: doubling the barrier share halves throughput.
    s1, s2 = sustainable_rate(0.2), sustainable_rate(0.4)
    print(f"\nthroughput ratio h=20% vs h=40%: {s1 / s2:.2f} (≈2 expected)")

    # Validate one barrier-heavy operating point in simulation.
    h = 0.4
    rate = 0.5 * sustainable_rate(h)
    cfg = SimulationConfig(
        k=K,
        message_length=BARRIER_MSG,
        rate=rate,
        hotspot_fraction=h,
        warmup_cycles=2_000 if QUICK else 10_000,
        measure_cycles=20_000 if QUICK else 100_000,
        seed=23,
    )
    sim = Simulation(cfg).run()
    model = HotSpotLatencyModel(k=K, message_length=BARRIER_MSG, hotspot_fraction=h)
    print(f"\nvalidation at h={h:.0%}, rate={rate:.6f}:")
    print(f"  simulated {sim.mean_latency:.1f} cycles, model "
          f"{model.evaluate(rate).latency:.1f} cycles")
    print(f"  barrier-master inbound channel utilisation: "
          f"{sim.hot_sink_utilization:.2f}")


if __name__ == "__main__":
    main()
