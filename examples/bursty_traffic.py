#!/usr/bin/env python3
"""Bursty (non-Poisson) hot-spot traffic — the paper's future work.

The paper closes with: "there have been some attempts to construct
analytical models for interconnection networks operating under
non-Poissonian traffic load, including bursty and self-similar traffic.
Our next objective is to extend the above modelling approach to deal
with such traffic patterns."

This example quantifies exactly the gap that extension would close.  It
runs the flit-level simulator under three source processes with the SAME
mean rate and hot-spot fraction:

* Poisson (the model's assumption i),
* Markov-modulated ON/OFF bursts (exponential sojourns, multi-message
  bursts),
* heavy-tailed Pareto ON/OFF bursts (the self-similar construction),

and compares each against the Poisson-based analytical model.  Burstiness
leaves the mean load unchanged but piles arrivals into the hot column
simultaneously, so the measured latency rises above the Poisson
simulation at the same mean rate — a dependence the Poisson-based model
cannot express, and the quantitative motivation for the paper's next
paper.

Run:  python examples/bursty_traffic.py
"""

import os

from repro import HotSpotLatencyModel, Simulation, SimulationConfig
from repro.traffic.burst import (
    ExponentialArrivals,
    OnOffArrivals,
    ParetoOnOffArrivals,
)

QUICK = bool(os.environ.get("REPRO_QUICK"))

K, LM, H = 16, 32, 0.4


def main() -> None:
    model = HotSpotLatencyModel(k=K, message_length=LM, hotspot_fraction=H)
    rate = 0.7 * model.saturation_rate(hi=0.01)
    predicted = model.evaluate(rate).latency
    print(f"{K}x{K} torus, Lm={LM}, h={H:.0%}, rate={rate:.6f} "
          f"(70% of Poisson saturation)")
    print(f"Poisson-based model prediction: {predicted:.1f} cycles\n")

    cfg = SimulationConfig(
        k=K,
        message_length=LM,
        rate=rate,
        hotspot_fraction=H,
        warmup_cycles=2_000 if QUICK else 15_000,
        measure_cycles=20_000 if QUICK else 150_000,
        seed=17,
    )
    sources = [
        ("Poisson (assumption i)", ExponentialArrivals(rate)),
        ("ON/OFF bursts (burstiness 5)", OnOffArrivals(rate, burstiness=5.0, on_mean=3000.0)),
        ("ON/OFF bursts (burstiness 10)", OnOffArrivals(rate, burstiness=10.0, on_mean=3000.0)),
        (
            "Pareto ON/OFF (alpha=1.5, burstiness 5)",
            ParetoOnOffArrivals(rate, burstiness=5.0, on_mean=3000.0, alpha=1.5),
        ),
    ]
    print(f"{'source process':>40} | {'sim latency':>11} | {'vs model':>8}")
    print("-" * 68)
    for name, arrivals in sources:
        res = Simulation(cfg, arrival_model=arrivals).run()
        tag = "SATURATED" if res.saturated else f"{res.mean_latency:10.1f}"
        ratio = (
            "-" if res.saturated else f"{res.mean_latency / predicted:7.2f}x"
        )
        print(f"{name:>40} | {tag:>11} | {ratio:>8}")
    print("\n(Equal mean load, very different latency: burstiness piles "
          "arrivals into\n the hot column simultaneously and raises the "
          "measured latency over the\n Poisson simulation — the dependence "
          "a Poisson-based model cannot express,\n and exactly the gap the "
          "paper's stated future work on bursty/self-similar\n traffic "
          "would close.)")


if __name__ == "__main__":
    main()
