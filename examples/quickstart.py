#!/usr/bin/env python3
"""Quickstart: predict and measure hot-spot latency on a 2-D torus.

Builds the paper's headline configuration — a 16x16 unidirectional torus
with dimension-order wormhole routing, 32-flit messages and 20% hot-spot
traffic — evaluates the analytical model over a load sweep, validates one
operating point against the flit-level simulator, and prints the
latency-vs-load series exactly like one panel of the paper's Figure 1.

Run:  python examples/quickstart.py
Environment:  REPRO_QUICK=1 shrinks the simulation for smoke tests.
"""

import os

import numpy as np

from repro import HotSpotLatencyModel, Simulation, SimulationConfig

QUICK = bool(os.environ.get("REPRO_QUICK"))


def main() -> None:
    k, lm, h = 16, 32, 0.20
    model = HotSpotLatencyModel(k=k, message_length=lm, hotspot_fraction=h)

    # 1. Where does the network stop being stable?
    saturation = model.saturation_rate(hi=0.01)
    print(f"{k}x{k} torus, Lm={lm} flits, h={h:.0%}, V=2 virtual channels")
    print(f"model saturation point: {saturation:.6f} messages/cycle/node\n")

    # 2. Latency-vs-load curve (the paper's Figure 1, h=20% panel).
    print(f"{'traffic':>12} | {'latency (cycles)':>17}")
    print("-" * 33)
    for frac in np.linspace(0.1, 1.0, 10):
        rate = frac * saturation
        res = model.evaluate(rate)
        latency = f"{res.latency:.1f}" if res.finite else "saturated"
        print(f"{rate:>12.6f} | {latency:>17}")

    # 3. Validate one operating point against the flit-level simulator.
    rate = 0.5 * saturation
    cfg = SimulationConfig(
        k=k,
        message_length=lm,
        rate=rate,
        hotspot_fraction=h,
        warmup_cycles=2_000 if QUICK else 15_000,
        measure_cycles=15_000 if QUICK else 120_000,
        seed=7,
    )
    print(f"\nsimulating {cfg.total_cycles} cycles at rate {rate:.6f} ...")
    sim = Simulation(cfg).run()
    mdl = model.evaluate(rate)
    print(f"simulated latency: {sim.mean_latency:7.1f} cycles "
          f"(95% CI ±{sim.ci95 or 0:.1f}, {sim.num_completed} messages)")
    print(f"model latency:     {mdl.latency:7.1f} cycles")
    err = abs(mdl.latency - sim.mean_latency) / sim.mean_latency
    print(f"relative error:    {err:7.1%}")


if __name__ == "__main__":
    main()
