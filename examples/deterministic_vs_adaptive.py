#!/usr/bin/env python3
"""Deterministic vs adaptive routing under hot-spot traffic.

The paper's introduction frames the design space: adaptive routing gives
messages "more flexibility ... avoiding congested regions", but "at the
expense of complex router hardware", and cites evidence [22] that under
realistic traffic "the performance advantages of deterministic routing
can even approach those of adaptive routing".

This example puts numbers on that trade-off for hot-spot traffic using
the flit-level simulator's two routing modes (same network, same V=4
virtual channels; the adaptive mode reserves two of them as Duato escape
channels):

* at light load and *uniform* traffic the two are indistinguishable —
  the [22] observation;
* under hot-spot traffic, adaptive roughly doubles the sustainable load:
  the deterministic x-then-y order funnels every hot message through the
  hot node's single y-channel, while adaptive traffic enters through
  both of the hot node's incoming channels.

Run:  python examples/deterministic_vs_adaptive.py
"""

import os
from dataclasses import replace

from repro import HotSpotLatencyModel, Simulation, SimulationConfig

QUICK = bool(os.environ.get("REPRO_QUICK"))

K, LM = 16, 32


def run(rate: float, h: float, routing: str) -> "tuple[float, bool]":
    cfg = SimulationConfig(
        k=K,
        message_length=LM,
        rate=rate,
        hotspot_fraction=h,
        routing=routing,
        num_vcs=4,
        warmup_cycles=2_000 if QUICK else 10_000,
        measure_cycles=15_000 if QUICK else 80_000,
        seed=41,
    )
    res = Simulation(cfg).run()
    return res.mean_latency, res.saturated


def main() -> None:
    h = 0.4
    model = HotSpotLatencyModel(
        k=K, message_length=LM, hotspot_fraction=h, num_vcs=4
    )
    knee = model.saturation_rate(hi=0.01)
    print(f"{K}x{K} torus, Lm={LM}, V=4; deterministic knee (model): "
          f"{knee:.6f}\n")

    print("uniform traffic (h=0), light load — the [22] regime:")
    for rate in (0.3 * knee, 0.6 * knee):
        d, _ = run(rate, 0.0, "deterministic")
        a, _ = run(rate, 0.0, "adaptive")
        print(f"  rate {rate:.6f}: deterministic {d:6.1f}  adaptive {a:6.1f} "
              f"cycles  (ratio {a / d:.2f})")

    print(f"\nhot-spot traffic (h={h:.0%}), load sweep across the "
          f"deterministic knee:")
    print(f"{'rate':>12} | {'deterministic':>14} | {'adaptive':>14}")
    print("-" * 48)
    for frac in (0.5, 0.8, 1.1, 1.5, 1.9):
        rate = frac * knee
        d, ds = run(rate, h, "deterministic")
        a, asat = run(rate, h, "adaptive")
        dtxt = "saturated" if ds else f"{d:.1f}"
        atxt = "saturated" if asat else f"{a:.1f}"
        print(f"{rate:>12.6f} | {dtxt:>14} | {atxt:>14}")

    print("\n(Deterministic funnels all hot traffic through one incoming "
          "channel of\n the hot node; adaptive uses both, ~doubling the "
          "sink bandwidth — at the\n router-complexity cost the paper's "
          "introduction warns about.  At light\n uniform load the two "
          "coincide, the observation of [22] that motivates\n modelling "
          "deterministic routing at all.)")


if __name__ == "__main__":
    main()
