#!/usr/bin/env python3
"""Write-invalidation acknowledgements as a hot-spot workload.

The paper's second motivating scenario: "in some cache coherency
protocols, to perform write-invalidation, a message is sent to all nodes
having a dirty copy of the block.  Those nodes, then, should send an
acknowledgement back to the host node ... if all nodes have a dirty copy
of the block, this results in hot-spot traffic".

This example compares two coherence designs on a 2-D torus of shared-
memory nodes:

* **home-node acks** — every sharer acknowledges directly to the single
  home node (pure hot-spot, the paper's model applies directly);
* **sharing-dilution** — directories are interleaved across D home
  nodes, so each invalidation's acks target one of D hot nodes; per-home
  hot fraction drops to h/D.

The model quantifies how much headroom directory interleaving buys, and
the simulator validates the single-home case.

Run:  python examples/cache_coherence.py
"""

import os

from repro import HotSpotLatencyModel, Simulation, SimulationConfig

QUICK = bool(os.environ.get("REPRO_QUICK"))

K = 16
ACK_FLITS = 8  # invalidation acknowledgements are short
DATA_FLITS = 32  # regular data/coherence traffic


def main() -> None:
    # Protocol mix: 30% of network messages are invalidation acks, the
    # rest is regular coherence/data traffic (uniformly spread).
    ack_share = 0.30
    print(f"{K}x{K} torus of shared-memory nodes")
    print(f"workload: {ack_share:.0%} invalidation acks ({ACK_FLITS} flits), "
          f"rest uniform data ({DATA_FLITS} flits)\n")

    # The model takes one message length; use the ack length for the
    # hot-spot-dominated question "when does the home node melt down",
    # which is conservative for the data share.
    print("directory interleaving | per-home hot share | sustainable rate")
    print("-" * 64)
    base = None
    for homes in (1, 2, 4, 8):
        h_eff = ack_share / homes
        model = HotSpotLatencyModel(
            k=K, message_length=ACK_FLITS, hotspot_fraction=h_eff
        )
        sat = model.saturation_rate(hi=0.05)
        if base is None:
            base = sat
        print(f"{homes:>22} | {h_eff:>18.3f} | {sat:.6f} "
              f"({sat / base:.1f}x)")

    print("\n(Interleaving the directory across D homes multiplies the "
          "sustainable rate ~Dx\n until the uniform share becomes the "
          "bottleneck.)\n")

    # Validate the single-home design at 70% of its saturation load.
    model = HotSpotLatencyModel(
        k=K, message_length=ACK_FLITS, hotspot_fraction=ack_share
    )
    rate = 0.7 * model.saturation_rate(hi=0.05)
    cfg = SimulationConfig(
        k=K,
        message_length=ACK_FLITS,
        rate=rate,
        hotspot_fraction=ack_share,
        warmup_cycles=2_000 if QUICK else 10_000,
        measure_cycles=20_000 if QUICK else 100_000,
        seed=31,
    )
    sim = Simulation(cfg).run()
    res = model.evaluate(rate)
    print(f"single home node at rate {rate:.6f} (70% of saturation):")
    print(f"  model   : {res.latency:.1f} cycles "
          f"(hot messages {res.breakdown.hot_total:.1f}, regular "
          f"{res.breakdown.regular_total:.1f})")
    print(f"  simulator: {sim.mean_latency:.1f} cycles "
          f"(hot {sim.mean_latency_hot:.1f}, regular "
          f"{sim.mean_latency_regular:.1f})")


if __name__ == "__main__":
    main()
