#!/usr/bin/env python3
"""Regenerate one panel of the paper's validation figures end-to-end.

Runs both the analytical model and the flit-level simulator over the
load grid of a chosen panel (default: Figure 1, h = 20%) and prints the
paired series with relative errors — the programmatic equivalent of
reading model-vs-simulation off the paper's plots.

Run:  python examples/model_vs_simulation.py [panel]
      panel in {fig1_h20, fig1_h40, fig1_h70, fig2_h20, fig2_h40, fig2_h70}
Environment:  REPRO_QUICK=1 shrinks the simulation; REPRO_SIM_CYCLES=N
sets the measurement window per point; REPRO_JOBS=N runs the simulation
points on N worker processes (identical results, less wall-clock).
"""

import os
import sys

from repro.experiments import (
    format_panel_table,
    get_panel,
    run_panel,
    shape_metrics,
    sim_jobs,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fig1_h20"
    spec = get_panel(name)
    quick = bool(os.environ.get("REPRO_QUICK"))
    measure = 12_000 if quick else None  # None -> REPRO_SIM_CYCLES/default
    jobs = sim_jobs()
    print(f"running {spec.description} (model + simulation, jobs={jobs})...\n")
    result = run_panel(spec, measure_cycles=measure, jobs=jobs)
    print(format_panel_table(result))
    metrics = shape_metrics(result)
    print()
    print(f"mean relative error (light/moderate load): "
          f"{metrics.mean_rel_error_light:.1%}")
    print(f"mean relative error (all finite points):   "
          f"{metrics.mean_rel_error_all:.1%}")
    if metrics.saturation_ratio is not None:
        print(f"saturation knee, model/simulation:         "
              f"{metrics.saturation_ratio:.2f}")
    print(f"model curve monotone: {metrics.monotone_model}; "
          f"simulated curve monotone: {metrics.monotone_sim}")


if __name__ == "__main__":
    main()
