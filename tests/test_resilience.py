"""Tests for the resilience layer (repro.resilience).

The executor guarantees under test:

* transient exceptions are retried under the policy and succeed without
  losing other tasks' results;
* a worker crash (``BrokenProcessPool``) rebuilds the pool, resubmits
  unfinished tasks, and never recomputes completed ones;
* a hung task is killed at ``point_timeout`` and retried on a fresh
  pool; innocent in-flight tasks are requeued without an attempt charge;
* exhausted retry budgets become structured :class:`TaskFailure` records
  instead of propagating;
* ``on_result`` fires per completion and can drop queued tasks.

The journal guarantees: per-line durability, truncated trailing lines
skipped on load, header recovery.
"""

import json
import os
import time

import pytest

from repro.resilience import (
    CheckpointJournal,
    ExecutorStats,
    ResilientExecutor,
    RetryPolicy,
    TaskFailure,
)

# Fast backoff so retry-heavy tests stay quick.
FAST = dict(backoff_base=0.001, backoff_cap=0.01)


# Worker functions must be module-level (pickled by reference into the
# pool; visible in forked workers).
def _ok(x, attempt):
    return (x, attempt)


def _fail_then_ok(x, attempt):
    if attempt == 0:
        raise ValueError(f"transient failure on {x}")
    return x * 10


def _always_fail(x, attempt):
    raise RuntimeError(f"permanent failure on {x}")


def _crash_then_ok(x, attempt):
    if attempt == 0:
        os._exit(1)  # hard worker death -> BrokenProcessPool in the parent
    return x + 100


def _hang_then_ok(x, attempt):
    if attempt == 0:
        time.sleep(60.0)
    return x + 1000


def _slow_ok(x, attempt):
    time.sleep(0.1)
    return x


class TestRetryPolicy:
    def test_backoff_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_backoff_jitter_off_by_default(self):
        # Deterministic chaos replay depends on jitter-free backoff, so
        # the default must stay the plain capped exponential: repeated
        # calls for the same attempt return the exact same delay.
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.jitter is False
        assert [policy.backoff(2) for _ in range(5)] == [policy.backoff(2)] * 5

    def test_backoff_jitter_draws_within_decorrelated_band(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=10.0, jitter=True)
        plain = 0.1 * 2.0**2
        draws = [policy.backoff(2) for _ in range(200)]
        assert all(0.1 <= d <= 3.0 * plain for d in draws)
        assert len(set(draws)) > 1, "jittered backoff never varied"

    def test_backoff_jitter_degenerate_band_falls_back_to_plain(self):
        # cap == base leaves no room to jitter: plain delay, no draw.
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=0.5, jitter=True)
        assert [policy.backoff(a) for a in range(3)] == [0.5, 0.5, 0.5]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(point_timeout=0.0),
            dict(point_timeout=-1.0),
            dict(backoff_base=-0.1),
            dict(backoff_cap=-1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestResilientExecutor:
    def test_all_success(self):
        ex = ResilientExecutor(2, RetryPolicy(**FAST))
        results, failures = ex.run(_ok, {i: (i,) for i in range(5)})
        assert failures == {}
        assert results == {i: (i, 0) for i in range(5)}
        assert ex.stats.completed == 5
        assert ex.stats.submitted == 5
        assert not ex.stats.eventful

    def test_transient_exception_retried(self):
        ex = ResilientExecutor(2, RetryPolicy(max_retries=2, **FAST))
        retried = []
        results, failures = ex.run(
            _fail_then_ok,
            {i: (i,) for i in range(3)},
            on_retry=lambda key, kind, attempt: retried.append(
                (key, kind, attempt)
            ),
        )
        assert failures == {}
        assert results == {i: i * 10 for i in range(3)}
        assert ex.stats.retries == 3
        assert sorted(retried) == [(i, "exception", 0) for i in range(3)]

    def test_terminal_exception_becomes_failure_record(self):
        ex = ResilientExecutor(1, RetryPolicy(max_retries=1, **FAST))
        results, failures = ex.run(_always_fail, {0: (0,), 1: (1,)})
        assert results == {}
        assert set(failures) == {0, 1}
        for key, failure in failures.items():
            assert isinstance(failure, TaskFailure)
            assert failure.kind == "exception"
            assert failure.attempts == 2  # first try + one retry
            assert "permanent failure" in failure.message
        assert ex.stats.failures == 2

    def test_worker_crash_rebuilds_pool_and_retries(self):
        ex = ResilientExecutor(1, RetryPolicy(max_retries=3, **FAST))
        results, failures = ex.run(_crash_then_ok, {7: (7,)})
        assert failures == {}
        assert results == {7: 107}
        assert ex.stats.pool_rebuilds >= 1

    def test_crash_does_not_lose_completed_results(self):
        # Task 0 completes before task 1 crashes its worker; the rebuild
        # must keep 0's result and only re-run 1.
        ex = ResilientExecutor(1, RetryPolicy(max_retries=3, **FAST))
        results, failures = ex.run(_mixed_crash, {0: (0,), 1: (1,)})
        assert failures == {}
        assert results == {0: 0, 1: 101}

    def test_hung_task_times_out_and_retries(self):
        ex = ResilientExecutor(
            1, RetryPolicy(max_retries=2, point_timeout=0.5, **FAST)
        )
        t0 = time.monotonic()
        results, failures = ex.run(_hang_then_ok, {3: (3,)})
        elapsed = time.monotonic() - t0
        assert failures == {}
        assert results == {3: 1003}
        assert ex.stats.timeouts == 1
        assert ex.stats.pool_rebuilds >= 1
        assert elapsed < 30.0  # the 60s hang was actually killed

    def test_timeout_exhaustion_is_terminal(self):
        ex = ResilientExecutor(
            1, RetryPolicy(max_retries=0, point_timeout=0.3, **FAST)
        )
        results, failures = ex.run(_always_hang, {0: (0,)})
        assert results == {}
        assert failures[0].kind == "timeout"
        assert failures[0].attempts == 1

    def test_on_result_streams_and_drops(self):
        # jobs=1 runs tasks in order; completing task 0 drops 2..4.
        ex = ResilientExecutor(1, RetryPolicy(**FAST))
        seen = []

        def on_result(key, value, attempts):
            seen.append((key, value, attempts))
            if key == 0:
                return [2, 3, 4]
            return None

        results, failures = ex.run(
            _ok, {i: (i,) for i in range(5)}, on_result=on_result
        )
        assert failures == {}
        assert set(results) == {0, 1}
        assert [s[0] for s in seen] == [0, 1]
        assert all(attempts == 1 for _, _, attempts in seen)

    def test_shared_stats_accumulate(self):
        stats = ExecutorStats()
        ResilientExecutor(1, RetryPolicy(**FAST), stats=stats).run(
            _ok, {0: (0,)}
        )
        ResilientExecutor(1, RetryPolicy(**FAST), stats=stats).run(
            _ok, {1: (1,)}
        )
        assert stats.completed == 2
        assert stats.as_dict()["completed"] == 2

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            ResilientExecutor(0)


def _mixed_crash(x, attempt):
    if x == 1 and attempt == 0:
        time.sleep(0.2)  # let task 0 finish first under jobs=1
        os._exit(1)
    return x + 100 if x == 1 else x


def _always_hang(x, attempt):
    time.sleep(60.0)
    return x


class TestCheckpointJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j" / "camp.jsonl"
        journal = CheckpointJournal(path)
        journal.start({"event": "campaign", "campaign": "abc"}, fresh=True)
        journal.record({"event": "point", "index": 0, "latency": 1.5})
        journal.record({"event": "point", "index": 1, "latency": float("inf")})
        journal.close()
        header, entries = CheckpointJournal.load(path)
        assert header == {"event": "campaign", "campaign": "abc"}
        assert len(entries) == 2
        assert entries[1]["latency"] == float("inf")

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        journal = CheckpointJournal(path)
        journal.start({"event": "campaign"}, fresh=True)
        journal.record({"event": "point", "index": 0})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"event": "point", "ind')  # interrupted writer
        header, entries = CheckpointJournal.load(path)
        assert header == {"event": "campaign"}
        assert entries == [{"event": "point", "index": 0}]

    def test_missing_file(self, tmp_path):
        header, entries = CheckpointJournal.load(tmp_path / "nope.jsonl")
        assert header is None
        assert entries == []

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        j1 = CheckpointJournal(path)
        j1.start({"event": "campaign"}, fresh=True)
        j1.record({"event": "point", "index": 0})
        j1.close()
        j2 = CheckpointJournal(path)
        j2.start({"event": "campaign"}, fresh=False)
        j2.record({"event": "point", "index": 1})
        j2.close()
        _, entries = CheckpointJournal.load(path)
        assert [e["index"] for e in entries] == [0, 1]

    def test_fresh_truncates(self, tmp_path):
        path = tmp_path / "camp.jsonl"
        for _ in range(2):
            journal = CheckpointJournal(path)
            journal.start({"event": "campaign"}, fresh=True)
            journal.record({"event": "point", "index": 0})
            journal.close()
        _, entries = CheckpointJournal.load(path)
        assert len(entries) == 1

    def test_record_requires_start(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "camp.jsonl")
        with pytest.raises(RuntimeError, match="not open"):
            journal.record({"event": "point"})
