"""Acceptance test: distributed chaos equivalence (ISSUE 9 tentpole).

A two-worker ``FileQueueBackend`` campaign with injected worker kills
(``worker-kill``: the claimer dies with ``os._exit`` before computing)
and heartbeat stalls (``heartbeat-stall``: the claimer freezes its
heartbeat/lease refresh past the coordinator's timeout) must

* complete with zero terminal failures,
* be **bit-identical** to the same campaign on the default
  ``LocalPoolBackend`` with faults off, and
* leak **no** coordination files afterward — queue entries, leases,
  results, heartbeats, or ``*.tmp`` orphans (the coordinator owns and
  drains its spawned fleet, so unlike the in-process worker tests this
  asserts the full zero-leak guarantee, results included).

As in ``test_chaos_equivalence``, the fault seeds are *searched*, not
guessed: draws are pure SHA-256 functions of (kind, seed, point seed,
attempt), so we scan for seeds that place at least one kill and one
stall on distinct always-computed points' first attempts and nothing on
any retry attempt — the chaos is deterministic and guaranteed to fire,
and every retried attempt is guaranteed clean, so the campaign must
converge to the fault-free result.
"""

from pathlib import Path

from repro.backends import FileQueueBackend
from repro.experiments import SweepEngine, point_seed
from repro.faults import ENV_VAR, FaultPlan, FaultSpec
from test_sweep_engine import tiny_panel

PANEL = "tiny"
RATES = (0.002, 0.01, 0.12, 0.18)  # index 2 is the first saturated rate
BASE_SEED = 7
MAX_RETRIES = 4
FAULT_RATE = 0.25
STALL_SECS = 2.0  # > heartbeat_timeout below: the stalled lease is lost
SIM_KWARGS = dict(seed=BASE_SEED, measure_cycles=3_000, warmup_cycles=500)

POINT_SEEDS = [point_seed(BASE_SEED, PANEL, i) for i in range(len(RATES))]


def _plan(kind: str, seed: int) -> FaultPlan:
    return FaultPlan(
        {kind: FaultSpec(kind=kind, rate=FAULT_RATE, seed=seed, secs=STALL_SECS)}
    )


def _clean_retries(plan: FaultPlan, kind: str) -> bool:
    """No draw fires on any retry attempt — every requeue succeeds."""
    return not any(
        plan.triggers(kind, s, a)
        for s in POINT_SEEDS
        for a in range(1, MAX_RETRIES + 1)
    )


def _find_kill_seed() -> int:
    """Kill at least one of points 0–2 on attempt 0; retries all clean.

    Points 0–2 are always computed (the panel early-stops after the
    first saturated rate, index 2), so the kill is guaranteed to fire.
    """
    for seed in range(50_000):
        plan = _plan("worker-kill", seed)
        if not any(plan.triggers("worker-kill", POINT_SEEDS[i], 0) for i in (0, 1, 2)):
            continue
        if _clean_retries(plan, "worker-kill"):
            return seed
    raise AssertionError("no suitable worker-kill seed in range")  # pragma: no cover


def _find_stall_seed(kill_plan: FaultPlan) -> int:
    """Stall one of points 0–2 on attempt 0, on a point the kill spares.

    Keeping the kill and stall on distinct points means the kill cannot
    pre-empt the stall (a killed worker never reaches the stall hook),
    so both fault kinds are guaranteed to actually fire.
    """
    for seed in range(50_000):
        plan = _plan("heartbeat-stall", seed)
        hits = [
            i
            for i in (0, 1, 2)
            if plan.triggers("heartbeat-stall", POINT_SEEDS[i], 0)
        ]
        if not hits:
            continue
        if any(kill_plan.triggers("worker-kill", POINT_SEEDS[i], 0) for i in hits):
            continue
        if _clean_retries(plan, "heartbeat-stall"):
            return seed
    raise AssertionError("no suitable heartbeat-stall seed in range")  # pragma: no cover


def _campaign_leftovers(root: Path) -> list:
    """Every coordination file a finished campaign must not leak."""
    return (
        list(root.glob("queue/*"))
        + list(root.glob("leases/*"))
        + list(root.glob("results/*"))
        + list(root.glob("heartbeats/*"))
        + list(root.rglob("*.tmp"))
    )


class TestDistributedChaosEquivalence:
    def test_two_worker_campaign_with_kills_and_stalls_matches_local(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_panel(PANEL, rates=RATES)
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = SweepEngine(jobs=1, use_cache=False).run_panel(
            spec, **SIM_KWARGS
        )
        assert not reference.simulation.failures

        # Faults must be in the environment *before* the backend spawns
        # its worker subprocesses: they inherit os.environ, and only
        # processes entered through `repro worker` arm the worker-side
        # fault hooks — the coordinator (this pytest process) stays safe.
        kill_seed = _find_kill_seed()
        stall_seed = _find_stall_seed(_plan("worker-kill", kill_seed))
        monkeypatch.setenv(
            ENV_VAR,
            f"worker-kill:rate={FAULT_RATE},seed={kill_seed};"
            f"heartbeat-stall:rate={FAULT_RATE},seed={stall_seed},"
            f"secs={STALL_SECS}",
        )

        campaign = tmp_path / "campaign"
        backend = FileQueueBackend(
            campaign,
            spawn_workers=2,
            lease_timeout=4.0,
            heartbeat_timeout=1.5,
            poll_interval=0.05,
            clock_skew=0.25,
            speculate_factor=None,
            worker_heartbeat_interval=0.3,
            worker_poll_interval=0.05,
        )
        engine = SweepEngine(
            jobs=1,
            use_cache=False,
            cache_dir=tmp_path / "store",
            max_retries=MAX_RETRIES,
            backoff_base=0.001,
            backend=backend,
        )
        chaotic = engine.run_panel(spec, **SIM_KWARGS)

        # Bit-identical to the fault-free local run, no terminal failures.
        assert chaotic.simulation == reference.simulation
        assert chaotic.model == reference.model
        assert not chaotic.simulation.failures

        # The chaos actually happened and was survived: the kill and the
        # stall each cost one charged requeue, and the killed worker was
        # detected dead (stale heartbeat) and its replacement spawned.
        assert engine.stats.retries >= 2, "injected faults never fired"
        assert engine.stats.pool_rebuilds >= 2
        assert engine.stats.failures == 0

        # Full zero-leak guarantee: the coordinator drained its fleet,
        # so nothing may remain — not even late duplicate results.
        assert _campaign_leftovers(campaign) == []
