"""Tests for bursty arrival processes (repro.traffic.burst)."""

import numpy as np
import pytest

from repro.traffic.burst import (
    ExponentialArrivals,
    OnOffArrivals,
    ParetoOnOffArrivals,
)


def empirical_rate(model, n=40_000, seed=0):
    rng = np.random.default_rng(seed)
    m = model.fresh()
    total = sum(m.next_gap(rng) for _ in range(n))
    return n / total


class TestExponential:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ExponentialArrivals(0.0)

    def test_mean_rate_matches(self):
        model = ExponentialArrivals(0.01)
        assert empirical_rate(model) == pytest.approx(0.01, rel=0.05)

    def test_gaps_exponential_cv(self):
        rng = np.random.default_rng(1)
        m = ExponentialArrivals(0.02)
        gaps = np.array([m.next_gap(rng) for _ in range(20_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 == pytest.approx(1.0, abs=0.1)

    def test_fresh_is_independent(self):
        a = ExponentialArrivals(0.5)
        assert a.fresh() is not a
        assert a.fresh().mean_rate == 0.5


class TestOnOff:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(-1.0)
        with pytest.raises(ValueError):
            OnOffArrivals(0.1, burstiness=0.5)
        with pytest.raises(ValueError):
            OnOffArrivals(0.1, on_mean=0.0)

    def test_mean_rate_preserved(self):
        model = OnOffArrivals(0.01, burstiness=5.0, on_mean=500.0)
        assert empirical_rate(model, n=60_000) == pytest.approx(0.01, rel=0.08)

    def test_burstiness_one_is_poisson(self):
        model = OnOffArrivals(0.02, burstiness=1.0)
        assert model.off_mean == 0.0
        rng = np.random.default_rng(2)
        gaps = np.array([model.next_gap(rng) for _ in range(20_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 == pytest.approx(1.0, abs=0.1)

    def test_gap_variance_exceeds_poisson(self):
        """Burstiness must inflate the inter-arrival CV beyond 1."""
        rng = np.random.default_rng(3)
        model = OnOffArrivals(0.01, burstiness=10.0, on_mean=500.0)
        gaps = np.array([model.next_gap(rng) for _ in range(40_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 2.0

    def test_peak_rate(self):
        model = OnOffArrivals(0.01, burstiness=4.0)
        assert model.peak_rate == pytest.approx(0.04)


class TestParetoOnOff:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            ParetoOnOffArrivals(0.01, alpha=2.5)
        with pytest.raises(ValueError):
            ParetoOnOffArrivals(0.01, alpha=1.0)

    def test_mean_rate_roughly_preserved(self):
        # Heavy tails converge slowly; allow a generous band.
        model = ParetoOnOffArrivals(0.01, burstiness=4.0, on_mean=300.0, alpha=1.7)
        assert empirical_rate(model, n=80_000) == pytest.approx(0.01, rel=0.25)

    def test_pareto_sojourns_heavy_tailed(self):
        rng = np.random.default_rng(4)
        model = ParetoOnOffArrivals(0.01, alpha=1.5)
        samples = np.array([model._pareto(rng, 100.0) for _ in range(50_000)])
        # Minimum equals x_m = mean*(alpha-1)/alpha.
        assert samples.min() >= 100.0 * (0.5 / 1.5) - 1e-9
        # Tail: P(X > 10*mean) is far larger than exponential's e^-10.
        assert (samples > 1000.0).mean() > 0.005


class TestSimulatorIntegration:
    def test_bursty_workload_runs_and_matches_rate(self):
        from repro.simulator import Simulation, SimulationConfig

        cfg = SimulationConfig(
            k=4,
            message_length=8,
            rate=2e-3,
            warmup_cycles=500,
            measure_cycles=30_000,
            seed=9,
        )
        res = Simulation(
            cfg, arrival_model=OnOffArrivals(2e-3, burstiness=6.0, on_mean=300.0)
        ).run()
        assert res.num_completed > 0
        # Mean generation rate preserved: generated ~ rate * N * cycles.
        expected = 2e-3 * cfg.num_nodes * cfg.measure_cycles
        assert res.num_generated == pytest.approx(expected, rel=0.25)

    def test_bursty_latency_at_least_poisson(self):
        """At moderate load, bursty arrivals cannot *reduce* congestion;
        measured latency must be >= ~the Poisson latency."""
        from repro.simulator import Simulation, SimulationConfig

        cfg = SimulationConfig(
            k=8,
            message_length=16,
            rate=2e-3,
            hotspot_fraction=0.3,
            warmup_cycles=2_000,
            measure_cycles=60_000,
            seed=10,
        )
        poisson = Simulation(cfg).run()
        bursty = Simulation(
            cfg,
            arrival_model=OnOffArrivals(2e-3, burstiness=8.0, on_mean=2_000.0),
        ).run()
        # The comparison is only meaningful below saturation: an aborted
        # (backlogged) run truncates its latency sample arbitrarily.
        assert not poisson.saturated
        assert bursty.mean_latency > 0.9 * poisson.mean_latency
