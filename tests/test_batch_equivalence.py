"""Batched-engine equivalence: N networks per kernel call vs N solo runs.

The batched structure-of-arrays engine is only allowed to be *faster*
than running its member configurations one by one, never different:
every row's :class:`SimulationResult` must equal the solo run bit for
bit — mixed seeds and rates, members retiring at different cycles
(short windows, completion targets, saturation, zero load), adaptive
routing, warmup edge cases — for both the C and the numpy kernel.

A hypothesis property sweeps random batch compositions; pinned cases
keep the matrix covered on --hypothesis-seed reruns.  ``run_batch`` is
the public entry: shape grouping, seed overrides and input-order
results are covered here too, as is the CI acceptance case — a B=8
same-shape batch bit-identical to eight solo runs.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    BatchedSoAEngine,
    Simulation,
    SimulationConfig,
    batch_shape_key,
    run_batch,
)
from repro.simulator.kernel import c_kernel_available
from repro.simulator.network import TorusWorkload
from repro.simulator.sim import _workload_result

BASE = SimulationConfig(
    k=8,
    message_length=16,
    rate=1e-3,
    hotspot_fraction=0.2,
    warmup_cycles=2_000,
    measure_cycles=8_000,
    seed=7,
)


def available_kernels():
    kernels = ["numpy"]
    if c_kernel_available():
        kernels.append("c")
    return kernels


def run_batched(cfgs, kernel):
    workloads = [TorusWorkload(c) for c in cfgs]
    BatchedSoAEngine(workloads, kernel=kernel).run()
    return [_workload_result(w) for w in workloads]


def assert_batch_matches_solo(cfgs, kernels=None):
    solos = [Simulation(c).run() for c in cfgs]
    for kernel in kernels or available_kernels():
        batched = run_batched(cfgs, kernel)
        for i, (solo, batch) in enumerate(zip(solos, batched)):
            assert solo == batch, f"row {i} diverged (kernel={kernel})"


class TestAcceptance:
    def test_b8_same_shape_bit_identical(self):
        """The PR's acceptance gate: B=8, one shape, eight exact matches."""
        cfgs = [replace(BASE, seed=100 + i) for i in range(8)]
        assert_batch_matches_solo(cfgs)


class TestPinnedCompositions:
    def test_mixed_seeds_and_rates(self):
        cfgs = [
            replace(BASE, seed=s, rate=r)
            for s, r in [(1, 1e-3), (2, 3e-3), (3, 5e-4), (4, 2e-3)]
        ]
        assert_batch_matches_solo(cfgs)

    def test_staggered_completion(self):
        """Rows retire at wildly different cycles; survivors must not drift."""
        cfgs = [
            replace(BASE, seed=11, measure_cycles=1_500),
            replace(BASE, seed=12, target_completions=50),
            replace(BASE, seed=13, rate=0.2),  # saturates, backlog exit
            replace(BASE, seed=14),
            replace(BASE, seed=15, rate=1e-5),  # idle fast-forward heavy
            replace(BASE, seed=16, rate=0.0),  # never generates
            replace(BASE, seed=17, buffer_depth=2, message_length=8),
            replace(BASE, seed=18, rate=4e-3),
        ]
        assert_batch_matches_solo(cfgs)

    def test_adaptive_routing(self):
        cfgs = [
            replace(BASE, seed=s, num_vcs=3, routing="adaptive", rate=2e-3)
            for s in (21, 22, 23, 24)
        ]
        assert_batch_matches_solo(cfgs)

    def test_warmup_edges(self):
        cfgs = [
            replace(BASE, seed=31, warmup_cycles=0),
            replace(BASE, seed=32, warmup_cycles=50_000, measure_cycles=1_000),
            replace(BASE, seed=33, warmup_cycles=1),
            replace(BASE, seed=34),
        ]
        assert_batch_matches_solo(cfgs)

    @pytest.mark.skipif(
        not c_kernel_available(), reason="no C compiler available"
    )
    def test_c_and_numpy_batched_agree(self):
        cfgs = [replace(BASE, seed=s) for s in (41, 42, 43)]
        assert run_batched(cfgs, "c") == run_batched(cfgs, "numpy")


@st.composite
def batch_members(draw):
    return [
        replace(
            BASE,
            seed=draw(st.integers(0, 2**16)),
            rate=draw(st.floats(1e-5, 6e-3, allow_nan=False)),
            message_length=draw(st.integers(1, 24)),
            buffer_depth=draw(st.integers(1, 4)),
            hotspot_fraction=draw(st.sampled_from([0.0, 0.2, 0.6])),
            warmup_cycles=draw(st.sampled_from([0, 500])),
            measure_cycles=draw(st.integers(800, 3_000)),
            target_completions=draw(st.sampled_from([None, 40])),
        )
        for _ in range(draw(st.integers(2, 5)))
    ]


class TestEquivalenceProperty:
    @given(cfgs=batch_members())
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_solo(self, cfgs):
        assert_batch_matches_solo(cfgs)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedSoAEngine([])

    def test_mixed_shapes_rejected(self):
        workloads = [
            TorusWorkload(replace(BASE, seed=1)),
            TorusWorkload(replace(BASE, seed=2, k=4)),
        ]
        with pytest.raises(ValueError, match="batch_shape_key"):
            BatchedSoAEngine(workloads)

    def test_stale_workload_rejected(self):
        w = TorusWorkload(replace(BASE, seed=1, measure_cycles=500))
        w.run()
        with pytest.raises(ValueError, match="freshly constructed"):
            BatchedSoAEngine([w, TorusWorkload(replace(BASE, seed=2))])

    def test_reference_engine_rejected(self):
        w = TorusWorkload(replace(BASE, engine="reference"))
        with pytest.raises(TypeError, match="structure-of-arrays"):
            BatchedSoAEngine([w])

    def test_shape_key_fields(self):
        assert batch_shape_key(BASE) == batch_shape_key(
            replace(BASE, seed=9, rate=5e-3, message_length=4)
        )
        assert batch_shape_key(BASE) != batch_shape_key(replace(BASE, k=4))
        assert batch_shape_key(BASE) != batch_shape_key(
            replace(BASE, num_vcs=3)
        )


class TestRunBatch:
    def test_groups_by_shape_and_keeps_order(self):
        cfgs = [
            replace(BASE, seed=1),
            replace(BASE, seed=2, k=4, measure_cycles=2_000),
            replace(BASE, seed=3),
            replace(BASE, seed=4, k=4, measure_cycles=2_000),
            replace(BASE, seed=5, engine="reference", measure_cycles=1_000),
        ]
        results = run_batch(cfgs)
        assert len(results) == len(cfgs)
        solos = [Simulation(c).run() for c in cfgs]
        assert results == solos

    def test_seed_override(self):
        cfgs = [replace(BASE, seed=0)] * 3
        results = run_batch(cfgs, seeds=[51, 52, 53])
        solos = [Simulation(replace(BASE, seed=s)).run() for s in (51, 52, 53)]
        assert results == solos

    def test_seed_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            run_batch([BASE], seeds=[1, 2])

    def test_singleton_runs_solo(self):
        assert run_batch([BASE]) == [Simulation(BASE).run()]
