"""Tests for the deterministic fault-injection harness (repro.faults).

Parsing of ``REPRO_FAULTS`` specs, determinism of the trigger draws, and
each injection site: solver faults become FAILED fixed-point *records*
(scalar and batched, other rows unharmed), cache faults write corrupted
entries that the hardened cache quarantines and recomputes, and the
crash/hang hooks never fire in the parent process.  The distributed
worker kinds (``worker-kill``, ``heartbeat-stall``, ``lease-steal``) are
additionally gated on ``mark_worker_process()`` so they only ever fire
inside a ``repro worker`` process.
"""

import os

import numpy as np
import pytest

import repro.faults as faults
from repro.core.fixed_point import (
    FixedPointSolver,
    FixedPointStatus,
    UpdateFailure,
)
from repro.faults import FaultPlan, FaultSpec, InjectedFault, parse_faults


class TestParse:
    def test_full_spec(self):
        plan = parse_faults("crash:rate=0.2,seed=1;hang:rate=0.1,seed=2,secs=5")
        crash = plan.spec("crash")
        assert crash == FaultSpec(kind="crash", rate=0.2, seed=1)
        hang = plan.spec("hang")
        assert hang.rate == 0.1 and hang.seed == 2 and hang.secs == 5.0
        assert plan.spec("solver") is None

    def test_defaults(self):
        plan = parse_faults("solver")
        assert plan.spec("solver") == FaultSpec(kind="solver")
        assert plan.spec("solver").rate == 1.0

    def test_empty_chunks_ignored(self):
        plan = parse_faults("; solver ;")
        assert plan.spec("solver") is not None

    @pytest.mark.parametrize(
        "raw, match",
        [
            ("explode:rate=0.5", "unknown fault kind"),
            ("crash;crash:rate=0.5", "duplicate"),
            ("crash:frequency=2", "bad parameter"),
            ("crash:rate", "bad parameter"),
            ("crash:rate=often", "must be a number"),
            ("crash:rate=1.5", r"rate must be in \[0, 1\]"),
            ("hang:secs=0", "secs must be positive"),
        ],
    )
    def test_rejects_bad_specs(self, raw, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(raw)

    def test_errors_name_the_env_var(self):
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            parse_faults("explode")


class TestDeterminism:
    def test_draw_is_pure(self):
        spec = FaultSpec(kind="crash", rate=0.5, seed=3)
        a = FaultPlan.draw(spec, 12345, 0)
        b = FaultPlan.draw(spec, 12345, 0)
        assert a == b
        assert 0.0 <= a < 1.0

    def test_draw_varies_with_key_and_seed(self):
        spec_a = FaultSpec(kind="crash", rate=0.5, seed=3)
        spec_b = FaultSpec(kind="crash", rate=0.5, seed=4)
        assert FaultPlan.draw(spec_a, 1) != FaultPlan.draw(spec_a, 2)
        assert FaultPlan.draw(spec_a, 1) != FaultPlan.draw(spec_b, 1)

    def test_trigger_rate_zero_never_fires(self):
        plan = FaultPlan({"crash": FaultSpec(kind="crash", rate=0.0)})
        assert not any(plan.triggers("crash", i) for i in range(100))

    def test_trigger_rate_one_always_fires(self):
        plan = FaultPlan({"crash": FaultSpec(kind="crash", rate=1.0)})
        assert all(plan.triggers("crash", i) for i in range(100))

    def test_trigger_rate_roughly_honoured(self):
        plan = FaultPlan({"crash": FaultSpec(kind="crash", rate=0.3, seed=9)})
        hits = sum(plan.triggers("crash", i) for i in range(2000))
        assert 0.25 < hits / 2000 < 0.35


class TestActivePlan:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.active_plan() is None

    def test_plan_parsed_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "solver:rate=0.5,seed=7")
        plan = faults.active_plan()
        assert plan.spec("solver").seed == 7
        # Cached object for the same raw string.
        assert faults.active_plan() is plan

    def test_crash_hook_inert_in_parent(self, monkeypatch):
        # rate=1 would kill any worker — but this is the parent process,
        # so the hook must be a no-op (no exit, no hang).
        monkeypatch.setenv(faults.ENV_VAR, "crash;hang:secs=60")
        faults.on_point_attempt(123, 0)  # returns: still alive


class TestSolverInjection:
    def _update(self, x):
        return 0.5 * x + 1.0  # contraction with fixed point 2.0

    def _batch_update(self, x, idx):
        return 0.5 * x + 1.0

    def test_scalar_solve_becomes_failed_record(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "solver:rate=1")
        res = FixedPointSolver().solve(self._update, np.zeros(2))
        assert res.status is FixedPointStatus.FAILED
        assert not res.converged
        assert res.residual == np.inf

    def test_scalar_solve_clean_without_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        res = FixedPointSolver().solve(self._update, np.zeros(2))
        assert res.status is FixedPointStatus.CONVERGED

    def test_batch_rows_failed_individually(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "solver:rate=1")
        res = FixedPointSolver().solve_batch(
            self._batch_update, np.zeros((3, 2))
        )
        assert all(s is FixedPointStatus.FAILED for s in res.status)

    def test_injected_fault_is_update_failure(self):
        assert issubclass(InjectedFault, UpdateFailure)

    def test_partial_batch_injection_spares_other_rows(self, monkeypatch):
        # Find a seed whose first 4 draws hit at least one row and spare
        # at least one, then check the spared rows still converge.
        for seed in range(50):
            plan = FaultPlan(
                {"solver": FaultSpec(kind="solver", rate=0.5, seed=seed)}
            )
            hits = [plan.triggers("solver", i) for i in range(4)]
            if any(hits) and not all(hits):
                break
        else:  # pragma: no cover - seed search failed
            pytest.fail("no suitable fault seed found")
        monkeypatch.setenv(
            faults.ENV_VAR, f"solver:rate=0.5,seed={seed}"
        )
        # Reset the per-process call counter so the draws above apply.
        monkeypatch.setattr(faults, "_solver_calls", iter(range(10**9)))
        res = FixedPointSolver().solve_batch(
            self._batch_update, np.zeros((4, 2))
        )
        statuses = list(res.status)
        for flag, status in zip(hits, statuses):
            if flag:
                assert status is FixedPointStatus.FAILED
            else:
                assert status is FixedPointStatus.CONVERGED
        ok = [s is FixedPointStatus.CONVERGED for s in statuses]
        np.testing.assert_allclose(res.states[ok], 2.0, rtol=1e-6)


class TestBatchUpdateFailureIsolation:
    """UpdateFailure raised by a *real* update map (no harness)."""

    def test_raising_row_retired_others_converge(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)

        def update(x, idx):
            if 1 in idx:
                raise UpdateFailure("row 1 is broken")
            return 0.5 * x + 1.0

        res = FixedPointSolver().solve_batch(update, np.zeros((3, 2)))
        assert res.status[1] is FixedPointStatus.FAILED
        assert res.status[0] is FixedPointStatus.CONVERGED
        assert res.status[2] is FixedPointStatus.CONVERGED
        np.testing.assert_allclose(res.states[[0, 2]], 2.0, rtol=1e-6)

    def test_other_exceptions_still_propagate(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)

        def update(x, idx):
            raise RuntimeError("a genuine bug")

        with pytest.raises(RuntimeError, match="genuine bug"):
            FixedPointSolver().solve_batch(update, np.zeros((2, 2)))

    def test_scalar_other_exceptions_propagate(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)

        def update(x):
            raise RuntimeError("a genuine bug")

        with pytest.raises(RuntimeError, match="genuine bug"):
            FixedPointSolver().solve(update, np.zeros(2))


class TestCacheInjection:
    def test_corrupt_cache_body_truncates_when_drawn(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache:rate=1")
        body = '{"schema": 2, "payload": {}}'
        out = faults.corrupt_cache_body("somekey", body)
        assert out != body
        assert len(out) < len(body)

    def test_body_untouched_without_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        body = '{"schema": 2}'
        assert faults.corrupt_cache_body("somekey", body) == body

    def test_cache_faults_quarantined_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import SweepEngine
        from test_sweep_engine import tiny_panel

        spec = tiny_panel(rates=(0.004,))
        kwargs = dict(seed=1, measure_cycles=2_000, warmup_cycles=500)
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        clean = SweepEngine(jobs=1, use_cache=False).run_panel(spec, **kwargs)

        # Every cache write is corrupted; reads must quarantine, results
        # must still be bit-identical to the fault-free run.
        monkeypatch.setenv(faults.ENV_VAR, "cache:rate=1")
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        first = engine.run_panel(spec, **kwargs)
        second = engine.run_panel(spec, **kwargs)
        assert first.simulation == clean.simulation
        assert second.simulation == clean.simulation
        assert list((tmp_path / "corrupt").glob("*.json"))


class TestWorkerFaultKinds:
    """The distributed-backend fault kinds and their process gating."""

    def test_parse_worker_kinds(self):
        plan = parse_faults(
            "worker-kill:rate=0.4,seed=3;"
            "heartbeat-stall:rate=0.2,seed=5,secs=2.5;"
            "lease-steal:rate=0.1,seed=8"
        )
        assert plan.spec("worker-kill").rate == 0.4
        stall = plan.spec("heartbeat-stall")
        assert stall.seed == 5 and stall.secs == 2.5
        assert plan.spec("lease-steal").seed == 8

    def test_hooks_inert_outside_worker_process(self, monkeypatch):
        # rate=1 would fire on every draw — but only processes entered
        # through `repro worker` arm these hooks, so a coordinator (or
        # this pytest process) must survive untouched.
        monkeypatch.setenv(
            faults.ENV_VAR,
            "worker-kill;heartbeat-stall:secs=60;lease-steal",
        )
        assert faults._is_worker_process is False
        faults.maybe_worker_kill(123, 0)  # returns: still alive
        assert faults.heartbeat_stall_secs(123, 0) is None
        assert faults.lease_steal_triggers(123, 0) is False

    def test_hooks_inert_without_plan_even_when_armed(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        monkeypatch.setattr(faults, "_is_worker_process", True)
        faults.maybe_worker_kill(123, 0)
        assert faults.heartbeat_stall_secs(123, 0) is None
        assert faults.lease_steal_triggers(123, 0) is False

    def test_armed_hooks_draw_deterministically(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR,
            "heartbeat-stall:rate=1,secs=3.5;lease-steal:rate=1",
        )
        monkeypatch.setattr(faults, "_is_worker_process", True)
        assert faults.heartbeat_stall_secs(123, 0) == 3.5
        assert faults.lease_steal_triggers(123, 0) is True
        monkeypatch.setenv(
            faults.ENV_VAR,
            "heartbeat-stall:rate=0,secs=3.5;lease-steal:rate=0",
        )
        assert faults.heartbeat_stall_secs(123, 0) is None
        assert faults.lease_steal_triggers(123, 0) is False

    def test_worker_kill_exits_with_crash_code(self, monkeypatch):
        # The kill hook calls os._exit — observe it from outside.
        import subprocess
        import sys

        code = (
            "import repro.faults as faults\n"
            "faults.mark_worker_process()\n"
            "faults.maybe_worker_kill(123, 0)\n"
            "print('survived')\n"
        )
        env = dict(os.environ)
        env[faults.ENV_VAR] = "worker-kill:rate=1"
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True
        )
        assert proc.returncode == faults.CRASH_EXIT_CODE
        assert b"survived" not in proc.stdout
