"""The SoA C-kernel fallback must warn, once, naming the failure.

A missing compiler (or a broken compile) used to degrade silently to the
~4x slower numpy kernel; now :func:`repro.simulator.kernel.load_c_kernel`
emits a single :class:`RuntimeWarning` that names the actual failure.
The explicit ``REPRO_SOA_KERNEL=numpy`` opt-out stays silent, and a
successful compile warns about nothing.
"""

import warnings

import pytest

import repro.simulator.kernel as kernel_mod
from repro.simulator.soa import resolve_soa_kernel


@pytest.fixture
def fresh_loader(tmp_path, monkeypatch):
    """Reset the once-per-process load guard onto a private cache dir."""
    monkeypatch.setattr(kernel_mod, "_loaded", None)
    monkeypatch.setattr(kernel_mod, "_load_attempted", False)
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.delenv("REPRO_SOA_KERNEL", raising=False)
    return tmp_path


def _has_compiler() -> bool:
    return kernel_mod._compiler() is not None


class TestFallbackWarning:
    def test_missing_compiler_warns_once_naming_failure(
        self, fresh_loader, monkeypatch
    ):
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        with pytest.warns(RuntimeWarning, match="no C compiler"):
            assert kernel_mod.load_c_kernel() is None
        # Second call: cached result, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_mod.load_c_kernel() is None

    def test_warning_names_the_numpy_fallback_and_the_opt_out(
        self, fresh_loader, monkeypatch
    ):
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        with pytest.warns(RuntimeWarning) as record:
            kernel_mod.load_c_kernel()
        message = str(record[0].message)
        assert "pure-numpy kernel" in message
        assert "REPRO_SOA_KERNEL=numpy" in message

    @pytest.mark.skipif(not _has_compiler(), reason="needs a C compiler")
    def test_compile_error_warns_with_stderr(self, fresh_loader, monkeypatch):
        monkeypatch.setattr(
            kernel_mod, "C_SOURCE", "int broken( {\n"  # unparsable C
        )
        with pytest.warns(RuntimeWarning, match="compilation failed"):
            assert kernel_mod.load_c_kernel() is None

    @pytest.mark.skipif(not _has_compiler(), reason="needs a C compiler")
    def test_successful_compile_is_silent(self, fresh_loader):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_mod.load_c_kernel() is not None

    def test_explicit_numpy_opt_out_is_silent(self, fresh_loader, monkeypatch):
        # The user asked for the numpy kernel: no compile attempt, no
        # warning — even when no compiler exists.
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        monkeypatch.setenv("REPRO_SOA_KERNEL", "numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_soa_kernel() == "numpy"
