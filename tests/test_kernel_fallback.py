"""The SoA C-kernel fallback must warn, once, naming the failure.

A missing compiler (or a broken compile) used to degrade silently to the
~4x slower numpy kernel; now :func:`repro.simulator.kernel.load_c_kernel`
emits a single :class:`RuntimeWarning` that names the actual failure.
The explicit ``REPRO_SOA_KERNEL=numpy`` opt-out stays silent, and a
successful compile warns about nothing.
"""

import warnings

import pytest

import repro.simulator.kernel as kernel_mod
from repro.simulator.soa import resolve_soa_kernel


@pytest.fixture
def fresh_loader(tmp_path, monkeypatch):
    """Reset the once-per-process load guard onto a private cache dir."""
    monkeypatch.setattr(kernel_mod, "_loaded", None)
    monkeypatch.setattr(kernel_mod, "_load_attempted", False)
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    monkeypatch.delenv("REPRO_SOA_KERNEL", raising=False)
    return tmp_path


def _has_compiler() -> bool:
    return kernel_mod._compiler() is not None


class TestFallbackWarning:
    def test_missing_compiler_warns_once_naming_failure(
        self, fresh_loader, monkeypatch
    ):
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        with pytest.warns(RuntimeWarning, match="no C compiler"):
            assert kernel_mod.load_c_kernel() is None
        # Second call: cached result, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_mod.load_c_kernel() is None

    def test_warning_names_the_numpy_fallback_and_the_opt_out(
        self, fresh_loader, monkeypatch
    ):
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        with pytest.warns(RuntimeWarning) as record:
            kernel_mod.load_c_kernel()
        message = str(record[0].message)
        assert "pure-numpy kernel" in message
        assert "REPRO_SOA_KERNEL=numpy" in message

    @pytest.mark.skipif(not _has_compiler(), reason="needs a C compiler")
    def test_compile_error_warns_with_stderr(self, fresh_loader, monkeypatch):
        monkeypatch.setattr(
            kernel_mod, "C_SOURCE", "int broken( {\n"  # unparsable C
        )
        with pytest.warns(RuntimeWarning, match="compilation failed"):
            assert kernel_mod.load_c_kernel() is None

    @pytest.mark.skipif(not _has_compiler(), reason="needs a C compiler")
    def test_successful_compile_is_silent(self, fresh_loader):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_mod.load_c_kernel() is not None

    def test_explicit_numpy_opt_out_is_silent(self, fresh_loader, monkeypatch):
        # The user asked for the numpy kernel: no compile attempt, no
        # warning — even when no compiler exists.
        monkeypatch.setattr(kernel_mod, "_compiler", lambda: None)
        monkeypatch.setenv("REPRO_SOA_KERNEL", "numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_soa_kernel() == "numpy"


@pytest.mark.skipif(not _has_compiler(), reason="needs a C compiler")
class TestCorruptCacheRecovery:
    """A truncated/garbage cached ``.so`` must quarantine, not poison."""

    def _so_path(self, cache_dir):
        import hashlib

        tag = hashlib.sha256(kernel_mod.C_SOURCE.encode()).hexdigest()[:16]
        return cache_dir / f"repro_soa_{tag}.so"

    def test_corrupt_so_is_quarantined_and_recompiled(self, fresh_loader):
        so_path = self._so_path(fresh_loader)
        so_path.parent.mkdir(parents=True, exist_ok=True)
        so_path.write_bytes(b"not an ELF object")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernel_mod.load_c_kernel() is not None
            assert kernel_mod.load_c_kernel_batch() is not None
        quarantined = so_path.with_suffix(".so.corrupt")
        assert quarantined.exists()
        assert quarantined.read_bytes() == b"not an ELF object"
        # The slot now holds a freshly compiled, loadable object.
        assert so_path.exists()

    def test_fresh_compile_failure_does_not_quarantine(
        self, fresh_loader, monkeypatch
    ):
        # A bad *compile* (no pre-existing .so) is a plain fallback:
        # nothing to quarantine, numpy kernel takes over.
        monkeypatch.setattr(kernel_mod, "C_SOURCE", "int broken( {\n")
        with pytest.warns(RuntimeWarning, match="compilation failed"):
            assert kernel_mod.load_c_kernel() is None
        assert not list(fresh_loader.glob("*.corrupt"))


class TestAtomicWrite:
    def test_write_atomic_replaces_content(self, tmp_path):
        target = tmp_path / "out.c"
        target.write_text("old")
        kernel_mod._write_atomic(target, "new contents")
        assert target.read_text() == "new contents"
        # No stray tmp files left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["out.c"]

    def test_write_atomic_cleans_up_on_failure(self, tmp_path, monkeypatch):
        target = tmp_path / "out.c"

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(kernel_mod.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            kernel_mod._write_atomic(target, "contents")
        assert list(tmp_path.iterdir()) == []
