"""Tests for the n-dimensional extension model (repro.core.ndim)."""

import math

import pytest

from repro.core.model import HotSpotLatencyModel
from repro.core.ndim import NDimHotSpotModel
from repro.traffic.rates import HotSpotRates


class TestHotRates:
    def test_reduces_to_2d_formulas(self):
        """lam^h_{i,j} = lam*h*k^i*(k-j) must equal eqs (6)-(7) at n=2."""
        k, h, lam = 8, 0.3, 0.01
        m = NDimHotSpotModel(k=k, n=2, message_length=16, hotspot_fraction=h)
        ref = HotSpotRates(k=k, rate=lam, hotspot_fraction=h)
        for j in range(1, k + 1):
            assert lam * m.hot_rate(0, j) == pytest.approx(ref.hot_rate_x(j))
            assert lam * m.hot_rate(1, j) == pytest.approx(ref.hot_rate_y(j))

    def test_last_dimension_carries_all_hot_traffic(self):
        m = NDimHotSpotModel(k=4, n=3, message_length=8, hotspot_fraction=0.5)
        # Channel 1 hop upstream in the last dimension sees k^(n-1)*(k-1)
        # source-equivalents = nearly all N-1 nodes.
        assert m.hot_rate(2, 1) == pytest.approx(0.5 * 16 * 3)

    def test_hot_ring_fraction(self):
        m = NDimHotSpotModel(k=4, n=3, message_length=8, hotspot_fraction=0.5)
        assert m.hot_ring_fraction(0) == pytest.approx(1.0)
        assert m.hot_ring_fraction(1) == pytest.approx(1 / 4)
        assert m.hot_ring_fraction(2) == pytest.approx(1 / 16)

    def test_rate_bounds_validated(self):
        m = NDimHotSpotModel(k=4, n=2, message_length=8, hotspot_fraction=0.5)
        with pytest.raises(ValueError):
            m.hot_rate(2, 1)
        with pytest.raises(ValueError):
            m.hot_rate(0, 0)


class TestBehaviour:
    def test_validation(self):
        # k=2 is the hypercube special case and is allowed.
        with pytest.raises(ValueError):
            NDimHotSpotModel(k=1, n=2, message_length=8, hotspot_fraction=0.1)
        with pytest.raises(ValueError):
            NDimHotSpotModel(k=8, n=2, message_length=8, hotspot_fraction=1.0)

    def test_monotone_in_rate(self):
        m = NDimHotSpotModel(k=8, n=2, message_length=16, hotspot_fraction=0.3)
        lats = [m.evaluate(r).latency for r in (0.0002, 0.0005, 0.001)]
        assert all(a < b for a, b in zip(lats, lats[1:]))

    def test_saturates(self):
        m = NDimHotSpotModel(k=8, n=2, message_length=16, hotspot_fraction=0.3)
        assert m.evaluate(0.05).saturated

    def test_saturation_decreases_with_h(self):
        def sat(h):
            m = NDimHotSpotModel(k=8, n=2, message_length=16, hotspot_fraction=h)
            lo, hi = 0.0, 0.05
            for _ in range(30):
                mid = (lo + hi) / 2
                if m.evaluate(mid).saturated:
                    hi = mid
                else:
                    lo = mid
            return hi

        assert sat(0.2) > sat(0.5) > sat(0.8)

    def test_tracks_2d_model(self):
        """The n-dim compression must stay within ~25% of the exact 2-D
        model at light/moderate load."""
        k, lm, h = 8, 16, 0.3
        exact = HotSpotLatencyModel(k=k, message_length=lm, hotspot_fraction=h)
        ndim = NDimHotSpotModel(k=k, n=2, message_length=lm, hotspot_fraction=h)
        for rate in (0.0002, 0.0005, 0.001):
            a = exact.evaluate(rate).latency
            b = ndim.evaluate(rate).latency
            assert b == pytest.approx(a, rel=0.25), rate

    def test_three_dimensions_run(self):
        m = NDimHotSpotModel(k=4, n=3, message_length=8, hotspot_fraction=0.2)
        res = m.evaluate(0.001)
        assert res.finite
        assert res.latency > 8

    def test_zero_load(self):
        m = NDimHotSpotModel(k=6, n=3, message_length=12, hotspot_fraction=0.4)
        res = m.evaluate(0.0)
        assert res.finite and res.iterations == 0

    def test_sweep(self):
        m = NDimHotSpotModel(k=8, n=2, message_length=16, hotspot_fraction=0.3)
        sw = m.sweep([0.0005, 0.05], label="nd")
        assert sw.label == "nd"
        assert sw.points[1].saturated
