"""Acceptance tests: chaos equivalence and crash-safe resume.

The two end-to-end guarantees of the fault-tolerant sweep stack:

* **Chaos equivalence** — a parallel campaign run under injected worker
  crashes and a hung worker (``REPRO_FAULTS``) produces a *bit-identical*
  ``SweepResult`` to the fault-free run, with the injected failures
  visible in the campaign's checkpoint journal and the engine stats.
* **Resumability** — a campaign interrupted partway through, re-run with
  ``resume=True``, restores every checkpointed point from the journal
  (no recomputation) and completes to the fault-free result — even with
  the result cache disabled.

The fault seeds are *searched*, not guessed: the injection draws are
pure SHA-256 functions of (kind, seed, point seed, attempt), so the test
scans for seeds that place a crash on an early point's first attempt, a
hang on the saturating point's first attempt, and nothing anywhere else
— making the chaos deterministic and the assertions exact.
"""

import json

import pytest

import repro.experiments.sweep as sweep_mod
from repro.experiments import SweepEngine, point_seed
from repro.faults import ENV_VAR, FaultPlan, FaultSpec
from test_sweep_engine import tiny_panel

PANEL = "tiny"
RATES = (0.002, 0.01, 0.12, 0.18)  # index 2 is the first saturated rate
BASE_SEED = 7
MAX_RETRIES = 3
FAULT_RATE = 0.3
SIM_KWARGS = dict(seed=BASE_SEED, measure_cycles=3_000, warmup_cycles=500)

POINT_SEEDS = [point_seed(BASE_SEED, PANEL, i) for i in range(len(RATES))]


def _find_crash_seed() -> int:
    """A seed that crashes one of the first two points on attempt 0 only.

    Constraints: at least one of points 0/1 draws a crash on its first
    attempt; points 2/3 never crash (a crash while point 2 hangs would
    charge the hang an attempt and rob the test of its timeout); no
    point crashes on a retry attempt, so every retry succeeds and the
    campaign converges to the fault-free result.
    """
    for seed in range(50_000):
        plan = FaultPlan(
            {"crash": FaultSpec(kind="crash", rate=FAULT_RATE, seed=seed)}
        )
        if not any(plan.triggers("crash", POINT_SEEDS[i], 0) for i in (0, 1)):
            continue
        if any(plan.triggers("crash", POINT_SEEDS[i], 0) for i in (2, 3)):
            continue
        if any(
            plan.triggers("crash", s, a)
            for s in POINT_SEEDS
            for a in range(1, MAX_RETRIES + 1)
        ):
            continue
        return seed
    raise AssertionError("no suitable crash seed in range")  # pragma: no cover


def _find_hang_seed() -> int:
    """A seed that hangs exactly point 2 on attempt 0, nothing else."""
    for seed in range(50_000):
        plan = FaultPlan(
            {"hang": FaultSpec(kind="hang", rate=FAULT_RATE, seed=seed)}
        )
        if not plan.triggers("hang", POINT_SEEDS[2], 0):
            continue
        if any(
            plan.triggers("hang", POINT_SEEDS[i], 0) for i in (0, 1, 3)
        ):
            continue
        if any(
            plan.triggers("hang", s, a)
            for s in POINT_SEEDS
            for a in range(1, MAX_RETRIES + 1)
        ):
            continue
        return seed
    raise AssertionError("no suitable hang seed in range")  # pragma: no cover


class TestChaosEquivalence:
    def test_faulted_campaign_bit_identical_to_fault_free(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_panel(PANEL, rates=RATES)
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = SweepEngine(jobs=2, use_cache=False).run_panel(
            spec, **SIM_KWARGS
        )
        assert not reference.simulation.failures

        crash_seed = _find_crash_seed()
        hang_seed = _find_hang_seed()
        monkeypatch.setenv(
            ENV_VAR,
            f"crash:rate={FAULT_RATE},seed={crash_seed};"
            f"hang:rate={FAULT_RATE},seed={hang_seed},secs=30",
        )
        engine = SweepEngine(
            jobs=2,
            use_cache=True,
            cache_dir=tmp_path,
            max_retries=MAX_RETRIES,
            point_timeout=3.0,
            backoff_base=0.001,
        )
        faulted = engine.run_panel(spec, **SIM_KWARGS)

        # Bit-identical to the fault-free run, no terminal failures.
        assert faulted.simulation == reference.simulation
        assert faulted.model == reference.model

        # The chaos actually happened and was survived.
        assert engine.stats.pool_rebuilds >= 1, "no injected crash fired"
        assert engine.stats.timeouts >= 1, "no injected hang was killed"
        assert engine.stats.retries >= 2
        assert engine.stats.failures == 0

        # ... and is recorded in the campaign journal.
        journals = list(engine.journal_dir().glob("*.jsonl"))
        assert len(journals) == 1
        entries = [
            json.loads(line)
            for line in journals[0].read_text().splitlines()
        ]
        retry_kinds = {
            e["kind"] for e in entries if e.get("event") == "retry"
        }
        assert "worker-crash" in retry_kinds
        assert "timeout" in retry_kinds
        done = [
            e
            for e in entries
            if e.get("event") == "point" and e.get("status") == "done"
        ]
        assert {e["index"] for e in done} >= {0, 1, 2}
        assert not any(
            e.get("status") == "failed"
            for e in entries
            if e.get("event") == "point"
        )


class _CountingSim:
    """In-process Simulation wrapper that counts runs and can interrupt."""

    real = None
    calls = 0
    interrupt_at = None  # 1-based call number to interrupt on

    def __init__(self, cfg):
        cls = type(self)
        cls.calls += 1
        if cls.interrupt_at is not None and cls.calls == cls.interrupt_at:
            raise KeyboardInterrupt
        self._inner = cls.real(cfg)

    def run(self):
        return self._inner.run()


class TestResume:
    def test_interrupted_campaign_resumes_without_recompute(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_panel(PANEL, rates=RATES)
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = SweepEngine(jobs=1, use_cache=False).run_panel(
            spec, **SIM_KWARGS
        )
        n_reference = len(reference.simulation.points)  # 3: stops at sat

        _CountingSim.real = sweep_mod.Simulation
        _CountingSim.calls = 0
        _CountingSim.interrupt_at = 3  # die while computing point 2
        monkeypatch.setattr(sweep_mod, "Simulation", _CountingSim)

        # The cache stays OFF throughout: resume must work from the
        # journal alone.
        engine = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run_panel(spec, **SIM_KWARGS)

        journals = list(engine.journal_dir().glob("*.jsonl"))
        assert len(journals) == 1
        entries = [
            json.loads(line)
            for line in journals[0].read_text().splitlines()
        ]
        done = [e for e in entries if e.get("status") == "done"]
        assert {e["index"] for e in done} == {0, 1}

        # Resume: only the interrupted point is recomputed.
        _CountingSim.calls = 0
        _CountingSim.interrupt_at = None
        resumed = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        ).run_panel(spec, **SIM_KWARGS)
        assert _CountingSim.calls == n_reference - 2
        assert resumed.simulation == reference.simulation

        # A third resumed run recomputes nothing at all.
        _CountingSim.calls = 0
        again = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        ).run_panel(spec, **SIM_KWARGS)
        assert _CountingSim.calls == 0
        assert again.simulation == reference.simulation

    def test_resume_rejects_changed_campaign(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        spec = tiny_panel(PANEL, rates=RATES)
        engine = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        )
        engine.run_panel(spec, **SIM_KWARGS)
        journals = list(engine.journal_dir().glob("*.jsonl"))
        assert len(journals) == 1
        # Same journal file, different campaign: forge the header.
        lines = journals[0].read_text().splitlines()
        header = json.loads(lines[0])
        header["campaign"] = "0" * 16
        journals[0].write_text(
            "\n".join([json.dumps(header)] + lines[1:]) + "\n"
        )
        # The journal path is keyed by campaign id, so simulate the
        # mismatch by pointing the forged file at the current campaign.
        forged = journals[0]
        cfgs_by = {
            spec.name: engine._panel_configs(spec, BASE_SEED, 3_000, 500)
        }
        cid = engine._campaign_id([spec], cfgs_by, BASE_SEED)
        forged.replace(engine.journal_dir() / f"{cid}.jsonl")
        with pytest.raises(ValueError, match="campaign"):
            engine.run_panel(spec, **SIM_KWARGS)

    def test_fresh_run_ignores_stale_journal(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        spec = tiny_panel(PANEL, rates=RATES)
        reference = SweepEngine(jobs=1, use_cache=False).run_panel(
            spec, **SIM_KWARGS
        )
        engine = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        )
        engine.run_panel(spec, **SIM_KWARGS)
        # Without resume, the journal is truncated and everything re-runs.
        _CountingSim.real = sweep_mod.Simulation
        _CountingSim.calls = 0
        _CountingSim.interrupt_at = None
        monkeypatch.setattr(sweep_mod, "Simulation", _CountingSim)
        fresh = SweepEngine(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=False
        ).run_panel(spec, **SIM_KWARGS)
        assert _CountingSim.calls == len(reference.simulation.points)
        assert fresh.simulation == reference.simulation
