"""Tests for the sweep engine (repro.experiments.sweep).

The load-bearing guarantees:

* ``jobs > 1`` produces **bit-identical** results to the sequential
  ``jobs = 1`` path, including the stop-at-first-saturation truncation;
* per-point seeds are deterministic (process- and run-independent);
* the on-disk cache returns exactly what was computed and is bypassed
  cleanly with ``use_cache=False``;
* corrupt, truncated or stale-schema cache entries are quarantined to
  ``corrupt/`` and recomputed — reads never raise;
* a crashing or permanently failing point becomes a structured
  ``PointFailure`` record while every other point survives;
* warm-started model sweeps reproduce the cold curves with strictly
  fewer total fixed-point iterations.
"""

import json
import math
import os
import time

import pytest

import repro.experiments.sweep as sweep_mod
from repro.core.model import HotSpotLatencyModel
from repro.core.uniform import UniformLatencyModel
from repro.experiments import PanelSpec, SweepEngine, get_panel, point_seed


def tiny_panel(name="tiny", rates=(0.002, 0.01, 0.12, 0.18)):
    """A 4x4 panel cheap enough to simulate in-tests.

    The last two rates sit far past the hot-sink bandwidth bound
    (~0.046 messages/cycle/node here), so the simulated sweep exercises
    the stop-at-first-saturation truncation.
    """
    return PanelSpec(
        figure=1,
        name=name,
        k=4,
        message_length=8,
        hotspot_fraction=0.2,
        rates=tuple(rates),
        paper_axis_max_rate=max(rates),
        paper_axis_max_latency=500.0,
    )


class TestDeterminism:
    def test_parallel_bit_identical_to_sequential(self):
        spec = tiny_panel()
        kwargs = dict(seed=7, measure_cycles=3_000, warmup_cycles=500)
        seq = SweepEngine(jobs=1, use_cache=False).run_panel(spec, **kwargs)
        par = SweepEngine(jobs=4, use_cache=False).run_panel(spec, **kwargs)
        assert seq.model == par.model
        assert seq.simulation == par.simulation  # bit-identical points

    def test_stops_at_first_saturation(self):
        spec = tiny_panel()
        result = SweepEngine(jobs=4, use_cache=False).run_panel(
            spec, seed=7, measure_cycles=3_000, warmup_cycles=500
        )
        sim = result.simulation
        assert sim.points[-1].saturated
        assert len(sim.points) < len(spec.rates)
        assert all(not p.saturated for p in sim.points[:-1])

    def test_run_panels_matches_per_panel_runs(self):
        specs = [tiny_panel("tiny_a"), tiny_panel("tiny_b", rates=(0.004, 0.15))]
        kwargs = dict(seed=3, measure_cycles=3_000, warmup_cycles=500)
        engine = SweepEngine(jobs=2, use_cache=False)
        combined = engine.run_panels(specs, **kwargs)
        for spec in specs:
            single = engine.run_panel(spec, **kwargs)
            assert combined[spec.name].model == single.model
            assert combined[spec.name].simulation == single.simulation

    def test_seed_changes_simulation(self):
        spec = tiny_panel(rates=(0.004,))
        engine = SweepEngine(jobs=1, use_cache=False)
        a = engine.run_panel(spec, seed=1, measure_cycles=3_000, warmup_cycles=500)
        b = engine.run_panel(spec, seed=2, measure_cycles=3_000, warmup_cycles=500)
        assert a.simulation != b.simulation


class TestPointSeeds:
    def test_deterministic(self):
        assert point_seed(42, "fig1_h20", 3) == point_seed(42, "fig1_h20", 3)

    def test_distinct_across_index_panel_and_base(self):
        seeds = {
            point_seed(base, panel, i)
            for base in (0, 1)
            for panel in ("fig1_h20", "fig2_h70")
            for i in range(8)
        }
        assert len(seeds) == 2 * 2 * 8

    def test_known_value_pinned(self):
        # Regression pin: the seed derivation is part of the result
        # contract — changing it silently invalidates every cache entry
        # and shifts every simulated curve, so the literal values are
        # asserted here.
        assert point_seed(42, "fig1_h20", 0) == 3531883728933608867
        assert point_seed(42, "fig1_h20", 1) == 9297857992161947417


class TestCache:
    def test_second_run_served_from_cache(self, tmp_path, monkeypatch):
        spec = tiny_panel()
        kwargs = dict(seed=7, measure_cycles=3_000, warmup_cycles=500)
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        first = engine.run_panel(spec, **kwargs)
        assert list(tmp_path.glob("*.json")), "cache must be populated"

        class Boom:
            def __init__(self, *a, **k):
                raise AssertionError("cache miss: simulation was re-run")

        monkeypatch.setattr(sweep_mod, "Simulation", Boom)
        second = engine.run_panel(spec, **kwargs)
        assert second.simulation == first.simulation

    def test_cache_respects_config_changes(self, tmp_path):
        spec = tiny_panel(rates=(0.004,))
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        engine.run_panel(spec, seed=1, measure_cycles=3_000, warmup_cycles=500)
        n = len(list(tmp_path.glob("*.json")))
        engine.run_panel(spec, seed=2, measure_cycles=3_000, warmup_cycles=500)
        assert len(list(tmp_path.glob("*.json"))) == 2 * n

    def test_no_cache_writes_nothing(self, tmp_path):
        spec = tiny_panel(rates=(0.004,))
        engine = SweepEngine(jobs=1, use_cache=False, cache_dir=tmp_path)
        engine.run_panel(spec, seed=1, measure_cycles=3_000, warmup_cycles=500)
        assert not list(tmp_path.glob("*.json"))

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        spec = tiny_panel(rates=(0.004,))
        kwargs = dict(seed=1, measure_cycles=3_000, warmup_cycles=500)
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        first = engine.run_panel(spec, **kwargs)
        for f in tmp_path.glob("*.json"):
            f.write_text("{not json")
        second = engine.run_panel(spec, **kwargs)
        assert second.simulation == first.simulation

    def test_saturated_point_roundtrips(self, tmp_path, monkeypatch):
        spec = tiny_panel(rates=(0.18,))  # deep saturation
        kwargs = dict(seed=1, measure_cycles=3_000, warmup_cycles=500)
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        first = engine.run_panel(spec, **kwargs)
        assert first.simulation.points[0].saturated
        assert math.isinf(first.simulation.points[0].latency)

        class Boom:
            def __init__(self, *a, **k):
                raise AssertionError("cache miss")

        monkeypatch.setattr(sweep_mod, "Simulation", Boom)
        second = engine.run_panel(spec, **kwargs)
        assert second.simulation == first.simulation


class TestCacheHardening:
    """Corrupt entries are quarantined and recomputed, never raised on."""

    def _seed_cache(self, tmp_path):
        spec = tiny_panel(rates=(0.004,))
        kwargs = dict(seed=1, measure_cycles=3_000, warmup_cycles=500)
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        first = engine.run_panel(spec, **kwargs)
        entries = list(tmp_path.glob("*.json"))
        assert entries
        return spec, kwargs, engine, first, entries

    def _assert_recovered(self, tmp_path, spec, kwargs, first, reason):
        engine = SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        second = engine.run_panel(spec, **kwargs)
        assert second.simulation == first.simulation
        quarantined = list((tmp_path / "corrupt").glob(f"*.{reason}.json"))
        assert quarantined, f"expected a .{reason}.json quarantine file"
        # The recomputed entry replaced the corrupt one: a third run is a
        # clean cache hit again.
        third = SweepEngine(
            jobs=1, use_cache=True, cache_dir=tmp_path
        ).run_panel(spec, **kwargs)
        assert third.simulation == first.simulation

    def test_truncated_json(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            f.write_text(f.read_text()[: len(f.read_text()) // 2])
        self._assert_recovered(tmp_path, spec, kwargs, first, "parse")

    def test_wrong_schema_version(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            body = json.loads(f.read_text())
            body["schema"] = 999
            f.write_text(json.dumps(body))
        self._assert_recovered(tmp_path, spec, kwargs, first, "schema")

    def test_legacy_v1_entry_is_stale(self, tmp_path):
        # A pre-hardening cache body (bare payload, no envelope) must be
        # treated as stale schema, not served.
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            f.write_text(
                json.dumps({"rate": 0.004, "latency": 1.0, "saturated": False})
            )
        self._assert_recovered(tmp_path, spec, kwargs, first, "schema")

    def test_checksum_mismatch(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            body = json.loads(f.read_text())
            body["payload"]["latency"] = body["payload"]["latency"] + 1.0
            f.write_text(json.dumps(body))  # stale checksum
        self._assert_recovered(tmp_path, spec, kwargs, first, "checksum")

    def test_non_numeric_fields(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            body = json.loads(f.read_text())
            body["payload"]["latency"] = "fast"
            body["checksum"] = sweep_mod._payload_checksum(body["payload"])
            f.write_text(json.dumps(body))
        self._assert_recovered(tmp_path, spec, kwargs, first, "fields")

    def test_bool_masquerading_as_number_rejected(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            body = json.loads(f.read_text())
            body["payload"]["latency"] = True
            body["checksum"] = sweep_mod._payload_checksum(body["payload"])
            f.write_text(json.dumps(body))
        self._assert_recovered(tmp_path, spec, kwargs, first, "fields")

    def test_get_never_raises_on_garbage(self, tmp_path):
        spec, kwargs, _, first, entries = self._seed_cache(tmp_path)
        for f in entries:
            f.write_bytes(b"\x00\xff\xfe garbage \x80")
        second = SweepEngine(
            jobs=1, use_cache=True, cache_dir=tmp_path
        ).run_panel(spec, **kwargs)
        assert second.simulation == first.simulation


class TestStaleTmpCleanup:
    def test_old_orphan_removed_on_startup(self, tmp_path):
        orphan = tmp_path / "deadbeef.12345.tmp"
        orphan.write_text("half-written entry")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        assert not orphan.exists()

    def test_young_tmp_preserved(self, tmp_path):
        # A young tmp may belong to a concurrently running writer.
        young = tmp_path / "cafebabe.99999.tmp"
        young.write_text("in-progress entry")
        SweepEngine(jobs=1, use_cache=True, cache_dir=tmp_path)
        assert young.exists()

    def test_no_cache_engine_does_not_touch_dir(self, tmp_path):
        orphan = tmp_path / "deadbeef.12345.tmp"
        orphan.write_text("x")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        SweepEngine(jobs=1, use_cache=False, cache_dir=tmp_path)
        assert orphan.exists()


class _FailingSim:
    """Stand-in Simulation that raises on one specific rate."""

    real = None  # patched in by the test
    bad_rate = None

    def __init__(self, cfg):
        self.cfg = cfg

    def run(self):
        if abs(self.cfg.rate - type(self).bad_rate) < 1e-12:
            raise RuntimeError("flaky point")
        return type(self).real(self.cfg).run()


class _CrashingSim(_FailingSim):
    """Stand-in Simulation that kills its worker on one specific rate.

    The short sleep lets concurrently running points finish before the
    pool breaks — a broken pool charges every in-flight task an attempt
    (the culprit cannot be attributed), and this test wants the innocent
    points to complete rather than exhaust their budgets alongside the
    crasher.
    """

    def run(self):
        if abs(self.cfg.rate - type(self).bad_rate) < 1e-12:
            time.sleep(0.3)
            os._exit(1)
        return type(self).real(self.cfg).run()


class TestFailureRecords:
    def test_failed_point_recorded_others_survive(self, monkeypatch):
        spec = tiny_panel()
        _FailingSim.real = sweep_mod.Simulation
        _FailingSim.bad_rate = spec.rates[1]
        monkeypatch.setattr(sweep_mod, "Simulation", _FailingSim)
        engine = SweepEngine(
            jobs=1, use_cache=False, max_retries=1, backoff_base=0.001
        )
        result = engine.run_panel(
            spec, seed=7, measure_cycles=3_000, warmup_cycles=500
        )
        sim = result.simulation
        assert len(sim.failures) == 1
        failure = sim.failures[0]
        assert failure.kind == "exception"
        assert failure.index == 1
        assert failure.rate == spec.rates[1]
        assert failure.attempts == 2
        assert "flaky point" in failure.message
        # The surviving points are exactly the clean run's, minus index 1.
        assert [p.rate for p in sim.points] == [spec.rates[0], spec.rates[2]]
        assert sim.points[-1].saturated
        assert engine.stats.failures == 1
        assert engine.stats.retries == 1

    def test_worker_crash_does_not_discard_finished_points(
        self, tmp_path, monkeypatch
    ):
        # The pre-resilience engine unwrapped future.result() per panel:
        # one dead worker threw away every completed point.  Now the
        # crashing point becomes a PointFailure, every other point
        # survives — and is already in the cache, having been written the
        # moment its future resolved.
        spec = tiny_panel()
        _CrashingSim.real = sweep_mod.Simulation
        _CrashingSim.bad_rate = spec.rates[1]
        monkeypatch.setattr(sweep_mod, "Simulation", _CrashingSim)
        engine = SweepEngine(
            jobs=2,
            use_cache=True,
            cache_dir=tmp_path,
            max_retries=6,
            backoff_base=0.001,
        )
        result = engine.run_panel(
            spec, seed=7, measure_cycles=3_000, warmup_cycles=500
        )
        sim = result.simulation
        assert [f.index for f in sim.failures] == [1]
        assert sim.failures[0].kind == "worker-crash"
        assert engine.stats.pool_rebuilds >= 1
        completed_rates = {p.rate for p in sim.points}
        assert spec.rates[0] in completed_rates
        assert list(tmp_path.glob("*.json")), (
            "completed points must be cached despite the crashes"
        )

        # The undamaged points match a fault-free sequential run.
        monkeypatch.setattr(sweep_mod, "Simulation", _CrashingSim.real)
        clean = SweepEngine(jobs=1, use_cache=False).run_panel(
            spec, seed=7, measure_cycles=3_000, warmup_cycles=500
        )
        clean_by_rate = {p.rate: p for p in clean.simulation.points}
        for p in sim.points:
            assert p == clean_by_rate[p.rate]

    def test_parallel_failure_matches_sequential(self, monkeypatch):
        spec = tiny_panel()
        _FailingSim.real = sweep_mod.Simulation
        _FailingSim.bad_rate = spec.rates[0]
        monkeypatch.setattr(sweep_mod, "Simulation", _FailingSim)
        kwargs = dict(seed=7, measure_cycles=3_000, warmup_cycles=500)
        seq = SweepEngine(
            jobs=1, use_cache=False, max_retries=0
        ).run_panel(spec, **kwargs)
        par = SweepEngine(
            jobs=3, use_cache=False, max_retries=0
        ).run_panel(spec, **kwargs)
        assert seq.simulation == par.simulation
        assert len(seq.simulation.failures) == 1


class TestWarmStart:
    def test_fig1_model_sweep_fewer_iterations(self):
        """Acceptance: a warm-started Figure-1 model sweep spends
        strictly fewer fixed-point iterations than cold starts while
        reproducing the same curve."""
        spec = get_panel("fig1_h20")
        model = HotSpotLatencyModel(
            k=spec.k,
            message_length=spec.message_length,
            hotspot_fraction=spec.hotspot_fraction,
            num_vcs=spec.num_vcs,
        )
        cold = model.sweep(spec.rates, warm_start=False)
        warm = model.sweep(spec.rates, warm_start=True)
        assert warm.total_iterations < cold.total_iterations
        for w, c in zip(warm.points, cold.points):
            assert w.saturated == c.saturated
            if not w.saturated:
                assert w.latency == pytest.approx(c.latency, rel=1e-7)

    def test_evaluate_initial_passthrough(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        cold = model.evaluate(2e-4)
        assert cold.fixed_point_state is not None
        warm = model.evaluate(2e-4, initial=cold.fixed_point_state)
        assert warm.iterations <= 2
        assert warm.latency == pytest.approx(cold.latency, rel=1e-9)

    def test_initial_shape_validated(self):
        import numpy as np

        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        with pytest.raises(ValueError, match="shape"):
            model.evaluate(2e-4, initial=np.zeros(3))

    def test_warm_start_preserves_saturation_classification(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        converged = model.evaluate(2e-4)
        hot_rate = 0.05  # far past saturation
        cold = model.evaluate(hot_rate)
        warm = model.evaluate(hot_rate, initial=converged.fixed_point_state)
        assert cold.saturated and warm.saturated

    def test_uniform_model_warm_start(self):
        model = UniformLatencyModel(k=8, n=2, message_length=16)
        cold = model.evaluate(1e-3)
        warm = model.evaluate(1e-3, initial=cold.fixed_point_state)
        assert warm.iterations <= 2
        assert warm.latency == pytest.approx(cold.latency, rel=1e-9)
        sweep_warm = model.sweep([5e-4, 6e-4, 7e-4], warm_start=True)
        sweep_cold = model.sweep([5e-4, 6e-4, 7e-4], warm_start=False)
        assert sweep_warm.total_iterations < sweep_cold.total_iterations
        for w, c in zip(sweep_warm.points, sweep_cold.points):
            assert w.latency == pytest.approx(c.latency, rel=1e-7)


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepEngine(jobs=0)

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="batch"):
            SweepEngine(batch=0)

    def test_model_only_panel_has_no_simulation(self):
        result = SweepEngine(use_cache=False).run_panel(
            tiny_panel(), simulate=False
        )
        assert result.simulation is None
        assert len(result.model.points) == 4


class TestBatchedSweeps:
    """``batch > 1`` chunks points onto the batched engine, results equal."""

    KWARGS = dict(seed=7, measure_cycles=3_000, warmup_cycles=500)

    def test_sequential_batched_bit_identical(self):
        spec = tiny_panel()
        ref = SweepEngine(jobs=1, use_cache=False).run_panel(spec, **self.KWARGS)
        for batch in (2, 3, 8):
            got = SweepEngine(jobs=1, batch=batch, use_cache=False).run_panel(
                spec, **self.KWARGS
            )
            assert got.simulation == ref.simulation, f"batch={batch}"

    def test_parallel_batched_bit_identical(self):
        spec = tiny_panel()
        ref = SweepEngine(jobs=1, use_cache=False).run_panel(spec, **self.KWARGS)
        got = SweepEngine(jobs=2, batch=2, use_cache=False).run_panel(
            spec, **self.KWARGS
        )
        assert got.simulation == ref.simulation

    def test_batched_run_populates_cache(self, tmp_path, monkeypatch):
        spec = tiny_panel()
        engine = SweepEngine(jobs=1, batch=4, cache_dir=tmp_path)
        first = engine.run_panel(spec, **self.KWARGS)

        def boom(*a, **k):
            raise AssertionError("should have been served from cache")

        monkeypatch.setattr(sweep_mod, "run_batch", boom)
        again = SweepEngine(jobs=1, batch=4, cache_dir=tmp_path).run_panel(
            spec, **self.KWARGS
        )
        assert again.simulation == first.simulation

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", " 6 ")
        assert SweepEngine().batch == 6
        monkeypatch.delenv("REPRO_SIM_BATCH")
        assert SweepEngine().batch == 1
        assert SweepEngine(batch=3).batch == 3

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "many")
        with pytest.raises(ValueError, match="REPRO_SIM_BATCH"):
            SweepEngine()
        monkeypatch.setenv("REPRO_SIM_BATCH", "0")
        with pytest.raises(ValueError, match="REPRO_SIM_BATCH"):
            SweepEngine()

    def test_explicit_batch_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCH", "8")
        assert SweepEngine(batch=2).batch == 2
