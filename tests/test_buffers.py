"""Unit tests for repro.simulator.buffers (VC pools)."""

import pytest

from repro.simulator.buffers import VirtualChannelPool, vc_class_partition


class TestPartition:
    def test_two_vcs(self):
        c0, c1 = vc_class_partition(2)
        assert list(c0) == [0] and list(c1) == [1]

    def test_odd_split_favours_class0(self):
        c0, c1 = vc_class_partition(5)
        assert list(c0) == [0, 1, 2] and list(c1) == [3, 4]

    def test_both_classes_nonempty(self):
        for v in range(2, 9):
            c0, c1 = vc_class_partition(v)
            assert len(c0) >= 1 and len(c1) >= 1
            assert len(c0) + len(c1) == v

    def test_requires_two(self):
        with pytest.raises(ValueError):
            vc_class_partition(1)


class TestPool:
    def test_grant_assigns_free_vc(self):
        pool = VirtualChannelPool(2)
        pool.request(msg_id=7, hop=0, vc_class=0)
        grant = pool.grant_one(0)
        assert grant is not None
        msg_id, hop, vc = grant
        assert (msg_id, hop) == (7, 0)
        assert pool.holders[vc] == 7
        assert pool.busy_count == 1

    def test_grant_respects_class(self):
        pool = VirtualChannelPool(2)
        pool.request(1, 0, vc_class=1)
        assert pool.grant_one(0) is None
        grant = pool.grant_one(1)
        assert grant is not None
        assert grant[2] == 1  # the class-1 VC

    def test_fcfs_within_class(self):
        pool = VirtualChannelPool(4)
        pool.request(1, 0, 0)
        pool.request(2, 0, 0)
        first = pool.grant_one(0)
        second = pool.grant_one(0)
        assert first[0] == 1 and second[0] == 2

    def test_exhaustion_queues(self):
        pool = VirtualChannelPool(2)
        pool.request(1, 0, 0)
        pool.request(2, 0, 0)
        assert pool.grant_one(0) is not None
        assert pool.grant_one(0) is None  # class 0 has a single VC
        assert pool.has_pending()

    def test_release_recycles(self):
        pool = VirtualChannelPool(2)
        pool.request(1, 0, 0)
        _, _, vc = pool.grant_one(0)
        pool.release(vc)
        assert pool.busy_count == 0
        pool.request(2, 0, 0)
        assert pool.grant_one(0) is not None

    def test_double_release_raises(self):
        pool = VirtualChannelPool(2)
        pool.request(1, 0, 0)
        _, _, vc = pool.grant_one(0)
        pool.release(vc)
        with pytest.raises(RuntimeError):
            pool.release(vc)

    def test_busy_vcs_listing(self):
        pool = VirtualChannelPool(3)
        pool.request(5, 2, 0)
        _, _, vc = pool.grant_one(0)
        assert pool.busy_vcs() == [vc]
        assert pool.holder_hops[vc] == 2
