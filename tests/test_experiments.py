"""Tests for the experiment harness (repro.experiments)."""

import math

import pytest

from repro.core.results import SweepPoint, SweepResult
from repro.experiments import (
    ALL_PANELS,
    FIGURE1,
    FIGURE2,
    PanelResult,
    format_panel_table,
    get_panel,
    run_panel,
    run_panel_model_only,
    shape_metrics,
)
from repro.experiments import sim_jobs
from repro.experiments.runner import sim_measure_cycles


class TestPanelSpecs:
    def test_six_panels(self):
        assert len(ALL_PANELS) == 6
        assert set(FIGURE1) == {"fig1_h20", "fig1_h40", "fig1_h70"}
        assert set(FIGURE2) == {"fig2_h20", "fig2_h40", "fig2_h70"}

    def test_paper_parameters(self):
        for spec in ALL_PANELS.values():
            assert spec.k == 16  # N = 256
            assert spec.num_vcs == 2
            assert spec.hotspot_fraction in (0.20, 0.40, 0.70)
        assert all(s.message_length == 32 for s in FIGURE1.values())
        assert all(s.message_length == 100 for s in FIGURE2.values())

    def test_grids_span_paper_axes(self):
        for spec in ALL_PANELS.values():
            assert min(spec.rates) > 0
            assert max(spec.rates) >= spec.paper_axis_max_rate
            assert list(spec.rates) == sorted(spec.rates)

    def test_axis_ordering_matches_paper(self):
        """The paper's axes shrink with h and with Lm."""
        assert (
            FIGURE1["fig1_h20"].paper_axis_max_rate
            > FIGURE1["fig1_h40"].paper_axis_max_rate
            > FIGURE1["fig1_h70"].paper_axis_max_rate
        )
        for h in ("h20", "h40", "h70"):
            assert (
                FIGURE1[f"fig1_{h}"].paper_axis_max_rate
                > FIGURE2[f"fig2_{h}"].paper_axis_max_rate
            )

    def test_get_panel(self):
        assert get_panel("fig1_h20").name == "fig1_h20"
        with pytest.raises(KeyError):
            get_panel("fig3_h10")

    def test_description(self):
        d = get_panel("fig2_h40").description
        assert "Figure 2" in d and "40%" in d and "Lm=100" in d


class TestModelOnlyRuns:
    @pytest.mark.parametrize("name", sorted(ALL_PANELS))
    def test_panel_curve_shape(self, name):
        """Every panel's model curve must rise monotonically and
        saturate within the grid (the paper drew each panel up to its
        saturation region)."""
        result = run_panel_model_only(get_panel(name))
        lats = [p.latency for p in result.model.points]
        finite = [x for x in lats if math.isfinite(x)]
        assert len(finite) >= 3, "grid too coarse at the low end"
        assert all(a < b for a, b in zip(finite, finite[1:]))
        assert result.model.saturation_rate() is not None, (
            "grid must extend past the saturation knee"
        )

    def test_table_formatting(self):
        result = run_panel_model_only(get_panel("fig1_h20"))
        table = format_panel_table(result)
        assert "Figure 1" in table
        assert "saturated" in table
        assert table.count("\n") >= len(result.model.points)


class TestSimulatedRuns:
    def test_small_run_and_metrics(self):
        # Tiny measurement window: checks plumbing, not statistics.
        spec = get_panel("fig1_h70")
        result = run_panel(
            spec, measure_cycles=6_000, warmup_cycles=1_000, seed=5
        )
        assert result.simulation is not None
        assert len(result.simulation.points) >= 1
        m = shape_metrics(result)
        assert m.monotone_model
        rows = result.paired_points()
        assert len(rows) == len(result.model.points)

    def test_shape_metrics_requires_sim(self):
        result = run_panel_model_only(get_panel("fig1_h20"))
        with pytest.raises(ValueError):
            shape_metrics(result)


class TestShapeMetricsUnit:
    def _panel(self, model_pts, sim_pts):
        spec = get_panel("fig1_h20")
        model = SweepResult(label="m", points=model_pts)
        sim = SweepResult(label="s", points=sim_pts)
        return PanelResult(spec=spec, model=model, simulation=sim)

    def test_perfect_agreement(self):
        pts = [
            SweepPoint(rate=r, latency=100 * (i + 1), saturated=False)
            for i, r in enumerate((1e-4, 2e-4, 3e-4))
        ]
        m = shape_metrics(self._panel(pts, list(pts)))
        assert m.mean_rel_error_all == pytest.approx(0.0)
        assert m.monotone_model and m.monotone_sim

    def test_relative_error_computed(self):
        model_pts = [SweepPoint(1e-4, 110.0, False), SweepPoint(2e-4, 220.0, False)]
        sim_pts = [SweepPoint(1e-4, 100.0, False), SweepPoint(2e-4, 200.0, False)]
        m = shape_metrics(self._panel(model_pts, sim_pts))
        assert m.mean_rel_error_all == pytest.approx(0.10)

    def test_saturation_ratio(self):
        model_pts = [SweepPoint(1e-4, 100.0, False), SweepPoint(2e-4, math.inf, True)]
        sim_pts = [SweepPoint(1e-4, 100.0, False), SweepPoint(2e-4, math.inf, True)]
        m = shape_metrics(self._panel(model_pts, sim_pts))
        assert m.saturation_ratio == pytest.approx(1.0)

    def test_non_monotone_detected(self):
        pts = [
            SweepPoint(1e-4, 200.0, False),
            SweepPoint(2e-4, 100.0, False),
        ]
        sim = [SweepPoint(1e-4, 100.0, False), SweepPoint(2e-4, 150.0, False)]
        m = shape_metrics(self._panel(pts, sim))
        assert not m.monotone_model and m.monotone_sim


class TestEnvControls:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CYCLES", raising=False)
        assert sim_measure_cycles(77_000) == 77_000

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "50000")
        assert sim_measure_cycles() == 50_000

    def test_too_small_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "10")
        with pytest.raises(ValueError):
            sim_measure_cycles()

    def test_non_integer_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "fast")
        with pytest.raises(ValueError, match="REPRO_SIM_CYCLES.*'fast'"):
            sim_measure_cycles()

    def test_float_rejected_with_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CYCLES", "2e4")
        with pytest.raises(ValueError, match="REPRO_SIM_CYCLES"):
            sim_measure_cycles()

    def test_jobs_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert sim_jobs() == 1
        assert sim_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert sim_jobs() == 4

    def test_jobs_bad_values_name_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "four")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            sim_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            sim_jobs()
