"""Unit tests for repro.topology.routing (dimension-order + dateline)."""

import itertools

import pytest

from repro.topology import DimensionOrderRouter, KAryNCube


@pytest.fixture
def net():
    return KAryNCube(k=4, n=2)


@pytest.fixture
def router(net):
    return DimensionOrderRouter(net)


class TestRouteCorrectness:
    def test_route_reaches_destination(self, net, router):
        for src in net.nodes():
            for dst in net.nodes():
                if src == dst:
                    continue
                route = router.route(src, dst)
                cur = src
                for hop in route.hops:
                    assert hop.channel.src == cur
                    cur = net.channel_dst(hop.channel)
                assert cur == dst

    def test_route_length_equals_hop_count(self, net, router):
        for src, dst in itertools.product(net.nodes(), repeat=2):
            if src == dst:
                continue
            assert router.route(src, dst).num_hops == router.hop_count(src, dst)

    def test_empty_route_to_self(self, router):
        assert router.route((1, 1), (1, 1)).num_hops == 0

    def test_dimension_order_x_before_y(self, router):
        route = router.route((0, 0), (2, 3))
        dims = [hop.channel.dim for hop in route.hops]
        assert dims == sorted(dims), "dimensions must be crossed in order"
        assert dims == [0, 0, 1, 1, 1]

    def test_next_dim(self, router):
        assert router.next_dim((0, 0), (2, 3)) == 0
        assert router.next_dim((2, 0), (2, 3)) == 1
        assert router.next_dim((2, 3), (2, 3)) is None

    def test_unidirectional_wraps(self, net, router):
        route = router.route((3, 0), (1, 0))
        assert route.num_hops == 2  # 3 -> 0 -> 1 via the wrap-around
        assert [h.channel.src for h in route.hops] == [(3, 0), (0, 0)]


class TestDatelineClasses:
    def test_no_wrap_stays_class0(self, router):
        route = router.route((0, 0), (2, 0))
        assert [h.vc_class for h in route.hops] == [0, 0]

    def test_wrap_switches_to_class1(self, router):
        # 2 -> 3 -> 0 -> 1 in a k=4 ring: the wrap hop (from 3) and the
        # hop after it use class 1.
        route = router.route((2, 0), (1, 0))
        assert [h.vc_class for h in route.hops] == [0, 1, 1]

    def test_class_resets_per_dimension(self, router):
        # Wrap in x, then plain hops in y must start again at class 0.
        route = router.route((3, 0), (0, 2))
        classes_by_dim = {}
        for hop in route.hops:
            classes_by_dim.setdefault(hop.channel.dim, []).append(hop.vc_class)
        assert classes_by_dim[0] == [1]
        assert classes_by_dim[1] == [0, 0]

    def test_classes_monotone_within_dimension(self, router):
        net = KAryNCube(k=6, n=2)
        r = DimensionOrderRouter(net)
        for src, dst in itertools.product(net.nodes(), repeat=2):
            if src == dst:
                continue
            route = r.route(src, dst)
            for dim in range(net.n):
                classes = [
                    h.vc_class for h in route.hops if h.channel.dim == dim
                ]
                assert classes == sorted(classes)

    def test_acyclic_channel_class_dependencies(self):
        """The (channel, class) dependency graph must be acyclic — the
        Dally–Seitz condition for deadlock freedom."""
        import networkx as nx

        net = KAryNCube(k=4, n=2)
        router = DimensionOrderRouter(net)
        g = nx.DiGraph()
        for src, dst in itertools.product(net.nodes(), repeat=2):
            if src == dst:
                continue
            hops = router.route(src, dst).hops
            for a, b in zip(hops, hops[1:]):
                g.add_edge(
                    (a.channel, a.vc_class), (b.channel, b.vc_class)
                )
        assert nx.is_directed_acyclic_graph(g)


class TestBidirectional:
    def test_minimal_direction_chosen(self):
        net = KAryNCube(k=8, n=1, bidirectional=True)
        router = DimensionOrderRouter(net)
        fwd = router.route((1,), (3,))
        assert all(h.channel.direction == +1 for h in fwd.hops)
        bwd = router.route((1,), (7,))
        assert all(h.channel.direction == -1 for h in bwd.hops)
        assert bwd.num_hops == 2

    def test_hop_count_bidirectional(self):
        net = KAryNCube(k=8, n=2, bidirectional=True)
        router = DimensionOrderRouter(net)
        assert router.hop_count((0, 0), (7, 5)) == 1 + 3

    def test_negative_dateline(self):
        net = KAryNCube(k=5, n=1, bidirectional=True)
        router = DimensionOrderRouter(net)
        # 1 -> 0 -> 4 (strictly minimal backwards) crosses the dateline
        # on the 0 -> 4 wrap hop.
        route = router.route((1,), (4,))
        assert [h.channel.src for h in route.hops] == [(1,), (0,)]
        assert [h.vc_class for h in route.hops] == [0, 1]


class TestRouteObject:
    def test_channels_accessor(self, router):
        route = router.route((0, 0), (2, 1))
        assert len(route.channels()) == 3
        assert route.src == (0, 0) and route.dst == (2, 1)

    def test_route_validates_nodes(self, router):
        with pytest.raises(ValueError):
            router.route((0, 4), (1, 1))
