"""Integration: the analytical model must track the flit-level simulator.

These are the library's own miniature versions of the paper's Figures 1-2
validation, on a smaller network (8x8, Lm=16) so they run in CI time.
The full-size panels live in benchmarks/.
"""

import math
from dataclasses import replace

import pytest

from repro.core.model import HotSpotLatencyModel
from repro.core.uniform import UniformLatencyModel
from repro.simulator import Simulation, SimulationConfig

K, LM, H = 8, 16, 0.3
BASE = SimulationConfig(
    k=K,
    n=2,
    message_length=LM,
    rate=1e-3,
    hotspot_fraction=H,
    warmup_cycles=3_000,
    measure_cycles=60_000,
    seed=101,
)


@pytest.fixture(scope="module")
def model():
    return HotSpotLatencyModel(
        k=K, message_length=LM, hotspot_fraction=H, trip_averaging=True
    )


@pytest.fixture(scope="module")
def model_sat(model):
    return model.saturation_rate(hi=0.1)


class TestLightLoadAgreement:
    @pytest.mark.parametrize("frac", [0.2, 0.45])
    def test_latency_within_30_percent(self, model, model_sat, frac):
        """Paper: 'reasonable degree of accuracy in the light and
        moderate load regions'.  We hold ourselves to 30% there."""
        rate = model_sat * frac
        sim = Simulation(replace(BASE, rate=rate)).run()
        assert not sim.saturated
        got = model.evaluate(rate).latency
        assert got == pytest.approx(sim.mean_latency, rel=0.30)

    def test_zero_ish_load_agreement(self, model):
        rate = 2e-4
        sim = Simulation(replace(BASE, rate=rate)).run()
        got = model.evaluate(rate).latency
        assert got == pytest.approx(sim.mean_latency, rel=0.15)


class TestSaturationAgreement:
    def test_saturation_knees_within_factor(self, model, model_sat):
        """The model's saturation point must bracket the simulator's
        within [0.6, 1.4] — 'who saturates, by roughly what factor'."""
        # Simulator saturation via coarse scan.
        sim_sat = None
        for frac in (0.7, 0.85, 1.0, 1.15, 1.3, 1.45):
            res = Simulation(
                replace(BASE, rate=model_sat * frac, measure_cycles=40_000)
            ).run()
            if res.saturated:
                sim_sat = model_sat * frac
                break
        assert sim_sat is not None, "simulator never saturated in the scan"
        assert 0.6 <= model_sat / sim_sat <= 1.4

    def test_latency_blows_up_near_saturation_in_both(self, model, model_sat):
        rate = model_sat * 0.9
        sim = Simulation(replace(BASE, rate=rate)).run()
        low = Simulation(replace(BASE, rate=model_sat * 0.2)).run()
        assert sim.mean_latency > 1.5 * low.mean_latency
        assert model.evaluate(rate).latency > 1.5 * model.evaluate(
            model_sat * 0.2
        ).latency


class TestHotSpotOrdering:
    def test_hot_fraction_ordering_matches(self):
        """Higher h saturates earlier in both model and simulator."""
        sim_lat = {}
        for h in (0.1, 0.5):
            cfg = replace(BASE, hotspot_fraction=h, rate=8e-4)
            sim_lat[h] = Simulation(cfg).run().mean_latency
        assert sim_lat[0.5] > sim_lat[0.1]
        mdl_lat = {
            h: HotSpotLatencyModel(
                k=K, message_length=LM, hotspot_fraction=h, trip_averaging=True
            )
            .evaluate(8e-4)
            .latency
            for h in (0.1, 0.5)
        }
        assert mdl_lat[0.5] > mdl_lat[0.1]

    def test_uniform_baseline_tracks_h0_simulation(self):
        rate = 2e-3
        sim = Simulation(
            replace(BASE, hotspot_fraction=0.0, rate=rate)
        ).run()
        uni = UniformLatencyModel(
            k=K, n=2, message_length=LM, trip_averaging=True
        )
        assert uni.evaluate(rate).latency == pytest.approx(
            sim.mean_latency, rel=0.30
        )
