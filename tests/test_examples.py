"""Smoke tests: every example script runs end-to-end (shrunk via
REPRO_QUICK/REPRO_SIM_CYCLES) and prints its headline output."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ, REPRO_QUICK="1", REPRO_SIM_CYCLES="5000")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "barrier_synchronization.py",
        "cache_coherence.py",
        "model_vs_simulation.py",
        "design_space_sweep.py",
        "bursty_traffic.py",
        "deterministic_vs_adaptive.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "model saturation point" in out
    assert "simulated latency" in out
    assert "relative error" in out


def test_barrier_synchronization():
    out = run_example("barrier_synchronization.py")
    assert "sustainable rate" in out
    assert "throughput ratio" in out
    # The 1/h collapse: ratio printed should be ~2.
    line = [l for l in out.splitlines() if "throughput ratio" in l][0]
    ratio = float(line.split(":")[1].split("(")[0])
    assert 1.5 < ratio < 2.6


def test_cache_coherence():
    out = run_example("cache_coherence.py")
    assert "directory interleaving" in out
    assert "single home node" in out


def test_model_vs_simulation_panel():
    out = run_example("model_vs_simulation.py", "fig1_h70")
    assert "Figure 1" in out
    assert "mean relative error" in out


def test_design_space_sweep():
    out = run_example("design_space_sweep.py")
    assert "Q1" in out and "Q2" in out and "Q3" in out
    assert "sat * Lm" in out


def test_bursty_traffic():
    out = run_example("bursty_traffic.py")
    assert "Poisson (assumption i)" in out
    assert "Pareto" in out


def test_deterministic_vs_adaptive():
    out = run_example("deterministic_vs_adaptive.py")
    assert "uniform traffic" in out
    assert "hot-spot traffic" in out
