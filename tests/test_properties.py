"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.equations import (
    PathProbabilities,
    chained_service_profile,
    hot_y_service_profile,
    regular_service_profile,
)
from repro.queueing.blocking import BlockingInputs, blocking_delay
from repro.queueing.mg1 import mg1_waiting_time
from repro.queueing.vc_multiplexing import (
    multiplexing_degree,
    vc_occupancy_probabilities,
)
from repro.simulator.router import RouteTable
from repro.topology import DimensionOrderRouter, KAryNCube
from repro.traffic.rates import ChannelRates, HotSpotRates

small_k = st.integers(min_value=2, max_value=9)
small_n = st.integers(min_value=1, max_value=4)


class TestTopologyProperties:
    @given(k=small_k, n=small_n, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_rank_unrank_roundtrip(self, k, n, data):
        net = KAryNCube(k=k, n=n)
        rank = data.draw(st.integers(0, net.num_nodes - 1))
        assert net.rank(net.unrank(rank)) == rank

    @given(k=small_k, n=small_n, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_reaches_destination(self, k, n, data):
        net = KAryNCube(k=k, n=n)
        s = data.draw(st.integers(0, net.num_nodes - 1))
        d = data.draw(st.integers(0, net.num_nodes - 1))
        assume(s != d)
        router = DimensionOrderRouter(net)
        src, dst = net.unrank(s), net.unrank(d)
        route = router.route(src, dst)
        cur = src
        for hop in route.hops:
            assert hop.channel.src == cur
            cur = net.channel_dst(hop.channel)
        assert cur == dst
        # Route length is bounded by the diameter and matches distance.
        assert route.num_hops == net.distance(src, dst) <= net.diameter

    @given(k=st.integers(2, 6), n=st.integers(1, 3), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_route_table_consistent_with_router(self, k, n, data):
        net = KAryNCube(k=k, n=n)
        s = data.draw(st.integers(0, net.num_nodes - 1))
        d = data.draw(st.integers(0, net.num_nodes - 1))
        assume(s != d)
        table = RouteTable(net)
        channels, classes = table.route(s, d)
        ref = DimensionOrderRouter(net).route(net.unrank(s), net.unrank(d))
        assert len(channels) == ref.num_hops
        assert classes == [h.vc_class for h in ref.hops]

    @given(k=small_k, n=small_n)
    @settings(max_examples=40, deadline=None)
    def test_dateline_classes_monotone(self, k, n):
        net = KAryNCube(k=k, n=n)
        router = DimensionOrderRouter(net)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, d = rng.integers(0, net.num_nodes, size=2)
            if s == d:
                continue
            route = router.route(net.unrank(int(s)), net.unrank(int(d)))
            for dim in range(n):
                classes = [h.vc_class for h in route.hops if h.channel.dim == dim]
                assert classes == sorted(classes)


class TestQueueingProperties:
    @given(
        lam=st.floats(0, 0.05),
        s=st.floats(1, 200),
        lm=st.floats(1, 128),
    )
    @settings(max_examples=200, deadline=None)
    def test_mg1_nonnegative(self, lam, s, lm):
        w = mg1_waiting_time(lam, s, lm)
        assert w >= 0.0

    @given(
        lam1=st.floats(0.0, 0.01),
        lam2=st.floats(0.0, 0.01),
        s=st.floats(1, 90),
        lm=st.floats(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_mg1_monotone_in_rate(self, lam1, lam2, s, lm):
        lo, hi = sorted((lam1, lam2))
        assert mg1_waiting_time(lo, s, lm) <= mg1_waiting_time(hi, s, lm)

    @given(
        lam=st.floats(0, 0.02),
        gam=st.floats(0, 0.02),
        s_lam=st.floats(0, 40),
        s_gam=st.floats(0, 40),
        lm=st.floats(1, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_blocking_nonnegative_and_saturating(self, lam, gam, s_lam, s_gam, lm):
        b = blocking_delay(BlockingInputs(lam, gam, s_lam, s_gam), lm)
        util = lam * s_lam + gam * s_gam
        if util >= 1.0 and lam + gam > 0:
            assert b == math.inf
        else:
            assert b >= 0.0
            assert math.isfinite(b)

    @given(
        lam=st.floats(0, 0.1),
        s=st.floats(0, 100),
        v=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_vc_probabilities_normalised(self, lam, s, v):
        p = vc_occupancy_probabilities(lam, s, v)
        assert p.shape == (v + 1,)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= -1e-15)

    @given(lam=st.floats(0, 0.1), s=st.floats(0, 100), v=st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_multiplexing_degree_bounds(self, lam, s, v):
        d = multiplexing_degree(lam, s, v)
        assert 1.0 - 1e-12 <= d <= v + 1e-12


class TestEquationProperties:
    @given(k=st.integers(3, 64))
    @settings(max_examples=60, deadline=None)
    def test_path_probabilities_sum_to_one(self, k):
        assert PathProbabilities(k=k).total() == pytest.approx(1.0)

    @given(
        k=st.integers(2, 32),
        b=st.floats(0, 100),
        lm=st.floats(1, 128),
    )
    @settings(max_examples=100, deadline=None)
    def test_regular_profile_monotone_in_j(self, k, b, lm):
        prof = regular_service_profile(k, b, lm)
        assert np.all(np.diff(prof) > 0)
        assert prof[0] == pytest.approx(1 + b + lm)

    @given(
        k=st.integers(2, 32),
        b=st.floats(0, 100),
        entry=st.floats(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_chained_profile_exceeds_entry(self, k, b, entry):
        prof = chained_service_profile(k, b, entry)
        assert np.all(prof > entry)

    @given(k=st.integers(3, 20), lm=st.floats(1, 64), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_hot_profile_monotone_with_any_blocking(self, k, lm, data):
        b = np.array(
            data.draw(
                st.lists(
                    st.floats(0, 50), min_size=k - 1, max_size=k - 1
                )
            )
        )
        prof = hot_y_service_profile(k, b, lm)
        assert np.all(np.diff(prof) > 0)  # farther sources wait longer


class TestRateProperties:
    @given(
        k=st.integers(2, 32),
        rate=st.floats(0, 0.01),
        h=st.floats(0, 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_hot_rates_decrease_with_distance(self, k, rate, h):
        hr = HotSpotRates(k=k, rate=rate, hotspot_fraction=h)
        xs = hr.hot_rates_x()
        ys = hr.hot_rates_y()
        assert np.all(np.diff(xs) <= 0) and np.all(np.diff(ys) <= 0)
        assert xs[-1] == 0.0 and ys[-1] == 0.0
        assert np.all(ys >= xs)  # the ring concentrates k rows

    @given(
        k=st.integers(2, 32),
        n=st.integers(1, 4),
        rate=st.floats(0, 0.01),
        h=st.floats(0, 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_regular_rate_scaling(self, k, n, rate, h):
        cr = ChannelRates(k=k, n=n, rate=rate, hotspot_fraction=h)
        assert cr.regular_rate == pytest.approx(rate * (1 - h) * (k - 1) / 2)
        assert cr.regular_rate <= rate * (k - 1) / 2 + 1e-12
