"""Tests for repro.traffic.rates — the closed forms of eqs 1-9 are proved
against exact route enumeration."""

import numpy as np
import pytest

from repro.topology import Channel, KAryNCube
from repro.traffic.patterns import HotSpotPattern, UniformPattern
from repro.traffic.rates import ChannelRates, HotSpotRates, empirical_channel_rates


class TestChannelRates:
    def test_eq1_mean_hops(self):
        assert ChannelRates(k=16, n=2, rate=1.0, hotspot_fraction=0.0).mean_hops_per_dimension == 7.5

    def test_eq2_mean_message_hops(self):
        cr = ChannelRates(k=8, n=3, rate=1.0, hotspot_fraction=0.0)
        assert cr.mean_message_hops == pytest.approx(3 * 3.5)

    def test_eq3_regular_rate(self):
        cr = ChannelRates(k=16, n=2, rate=0.001, hotspot_fraction=0.2)
        assert cr.regular_rate == pytest.approx(0.001 * 0.8 * 7.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=1, n=2, rate=0.1, hotspot_fraction=0.1),
            dict(k=4, n=0, rate=0.1, hotspot_fraction=0.1),
            dict(k=4, n=2, rate=-0.1, hotspot_fraction=0.1),
            dict(k=4, n=2, rate=0.1, hotspot_fraction=1.2),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChannelRates(**kwargs)


class TestHotSpotRates:
    def test_eq4_eq5_fractions(self):
        hr = HotSpotRates(k=4, rate=0.1, hotspot_fraction=0.5)
        assert hr.p_hx(1) == pytest.approx(3 / 16)
        assert hr.p_hx(4) == 0.0
        assert hr.p_hy(1) == pytest.approx(12 / 16)
        assert hr.p_hy(4) == 0.0

    def test_eq6_eq7_rates(self):
        lam, h, k = 0.01, 0.3, 8
        hr = HotSpotRates(k=k, rate=lam, hotspot_fraction=h)
        for j in range(1, k + 1):
            assert hr.hot_rate_x(j) == pytest.approx(lam * h * (k - j))
            assert hr.hot_rate_y(j) == pytest.approx(lam * h * k * (k - j))

    def test_eq8_eq9_totals(self):
        hr = HotSpotRates(k=8, rate=0.01, hotspot_fraction=0.3)
        assert hr.total_rate_x(2) == pytest.approx(
            hr.channel.regular_rate + hr.hot_rate_x(2)
        )
        assert hr.total_rate_y(2) == pytest.approx(
            hr.channel.regular_rate + hr.hot_rate_y(2)
        )

    def test_j_range_checked(self):
        hr = HotSpotRates(k=8, rate=0.01, hotspot_fraction=0.3)
        with pytest.raises(ValueError):
            hr.p_hx(0)
        with pytest.raises(ValueError):
            hr.hot_rate_y(9)

    def test_vector_forms(self):
        hr = HotSpotRates(k=5, rate=0.02, hotspot_fraction=0.4)
        assert np.allclose(
            hr.hot_rates_x(), [hr.hot_rate_x(j) for j in range(1, 6)]
        )
        assert np.allclose(
            hr.hot_rates_y(), [hr.hot_rate_y(j) for j in range(1, 6)]
        )

    def test_hot_traffic_conservation(self):
        # Total hot y-traversals = lam*h*k * sum_t t for rows at distance
        # t = 1..k-1 (each row's k sources cross t hot-ring channels).
        k, lam, h = 6, 0.05, 0.5
        hr = HotSpotRates(k=k, rate=lam, hotspot_fraction=h)
        expected = lam * h * k * sum(range(1, k))
        assert hr.total_hot_y_traversals() == pytest.approx(expected)

    def test_total_hot_generated(self):
        hr = HotSpotRates(k=4, rate=0.1, hotspot_fraction=0.25)
        assert hr.total_hot_traffic_generated() == pytest.approx(15 * 0.1 * 0.25)


class TestEmpiricalCrossCheck:
    """Prove the closed forms against exact route enumeration."""

    def test_uniform_rates_match_eq3(self):
        net = KAryNCube(k=5, n=2)
        lam = 0.01
        rates = empirical_channel_rates(net, lam, UniformPattern(net))
        # Uniform traffic: every channel carries lam * k-bar * N/(N-1)
        # (the closed form eq 3 normalises over N destinations, the
        # pattern over N-1; both are asserted here).
        n_nodes = net.num_nodes
        expected = lam * (net.k - 1) / 2 * n_nodes / (n_nodes - 1)
        for ch, r in rates.items():
            assert r == pytest.approx(expected), ch

    def test_hotspot_y_rates_match_eq7(self):
        """Hot-ring channel loads equal eq (7) plus the two terms the
        paper's closed form neglects: the uniform background and the hot
        node's own (full-rate uniform) traffic."""
        k, lam, h = 5, 0.01, 0.6
        net = KAryNCube(k=k, n=2)
        pattern = HotSpotPattern(net, h, hotspot_node=(0, 0))
        rates = empirical_channel_rates(net, lam, pattern)
        n_nodes = net.num_nodes
        uniform_bg = lam * (1 - h) * (k - 1) / 2 * n_nodes / (n_nodes - 1)
        for j in range(1, k + 1):
            # Channel j hops from the hot node leaves node (0, k-j).
            ch = Channel(src=(0, (0 - j) % k), dim=1)
            hot_spike = lam * h * k * (k - j)  # eq (7)
            # Hot node surplus: its y-only messages to (0, dy) with
            # dy > k-j cross this channel; it sends at full rate lam
            # uniformly, i.e. lam*h/(N-1) above the background per dest.
            hot_node_surplus = lam * h * (j - 1) / (n_nodes - 1)
            expected = uniform_bg + hot_spike + hot_node_surplus
            assert rates[ch] == pytest.approx(expected), j

    def test_hotspot_x_rates_match_eq6(self):
        k, lam, h = 5, 0.01, 0.6
        net = KAryNCube(k=k, n=2)
        pattern = HotSpotPattern(net, h, hotspot_node=(0, 0))
        rates = empirical_channel_rates(net, lam, pattern)
        n_nodes = net.num_nodes
        uniform_bg = lam * (1 - h) * (k - 1) / 2 * n_nodes / (n_nodes - 1)
        for j in range(1, k + 1):
            for row in range(k):
                ch = Channel(src=((0 - j) % k, row), dim=0)
                hot_spike = lam * h * (k - j)  # eq (6)
                # Hot node surplus appears only on its own row's x
                # channels: dests with dx > k-j, any dy.
                surplus = (
                    lam * h * k * (j - 1) / (n_nodes - 1) if row == 0 else 0.0
                )
                expected = uniform_bg + hot_spike + surplus
                assert rates[ch] == pytest.approx(expected), (j, row)

    def test_hot_node_outgoing_carries_no_hot_traffic(self):
        """The hot node's outgoing y channel carries only uniform
        traffic (plus the hot node's own surplus) — eq (5) gives zero
        hot traffic at j = k."""
        k, lam, h = 4, 0.01, 0.9
        net = KAryNCube(k=k, n=2)
        pattern = HotSpotPattern(net, h, hotspot_node=(0, 0))
        rates = empirical_channel_rates(net, lam, pattern)
        n_nodes = net.num_nodes
        uniform_bg = lam * (1 - h) * (k - 1) / 2 * n_nodes / (n_nodes - 1)
        surplus = lam * h * (k - 1) / (n_nodes - 1)
        got = rates[Channel(src=(0, 0), dim=1)]
        assert got == pytest.approx(uniform_bg + surplus)

    def test_total_traffic_conserved(self):
        # Sum of channel rates == rate * mean route length, exactly.
        net = KAryNCube(k=4, n=2)
        lam = 0.02
        pattern = HotSpotPattern(net, 0.5, hotspot_node=(1, 2))
        rates = empirical_channel_rates(net, lam, pattern)
        total = sum(rates.values())
        # Expected: sum over (s,d) pairs of lam * P(d|s) * hops(s,d)
        from repro.topology.routing import DimensionOrderRouter

        router = DimensionOrderRouter(net)
        expected = 0.0
        for s in range(net.num_nodes):
            probs = pattern.destination_probabilities(s)
            for d in range(net.num_nodes):
                if probs[d]:
                    expected += lam * probs[d] * router.hop_count(
                        net.unrank(s), net.unrank(d)
                    )
        assert total == pytest.approx(expected)
