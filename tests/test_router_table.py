"""Unit tests for repro.simulator.router (rank-level route tables)."""

import itertools

import pytest

from repro.simulator.router import RouteTable
from repro.topology import DimensionOrderRouter, KAryNCube


@pytest.fixture
def net():
    return KAryNCube(k=4, n=2)


@pytest.fixture
def table(net):
    return RouteTable(net)


class TestChannelIds:
    def test_dense_and_invertible(self, net, table):
        seen = set()
        for rank in range(net.num_nodes):
            for dim in range(net.n):
                cid = table.channel_id(rank, dim)
                assert 0 <= cid < table.num_channels
                assert table.channel_owner(cid) == (rank, dim, +1)
                seen.add(cid)
        assert len(seen) == table.num_channels

    def test_bidirectional_ids_dense(self):
        net = KAryNCube(k=4, n=2, bidirectional=True)
        table = RouteTable(net)
        seen = set()
        for rank in range(net.num_nodes):
            for dim in range(net.n):
                for direction in (+1, -1):
                    cid = table.channel_id(rank, dim, direction)
                    assert table.channel_owner(cid) == (rank, dim, direction)
                    seen.add(cid)
        assert len(seen) == table.num_channels == 16 * 2 * 2

    def test_negative_direction_rejected_unidirectional(self, table):
        with pytest.raises(ValueError):
            table.channel_id(0, 0, -1)

    def test_bidirectional_routes_minimal(self):
        net = KAryNCube(k=8, n=2, bidirectional=True)
        table = RouteTable(net)
        from repro.topology import DimensionOrderRouter

        router = DimensionOrderRouter(net)
        for s in range(0, 64, 7):
            for d in range(0, 64, 5):
                if s == d:
                    continue
                channels, classes = table.route(s, d)
                ref = router.route(net.unrank(s), net.unrank(d))
                assert len(channels) == ref.num_hops
                assert classes == [h.vc_class for h in ref.hops]


class TestRoutes:
    def test_matches_coordinate_router(self, net, table):
        router = DimensionOrderRouter(net)
        for s, d in itertools.product(range(net.num_nodes), repeat=2):
            if s == d:
                continue
            channels, classes = table.route(s, d)
            ref = router.route(net.unrank(s), net.unrank(d))
            ref_channels = [
                table.channel_id(net.rank(h.channel.src), h.channel.dim)
                for h in ref.hops
            ]
            ref_classes = [h.vc_class for h in ref.hops]
            assert channels == ref_channels, (s, d)
            assert classes == ref_classes, (s, d)

    def test_self_route_rejected(self, table):
        with pytest.raises(ValueError):
            table.route(3, 3)

    def test_cache_returns_same_object(self, table):
        a = table.route(0, 5)
        b = table.route(0, 5)
        assert a is b

    def test_three_dimensional(self):
        net = KAryNCube(k=3, n=3)
        table = RouteTable(net)
        router = DimensionOrderRouter(net)
        for s, d in itertools.product(range(27), repeat=2):
            if s == d:
                continue
            channels, classes = table.route(s, d)
            ref = router.route(net.unrank(s), net.unrank(d))
            assert len(channels) == ref.num_hops
            assert classes == [h.vc_class for h in ref.hops]
