"""Unit tests for the cycle engine (repro.simulator.engine).

These drive :class:`CycleEngine` with hand-built messages over a tiny
channel space so every timing property is checked against first
principles: per-hop header latency, pipelined streaming, physical-channel
bandwidth sharing, buffer backpressure and wormhole VC holding.
"""

import pytest

from repro.simulator.engine import CycleEngine
from repro.simulator.flit import Message


def make_engine(num_channels=8, num_vcs=2, buffer_depth=4, deliveries=None):
    def on_delivery(msg, cycle):
        if deliveries is not None:
            deliveries.append((msg.msg_id, cycle))

    return CycleEngine(
        num_channels=num_channels,
        num_vcs=num_vcs,
        buffer_depth=buffer_depth,
        on_delivery=on_delivery,
    )


def linear_message(msg_id, channels, length, generated_at=0, src=0, dest=99):
    return Message(
        msg_id=msg_id,
        src=src,
        dest=dest,
        length=length,
        generated_at=generated_at,
        route_channels=list(channels),
        route_classes=[0] * len(channels),
        is_hot=False,
    )


def run_until_done(engine, max_cycles=10_000):
    while engine.messages or engine._arrival_heap:
        engine.step()
        if engine.cycle > max_cycles:
            raise AssertionError("engine did not drain")


class TestSingleMessage:
    def test_zero_load_latency(self):
        """A lone message of L flits over m hops completes at the end of
        cycle g + L + m - 2 (header crosses hop i during cycle g+i, the
        tail trails L-1 cycles behind)."""
        deliveries = []
        engine = make_engine(deliveries=deliveries)
        msg = linear_message(0, channels=[0, 1, 2], length=4, generated_at=0)
        engine.schedule_message(0.0, msg)
        run_until_done(engine)
        assert deliveries == [(0, 0 + 4 + 3 - 2)]

    def test_single_hop_single_flit(self):
        deliveries = []
        engine = make_engine(deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [3], length=1))
        run_until_done(engine)
        assert deliveries == [(0, 0)]

    def test_arrival_time_offsets_start(self):
        deliveries = []
        engine = make_engine(deliveries=deliveries)
        engine.schedule_message(10.2, linear_message(0, [0], length=2, generated_at=10))
        run_until_done(engine)
        # starts at cycle 10, completes at 10 + 2 + 1 - 2 = 11.
        assert deliveries == [(0, 11)]

    def test_counters(self):
        engine = make_engine()
        engine.schedule_message(0.0, linear_message(0, [0, 1], length=3))
        run_until_done(engine)
        assert engine.counters.generated == 1
        assert engine.counters.completed == 1
        assert engine.counters.flit_moves == 6  # 3 flits x 2 channels
        assert engine.channel_flit_counts[0] == 3
        assert engine.channel_flit_counts[1] == 3

    def test_vcs_all_released(self):
        engine = make_engine()
        engine.schedule_message(0.0, linear_message(0, [0, 1, 2], length=5))
        run_until_done(engine)
        for pool in engine.pools:
            assert pool.busy_count == 0
            assert all(h == -1 for h in pool.holders)


class TestBandwidthSharing:
    def test_two_messages_share_one_channel(self):
        """Two concurrent messages (enough VCs) over one channel take
        ~2x the solo time — one flit per physical channel per cycle."""
        deliveries = []
        # V=4 gives two class-0 VCs, so both hold VCs concurrently.
        engine = make_engine(num_vcs=4, deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=8, src=0))
        engine.schedule_message(0.0, linear_message(1, [0], length=8, src=1))
        run_until_done(engine)
        finish = max(c for _, c in deliveries)
        # Solo: 8 flits -> completes cycle 7.  Shared: 16 flits over one
        # channel -> last flit crosses at cycle 15.
        assert finish == 15

    def test_vc_serialisation_with_two_vcs(self):
        """With V=2 (a single class-0 VC) same-class messages serialise:
        the second waits for the first worm to drain."""
        deliveries = []
        engine = make_engine(num_vcs=2, deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=8, src=0))
        engine.schedule_message(0.0, linear_message(1, [0], length=8, src=1))
        run_until_done(engine)
        by_id = dict(deliveries)
        assert by_id[0] == 7
        assert by_id[1] >= by_id[0] + 8

    def test_round_robin_fairness(self):
        deliveries = []
        engine = make_engine(num_vcs=4, deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=6, src=0))
        engine.schedule_message(0.0, linear_message(1, [0], length=6, src=1))
        run_until_done(engine)
        cycles = sorted(c for _, c in deliveries)
        # Fair interleaving: completions one cycle apart, not 6.
        assert cycles[1] - cycles[0] == 1

    def test_disjoint_channels_parallel(self):
        deliveries = []
        engine = make_engine(deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=8, src=0))
        engine.schedule_message(0.0, linear_message(1, [1], length=8, src=1))
        run_until_done(engine)
        assert all(c == 7 for _, c in deliveries)


class TestVirtualChannels:
    def test_vc_exhaustion_blocks_third_message(self):
        """With V=2 (one VC per dateline class) a second class-0 message
        on a channel must wait for the first to drain."""
        deliveries = []
        engine = make_engine(num_vcs=2, deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=4, src=0))
        engine.schedule_message(0.0, linear_message(1, [0], length=4, src=1))
        run_until_done(engine)
        by_id = dict(deliveries)
        # msg 0 holds the only class-0 VC until its tail crosses (cycle
        # 3); msg 1 is granted afterwards and finishes 4+ cycles later.
        assert by_id[1] >= by_id[0] + 4

    def test_four_vcs_allow_two_concurrent_class0(self):
        deliveries = []
        engine = make_engine(num_vcs=4, deliveries=deliveries)
        engine.schedule_message(0.0, linear_message(0, [0], length=4, src=0))
        engine.schedule_message(0.0, linear_message(1, [0], length=4, src=1))
        run_until_done(engine)
        cycles = sorted(c for _, c in deliveries)
        # Both run concurrently, sharing bandwidth: 8 flits -> ~cycle 7.
        assert cycles == [6, 7]

    def test_dateline_class_respected(self):
        engine = make_engine(num_vcs=2)
        msg = Message(
            msg_id=0,
            src=0,
            dest=1,
            length=2,
            generated_at=0,
            route_channels=[0, 1],
            route_classes=[0, 1],
            is_hot=False,
        )
        engine.schedule_message(0.0, msg)
        # Header crosses hop 0 in cycle 0, the hop-1 VC is granted in
        # cycle 1 and must be the class-1 VC (index 1 for V=2).
        engine.step()
        engine.step()
        assert msg.vcs[1] == 1


class TestBackpressure:
    def test_small_buffer_throttles_streaming(self):
        """buffer_depth=1 with next-cycle credits halves throughput."""
        fast, slow = [], []
        e_fast = make_engine(buffer_depth=4, deliveries=fast)
        e_slow = make_engine(buffer_depth=1, deliveries=slow)
        for e in (e_fast, e_slow):
            e.schedule_message(0.0, linear_message(0, [0, 1], length=8))
            run_until_done(e)
        assert fast[0][1] == 0 + 8 + 2 - 2
        # depth 1: downstream hop drains a flit only every other cycle.
        assert slow[0][1] > fast[0][1] + 4

    def test_blocked_header_stalls_upstream(self):
        """A message whose path is blocked by VC exhaustion holds its
        upstream VCs (wormhole), delaying a third message behind it."""
        deliveries = []
        engine = make_engine(num_vcs=2, buffer_depth=2, deliveries=deliveries)
        # msg0 occupies channel 1 (class 0) for a long time.
        engine.schedule_message(0.0, linear_message(0, [1], length=30, src=5))
        # msg1 goes 0 -> 1; its header will wait for channel 1's class-0
        # VC while holding channel 0's.
        engine.schedule_message(1.0, linear_message(1, [0, 1], length=4, src=0))
        # msg2 also needs channel 0 (class 0) and must outwait msg1.
        engine.schedule_message(2.0, linear_message(2, [0], length=4, src=6))
        run_until_done(engine)
        by_id = dict(deliveries)
        assert by_id[0] == 29
        assert by_id[1] > by_id[0]  # unblocked only once msg0 drains
        assert by_id[2] > by_id[1]


class TestEngineSafety:
    def test_past_arrival_rejected(self):
        engine = make_engine()
        engine.step()
        with pytest.raises(ValueError):
            engine.schedule_message(0.0, linear_message(0, [0], 1))

    def test_idle_fast_forward(self):
        engine = make_engine()
        engine.schedule_message(1000.5, linear_message(0, [0], length=1))
        engine.fast_forward_if_idle()
        assert engine.cycle == 1000

    def test_fast_forward_noop_with_messages(self):
        engine = make_engine()
        engine.schedule_message(0.0, linear_message(0, [0], length=3))
        engine.schedule_message(500.0, linear_message(1, [1], length=1, src=1))
        engine.step()
        engine.fast_forward_if_idle()
        assert engine.cycle == 1

    def test_message_requires_route(self):
        with pytest.raises(ValueError):
            linear_message(0, [], length=2)

    def test_route_class_length_mismatch(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1, 2, 0, [0, 1], [0], False)
