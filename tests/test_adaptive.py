"""Tests for minimal adaptive routing with Duato-style escape channels."""

from dataclasses import replace

import pytest

from repro.simulator import Simulation, SimulationConfig
from repro.simulator.buffers import adaptive_partition
from repro.simulator.network import TorusWorkload

BASE = SimulationConfig(
    k=8,
    n=2,
    message_length=16,
    rate=1.5e-3,
    hotspot_fraction=0.3,
    routing="adaptive",
    num_vcs=4,
    warmup_cycles=1_000,
    measure_cycles=25_000,
    seed=31,
)


class TestConfig:
    def test_requires_three_vcs(self):
        with pytest.raises(ValueError):
            replace(BASE, num_vcs=2)

    def test_rejects_bidirectional(self):
        with pytest.raises(ValueError):
            replace(BASE, bidirectional=True)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            replace(BASE, routing="quantum")


class TestPartition:
    def test_escape_plus_adaptive(self):
        e0, e1, ad = adaptive_partition(4)
        assert list(e0) == [0] and list(e1) == [1] and list(ad) == [2, 3]

    def test_needs_three(self):
        with pytest.raises(ValueError):
            adaptive_partition(2)


class TestBehaviour:
    def test_messages_delivered_minimally(self):
        """Adaptive routes are minimal: measured mean hops must equal the
        uniform-traffic expectation exactly like dimension-order."""
        w = TorusWorkload(replace(BASE, hotspot_fraction=0.0))
        w.run()
        n_nodes = BASE.num_nodes
        expected = 2 * (BASE.k - 1) / 2 * n_nodes / (n_nodes - 1)
        assert w.all_stats.mean_hops == pytest.approx(expected, rel=0.05)

    def test_conservation_and_no_vc_leak(self):
        w = TorusWorkload(BASE)
        w.run()
        c = w.engine.counters
        assert c.generated == c.completed + c.backlog
        w._arrivals.clear()
        guard = 0
        while w.engine.messages:
            w.engine.step()
            guard += 1
            assert guard < 100_000, "adaptive network failed to drain"
        assert all(p.busy_count == 0 for p in w.engine.pools)

    def test_deterministic_reproducible(self):
        a = Simulation(BASE).run()
        b = Simulation(BASE).run()
        assert a.mean_latency == b.mean_latency

    def test_no_deadlock_under_heavy_hotspot(self):
        """Past saturation the watchdog would fire on any deadlock; the
        run must instead end via the backlog/drain saturation path."""
        cfg = replace(
            BASE,
            rate=6e-3,
            hotspot_fraction=0.5,
            measure_cycles=30_000,
        )
        res = Simulation(cfg).run()
        assert res.saturated  # overloaded, but alive

    def test_matches_deterministic_at_light_load(self):
        """With idle VCs everywhere, adaptive and deterministic latencies
        coincide (minimal paths, no contention to avoid)."""
        light = replace(BASE, rate=2e-4, hotspot_fraction=0.0,
                        measure_cycles=40_000)
        a = Simulation(light).run()
        d = Simulation(replace(light, routing="deterministic")).run()
        assert a.mean_latency == pytest.approx(d.mean_latency, rel=0.05)

    def test_raises_hotspot_saturation_vs_deterministic(self):
        """Adaptive spreads hot traffic over both of the hot node's
        incoming channels, roughly doubling the sink bandwidth the
        deterministic y-funnel provides."""
        rate = 3e-3  # past the deterministic knee, below the adaptive one
        adaptive = Simulation(replace(BASE, rate=rate, hotspot_fraction=0.4,
                                      measure_cycles=40_000)).run()
        deterministic = Simulation(
            replace(BASE, rate=rate, hotspot_fraction=0.4,
                    routing="deterministic", measure_cycles=40_000)
        ).run()
        assert not adaptive.saturated
        assert deterministic.saturated

    def test_works_with_ejection_modelling(self):
        cfg = replace(BASE, model_ejection=True, measure_cycles=15_000)
        res = Simulation(cfg).run()
        assert res.num_completed > 0
        assert not res.saturated

    def test_hot_messages_classified(self):
        w = TorusWorkload(BASE)
        w.run()
        assert w.hot_stats.count > 0
        assert w.hot_stats.mean >= w.regular_stats.mean * 0.8
