"""Unit tests for repro.topology.kary_ncube."""

import pytest

from repro.topology import Channel, KAryNCube


class TestConstruction:
    def test_basic_sizes(self):
        net = KAryNCube(k=16, n=2)
        assert net.num_nodes == 256
        assert net.num_channels == 512

    def test_hypercube_special_case(self):
        net = KAryNCube(k=2, n=4)
        assert net.num_nodes == 16
        assert net.num_channels == 64

    def test_bidirectional_doubles_channels(self):
        uni = KAryNCube(k=4, n=3)
        bi = KAryNCube(k=4, n=3, bidirectional=True)
        assert bi.num_channels == 2 * uni.num_channels

    @pytest.mark.parametrize("k,n", [(1, 2), (0, 1), (4, 0), (3, -1)])
    def test_invalid_parameters_rejected(self, k, n):
        with pytest.raises(ValueError):
            KAryNCube(k=k, n=n)

    def test_equality_and_hash(self):
        assert KAryNCube(4, 2) == KAryNCube(4, 2)
        assert KAryNCube(4, 2) != KAryNCube(4, 3)
        assert KAryNCube(4, 2) != KAryNCube(4, 2, bidirectional=True)
        assert hash(KAryNCube(4, 2)) == hash(KAryNCube(4, 2))


class TestAddressing:
    def test_rank_unrank_roundtrip(self):
        net = KAryNCube(k=5, n=3)
        for r in range(net.num_nodes):
            assert net.rank(net.unrank(r)) == r

    def test_rank_order_matches_iteration(self):
        net = KAryNCube(k=3, n=2)
        for i, node in enumerate(net.nodes()):
            assert net.rank(node) == i

    def test_rank_most_significant_first(self):
        net = KAryNCube(k=10, n=2)
        assert net.rank((3, 7)) == 37

    def test_rank_rejects_bad_node(self):
        net = KAryNCube(k=4, n=2)
        with pytest.raises(ValueError):
            net.rank((4, 0))
        with pytest.raises(ValueError):
            net.rank((0, 0, 0))

    def test_unrank_range_checked(self):
        net = KAryNCube(k=4, n=2)
        with pytest.raises(ValueError):
            net.unrank(16)
        with pytest.raises(ValueError):
            net.unrank(-1)


class TestNeighbors:
    def test_positive_neighbor(self):
        net = KAryNCube(k=4, n=2)
        assert net.neighbor((1, 2), dim=0) == (2, 2)
        assert net.neighbor((1, 2), dim=1) == (1, 3)

    def test_wraparound(self):
        net = KAryNCube(k=4, n=2)
        assert net.neighbor((3, 3), dim=0) == (0, 3)
        assert net.neighbor((3, 3), dim=1) == (3, 0)

    def test_negative_direction_requires_bidirectional(self):
        uni = KAryNCube(k=4, n=2)
        with pytest.raises(ValueError):
            uni.neighbor((0, 0), dim=0, direction=-1)
        bi = KAryNCube(k=4, n=2, bidirectional=True)
        assert bi.neighbor((0, 0), dim=0, direction=-1) == (3, 0)

    def test_invalid_direction(self):
        net = KAryNCube(k=4, n=2, bidirectional=True)
        with pytest.raises(ValueError):
            net.neighbor((0, 0), dim=0, direction=2)

    def test_invalid_dim(self):
        net = KAryNCube(k=4, n=2)
        with pytest.raises(ValueError):
            net.neighbor((0, 0), dim=2)

    def test_channel_dst(self):
        net = KAryNCube(k=4, n=2)
        ch = Channel(src=(3, 1), dim=0)
        assert net.channel_dst(ch) == (0, 1)

    def test_channel_enumeration_count(self):
        net = KAryNCube(k=3, n=2)
        channels = list(net.channels())
        assert len(channels) == net.num_channels
        assert len(set(channels)) == len(channels)


class TestDistances:
    def test_hops_to_unidirectional(self):
        net = KAryNCube(k=8, n=2)
        assert net.hops_to((1, 0), (5, 0), dim=0) == 4
        assert net.hops_to((5, 0), (1, 0), dim=0) == 4  # wraps: 8 - 4
        assert net.hops_to((2, 2), (2, 9 % 8), dim=1) == (1 - 2) % 8

    def test_distance_is_sum_over_dims(self):
        net = KAryNCube(k=5, n=3)
        assert net.distance((0, 0, 0), (2, 4, 1)) == 2 + 4 + 1

    def test_mean_hops_per_dimension_eq1(self):
        # Eq (1): k-bar = (k-1)/2 for the unidirectional ring.
        for k in (3, 8, 16):
            net = KAryNCube(k=k, n=2)
            assert net.mean_hops_per_dimension == pytest.approx((k - 1) / 2)

    def test_mean_message_hops_eq2(self):
        net = KAryNCube(k=16, n=2)
        assert net.mean_message_hops == pytest.approx(15.0)

    def test_mean_hops_matches_enumeration(self):
        # k-bar is the mean of the per-dimension displacement over a
        # uniform destination choice (0 allowed).
        net = KAryNCube(k=7, n=2)
        displacements = [(d - 0) % 7 for d in range(7)]
        assert net.mean_hops_per_dimension == pytest.approx(
            sum(displacements) / 7
        )

    def test_diameter(self):
        assert KAryNCube(k=16, n=2).diameter == 30
        assert KAryNCube(k=16, n=2, bidirectional=True).diameter == 16

    def test_bidirectional_mean_hops(self):
        net = KAryNCube(k=4, n=2, bidirectional=True)
        # displacements 0,1,2,3 -> min distances 0,1,2,1
        assert net.mean_hops_per_dimension == pytest.approx(4 / 4)


class TestRings:
    def test_ring_of_excludes_dim(self):
        net = KAryNCube(k=4, n=3)
        assert net.ring_of((1, 2, 3), dim=1) == (1, 3)

    def test_ring_nodes(self):
        net = KAryNCube(k=3, n=2)
        nodes = list(net.ring_nodes((2,), dim=0))
        assert nodes == [(0, 2), (1, 2), (2, 2)]

    def test_ring_nodes_validates_id(self):
        net = KAryNCube(k=3, n=2)
        with pytest.raises(ValueError):
            list(net.ring_nodes((1, 2), dim=0))

    def test_is_in_hot_ring_2d(self):
        net = KAryNCube(k=4, n=2)
        hot = (1, 2)
        # Hot y-ring (dim 1) = nodes sharing x coordinate 1.
        assert net.is_in_hot_ring((1, 0), hot, dim=1)
        assert not net.is_in_hot_ring((0, 2), hot, dim=1)

    def test_channel_distance_convention(self):
        # Paper: a channel is j hops away when its source node is j hops
        # upstream; the hot node's own outgoing channel is k hops away.
        net = KAryNCube(k=4, n=2)
        hot = (0, 0)
        ch = Channel(src=(0, 3), dim=1)  # one hop upstream of hot in y
        assert net.channel_distance(ch, hot) == 1
        ch_hot = Channel(src=(0, 0), dim=1)
        assert net.channel_distance(ch_hot, hot) == 4

    def test_ring_partition_covers_network(self):
        net = KAryNCube(k=4, n=2)
        seen = set()
        for ring in range(4):
            seen.update(net.ring_nodes((ring,), dim=0))
        assert len(seen) == net.num_nodes
