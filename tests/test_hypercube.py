"""Tests for the hypercube baseline (repro.core.hypercube) and the k=2
simulator configuration it is validated against."""

import pytest

from repro.core.hypercube import HypercubeHotSpotModel
from repro.simulator import Simulation, SimulationConfig


class TestModelBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            HypercubeHotSpotModel(dimensions=0, message_length=16, hotspot_fraction=0.2)

    def test_node_count(self):
        m = HypercubeHotSpotModel(dimensions=6, message_length=16, hotspot_fraction=0.2)
        assert m.num_nodes == 64

    def test_mean_hops(self):
        m = HypercubeHotSpotModel(dimensions=8, message_length=16, hotspot_fraction=0.2)
        assert m.mean_message_hops == 4.0

    def test_hot_rate_doubles_per_dimension(self):
        """The dimension-i hot-path channel aggregates 2**i sources."""
        m = HypercubeHotSpotModel(dimensions=5, message_length=16, hotspot_fraction=0.5)
        for i in range(5):
            assert m.hot_rate(i) == pytest.approx(0.5 * 2**i)

    def test_monotone_and_saturates(self):
        m = HypercubeHotSpotModel(dimensions=6, message_length=16, hotspot_fraction=0.3)
        lats = [m.evaluate(r).latency for r in (1e-4, 5e-4, 1e-3)]
        assert all(a < b for a, b in zip(lats, lats[1:]))
        assert m.evaluate(0.1).saturated

    def test_saturation_near_last_dimension_bound(self):
        """The last dimension's hot channel carries lam*h*2^(n-1):
        saturation ~ 1/(h*2^(n-1)*(Lm+1))."""
        n, lm, h = 6, 16, 0.3
        m = HypercubeHotSpotModel(dimensions=n, message_length=lm, hotspot_fraction=h)
        bound = 1.0 / (h * 2 ** (n - 1) * (lm + 1))
        sat = m.saturation_rate(hi=0.5)
        assert 0.4 * bound < sat < 1.1 * bound

    def test_more_dimensions_saturate_earlier(self):
        def sat(n):
            return HypercubeHotSpotModel(
                dimensions=n, message_length=16, hotspot_fraction=0.3
            ).saturation_rate(hi=0.5)

        assert sat(4) > sat(6) > sat(8)

    def test_sweep_label(self):
        m = HypercubeHotSpotModel(dimensions=4, message_length=8, hotspot_fraction=0.2)
        sw = m.sweep([1e-3], label="hc")
        assert sw.label == "hc"


class TestAgainstSimulator:
    def test_tracks_k2_simulation(self):
        """Model vs flit-level simulation of the 64-node hypercube
        (k=2, n=6) under hot-spot traffic at moderate load."""
        n, lm, h = 6, 16, 0.3
        model = HypercubeHotSpotModel(dimensions=n, message_length=lm, hotspot_fraction=h)
        rate = 0.4 * model.saturation_rate(hi=0.5)
        cfg = SimulationConfig(
            k=2,
            n=n,
            message_length=lm,
            rate=rate,
            hotspot_fraction=h,
            warmup_cycles=2_000,
            measure_cycles=40_000,
            seed=77,
        )
        sim = Simulation(cfg).run()
        assert not sim.saturated
        got = model.evaluate(rate).latency
        assert got == pytest.approx(sim.mean_latency, rel=0.35)

    def test_simulator_hypercube_hops(self):
        cfg = SimulationConfig(
            k=2,
            n=6,
            message_length=8,
            rate=1e-3,
            warmup_cycles=500,
            measure_cycles=20_000,
            seed=3,
        )
        res = Simulation(cfg).run()
        # Uniform over N-1: E[hops] = (n/2) * N/(N-1).
        assert res.mean_hops == pytest.approx(3.0 * 64 / 63, rel=0.05)
