"""Lease lifecycle, crash-safety and equivalence of the file-queue backend.

Covers the ISSUE-9 satellite edge cases: the double-claim race, lease
expiry under host clock skew (mtime is authoritative, embedded deadlines
are advisory), SIGTERM drain mid-point, speculation where both copies
finish (first-wins, identical payload), the startup stale-file sweep,
and undecodable-lease quarantine.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.backends import FileQueueBackend, LocalPoolBackend, resolve_backend
from repro.backends import filequeue as fq
from repro.backends.worker import FileQueueWorker
from repro.experiments.sweep import SweepEngine, _simulate_point, point_seed
from repro.resilience import ExecutorStats, RetryPolicy
from repro.simulator.config import SimulationConfig
from repro.store import atomic_write_json

from test_sweep_engine import tiny_panel

SIM_KWARGS = dict(seed=7, measure_cycles=3_000, warmup_cycles=500)


def tiny_cfg(rate=0.01, index=0, measure_cycles=3_000):
    return SimulationConfig(
        k=4,
        n=2,
        num_vcs=2,
        message_length=8,
        rate=rate,
        hotspot_fraction=0.2,
        warmup_cycles=500,
        measure_cycles=measure_cycles,
        seed=point_seed(7, "tiny", index),
    )


def make_worker(root, **kw):
    kw.setdefault("poll_interval", 0.05)
    kw.setdefault("heartbeat_interval", 0.3)
    return FileQueueWorker(root, **kw)


def publish_unit(root, uid, cfg, attempt=0):
    atomic_write_json(
        fq.queue_dir(root) / f"{uid}.json",
        {
            "protocol": fq.PROTOCOL_VERSION,
            "unit": uid,
            "mode": "point",
            "attempt": attempt,
            "configs": [asdict(cfg)],
        },
    )


def campaign_leftovers(root):
    """Leaked coordination files after a campaign.

    ``results/`` is excluded here: these tests run workers in-process
    without the coordinator owning them, so a worker finishing a
    retracted/duplicate unit may legitimately publish just after the
    coordinator returned (the next campaign's startup clears it).  The
    spawned-fleet chaos test asserts the full zero-leak guarantee,
    results included.
    """
    root = Path(root)
    return (
        list(root.glob("queue/*"))
        + list(root.glob("leases/*"))
        + list(root.rglob("*.tmp"))
    )


class TestClaiming:
    def test_double_claim_race_one_winner(self, tmp_path):
        """N simultaneous claimers of one lease: exactly one O_EXCL win."""
        fq.ensure_layout(tmp_path)
        lease = fq.leases_dir(tmp_path) / "unit.lease"
        wins = []
        barrier = threading.Barrier(8)

        def contend(i):
            barrier.wait()
            if fq.try_claim(lease, {"worker": f"w{i}"}):
                wins.append(i)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        payload = fq.read_json(lease)
        assert payload == {"worker": f"w{wins[0]}"}

    def test_two_workers_one_queue_entry(self, tmp_path):
        """Worker-level double claim: the loser sees the lease and skips."""
        fq.ensure_layout(tmp_path)
        publish_unit(tmp_path, "u-0", tiny_cfg())
        w1 = make_worker(tmp_path, worker_id="w1")
        w2 = make_worker(tmp_path, worker_id="w2")
        claim1 = w1._claim_next()
        claim2 = w2._claim_next()
        assert claim1 is not None
        assert claim2 is None
        _, body, lease = claim1
        assert body["unit"] == "u-0"
        assert fq.read_json(lease)["worker"] == "w1"

    def test_claim_released_when_unit_retracted(self, tmp_path):
        """Winning the lease of a just-retracted unit releases it again."""
        fq.ensure_layout(tmp_path)
        publish_unit(tmp_path, "u-0", tiny_cfg())
        worker = make_worker(tmp_path, worker_id="w1")
        real_read = fq.read_json
        calls = []

        def racing_read(path):
            # Retract the queue file between the worker's pre-claim read
            # and its post-claim authoritative re-read.
            body = real_read(path)
            calls.append(Path(path).name)
            if len(calls) == 2:
                return None
            return body

        import repro.backends.worker as worker_mod

        try:
            worker_mod.read_json = racing_read
            assert worker._claim_next() is None
        finally:
            worker_mod.read_json = fq.read_json
        assert not list(fq.leases_dir(tmp_path).glob("*.lease"))

    def test_undecodable_lease_does_not_crash_claimer(self, tmp_path):
        """A corrupt lease file is skipped (never decoded) by claimers."""
        fq.ensure_layout(tmp_path)
        publish_unit(tmp_path, "u-0", tiny_cfg())
        (fq.leases_dir(tmp_path) / "u-0.lease").write_bytes(b"\xff\x00garbage")
        worker = make_worker(tmp_path, worker_id="w1")
        assert worker._claim_next() is None  # lease exists -> skip, no raise

    def test_release_lease_respects_ownership(self, tmp_path):
        fq.ensure_layout(tmp_path)
        lease = fq.leases_dir(tmp_path) / "u.lease"
        assert fq.try_claim(lease, {"worker": "other"})
        assert not fq.release_lease(lease, "me")
        assert lease.exists()
        assert fq.release_lease(lease, "other")
        assert not lease.exists()


class TestStaleSweep:
    def test_startup_sweep_clears_stale_keeps_fresh(self, tmp_path):
        fq.ensure_layout(tmp_path)
        old = time.time() - 7200
        stale_lease = fq.leases_dir(tmp_path) / "old.lease"
        stale_lease.write_text(json.dumps({"worker": "dead"}))
        os.utime(stale_lease, (old, old))
        fresh_lease = fq.leases_dir(tmp_path) / "new.lease"
        fresh_lease.write_text(json.dumps({"worker": "alive"}))
        stale_hb = fq.heartbeats_dir(tmp_path) / "dead.json"
        stale_hb.write_text("{}")
        os.utime(stale_hb, (old, old))
        stale_tmp = fq.results_dir(tmp_path) / "orphan.1234.0.tmp"
        stale_tmp.write_text("half-written")
        os.utime(stale_tmp, (old, old))
        bad_lease = fq.leases_dir(tmp_path) / "bad.lease"
        bad_lease.write_bytes(b"\xffnot-json")
        os.utime(bad_lease, (old, old))

        counts = fq.sweep_stale(
            tmp_path, lease_timeout=60.0, heartbeat_timeout=15.0
        )
        assert counts == {"leases": 1, "heartbeats": 1, "tmp": 1, "quarantined": 1}
        assert not stale_lease.exists()
        assert fresh_lease.exists()  # young: may belong to a live campaign
        assert not stale_hb.exists()
        assert not stale_tmp.exists()
        # Undecodable lease is quarantined for inspection, not deleted.
        assert not bad_lease.exists()
        assert list(fq.corrupt_dir(tmp_path).glob("bad.lease.*"))

    def test_young_undecodable_lease_kept(self, tmp_path):
        """A fresh undecodable lease may be a claim mid-write: keep it."""
        fq.ensure_layout(tmp_path)
        bad = fq.leases_dir(tmp_path) / "young.lease"
        bad.write_bytes(b"\xffnot-json")
        counts = fq.sweep_stale(tmp_path)
        assert counts["quarantined"] == 0
        assert bad.exists()


class TestCoordinator:
    def run_backend(self, backend, tasks, **kw):
        stats = ExecutorStats()
        policy = kw.pop("policy", RetryPolicy(max_retries=2, backoff_base=0.01))
        out = {}

        def target():
            out["result"] = backend.run(
                _simulate_point, tasks, policy=policy, stats=stats, **kw
            )

        thread = threading.Thread(target=target)
        thread.start()
        return thread, out, stats

    def test_lease_expiry_mtime_beats_embedded_deadline(self, tmp_path):
        """Clock-skew robustness: a refreshed lease with a *past* embedded
        deadline is kept; only a stale mtime expires a lease."""
        backend = FileQueueBackend(
            tmp_path,
            lease_timeout=1.0,
            heartbeat_timeout=30.0,
            poll_interval=0.05,
            clock_skew=0.25,
            speculate_factor=None,
        )
        cfg = tiny_cfg()
        thread, out, stats = self.run_backend(backend, {("p", 0): (cfg,)})
        try:
            deadline = time.time() + 10.0
            queue_file = None
            while queue_file is None and time.time() < deadline:
                entries = list(fq.queue_dir(tmp_path).glob("*.json"))
                if entries:
                    queue_file = entries[0]
                time.sleep(0.02)
            assert queue_file is not None
            lease = fq.lease_path_for(queue_file)
            # Claim with a deadline hours in the past — a worker whose
            # wall clock is skewed far behind the coordinator's.
            assert fq.try_claim(
                lease, {"worker": "skewed", "deadline": time.time() - 3600}
            )
            # Refresh mtime well past lease_timeout + clock_skew.
            hold_until = time.time() + 2.0
            while time.time() < hold_until:
                os.utime(lease)
                time.sleep(0.1)
            assert stats.timeouts == 0  # never expired while refreshed
            assert fq.read_json(queue_file)["attempt"] == 0
            # Stop refreshing: now the mtime goes stale and the unit is
            # requeued, charged as a lease expiry.
            expire_by = time.time() + 10.0
            while stats.timeouts == 0 and time.time() < expire_by:
                time.sleep(0.05)
            assert stats.timeouts >= 1
            assert stats.retries >= 1
            # A worker picks the republished unit up and finishes.
            worker = make_worker(tmp_path, worker_id="rescuer")
            wt = threading.Thread(target=worker.run)
            wt.start()
            thread.join(timeout=30.0)
            worker.request_stop()
            wt.join(timeout=10.0)
            assert not thread.is_alive()
        finally:
            thread.join(timeout=30.0)
        results, failures = out["result"]
        assert failures == {}
        assert results[("p", 0)] == _simulate_point(cfg)
        assert campaign_leftovers(tmp_path) == []

    def test_speculation_both_copies_finish_first_wins(self, tmp_path):
        """A straggler gets a speculative duplicate; both finish; payloads
        are identical and the campaign consumes exactly one."""
        backend = FileQueueBackend(
            tmp_path,
            lease_timeout=60.0,
            heartbeat_timeout=60.0,
            poll_interval=0.05,
            speculate_factor=1.0,
            speculate_min_seconds=0.3,
        )
        cfg_fast = tiny_cfg(rate=0.002, index=0)
        cfg_slow = tiny_cfg(rate=0.01, index=1)
        tasks = {("p", 0): (cfg_fast,), ("p", 1): (cfg_slow,)}
        worker = make_worker(tmp_path, worker_id="fleet")
        thread, out, stats = self.run_backend(backend, tasks)
        wt = None
        try:
            # Find the slow unit's queue entry and squat on its lease —
            # the straggling original copy.
            deadline = time.time() + 10.0
            slow_qf = None
            while slow_qf is None and time.time() < deadline:
                for qf in fq.queue_dir(tmp_path).glob("*.json"):
                    body = fq.read_json(qf)
                    if body and body["configs"][0]["rate"] == cfg_slow.rate:
                        slow_qf = qf
                time.sleep(0.02)
            assert slow_qf is not None
            uid = fq.read_json(slow_qf)["unit"]
            lease = fq.lease_path_for(slow_qf)
            assert fq.try_claim(lease, {"worker": "straggler", "unit": uid})
            # Let the fleet worker finish the fast unit (establishing a
            # duration median) and then claim the speculative copy.
            wt = threading.Thread(target=worker.run)
            wt.start()
            # Hold the lease (alive, just slow) until the speculative
            # copy is issued — or until the unit resolves, which means
            # the spec copy was already claimed, computed and retracted
            # between our polls (the coordinator breaks our lease then).
            spec_by = time.time() + 20.0
            spec_qf = fq.queue_dir(tmp_path) / f"{uid}.spec.json"
            while not spec_qf.exists() and time.time() < spec_by:
                try:
                    os.utime(lease)
                except FileNotFoundError:
                    break  # unit resolved via the speculative copy
                time.sleep(0.05)
            # The straggler finally finishes too: identical payload by
            # determinism, atomically renamed over whichever copy won.
            point = _simulate_point(cfg_slow)
            atomic_write_json(
                fq.results_dir(tmp_path) / f"{uid}.json",
                {
                    "protocol": fq.PROTOCOL_VERSION,
                    "unit": uid,
                    "attempt": 0,
                    "worker": "straggler",
                    "status": "ok",
                    "points": [
                        {
                            "rate": point.rate,
                            "latency": point.latency,
                            "saturated": point.saturated,
                        }
                    ],
                },
            )
            fq.release_lease(lease, "straggler")
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        finally:
            worker.request_stop()
            if wt is not None:
                wt.join(timeout=10.0)
            thread.join(timeout=30.0)
        results, failures = out["result"]
        assert failures == {}
        # Both copies' payloads are the same deterministic point.
        assert results[("p", 0)] == _simulate_point(cfg_fast)
        assert results[("p", 1)] == _simulate_point(cfg_slow)
        assert stats.submitted == 3  # two units + one speculative copy
        assert stats.completed == 2
        assert stats.retries == 0  # speculation is not a charged attempt
        assert campaign_leftovers(tmp_path) == []


class TestWorkerDrain:
    def test_sigterm_drains_mid_point(self, tmp_path):
        """SIGTERM mid-compute: the worker finishes and publishes the
        current unit, leaves the rest unclaimed, and deregisters."""
        fq.ensure_layout(tmp_path)
        atomic_write_json(
            fq.meta_path(tmp_path),
            {"protocol": fq.PROTOCOL_VERSION, "store": None},
        )
        # First (sorted) unit is slow enough to catch mid-compute.
        publish_unit(
            tmp_path, "u-00", tiny_cfg(rate=0.01, index=0, measure_cycles=150_000)
        )
        for i in range(1, 4):
            publish_unit(tmp_path, f"u-{i:02d}", tiny_cfg(rate=0.002, index=i))
        src_root = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(tmp_path),
                "--id",
                "drainee",
                "--poll",
                "0.05",
                "--heartbeat",
                "0.3",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            lease = fq.leases_dir(tmp_path) / "u-00.lease"
            deadline = time.time() + 30.0
            while not lease.exists() and time.time() < deadline:
                time.sleep(0.005)
            assert lease.exists(), "worker never claimed the slow unit"
            time.sleep(0.05)  # let the compute start (claim->run is <1ms)
            result = fq.results_dir(tmp_path) / "u-00.json"
            assert not result.exists(), "too late: unit already finished"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        # The in-flight unit was finished and published, not abandoned.
        payload = fq.read_json(fq.results_dir(tmp_path) / "u-00.json")
        assert payload is not None and payload["status"] == "ok"
        assert payload["worker"] == "drainee"
        # Remaining units left unclaimed for other workers; no leases,
        # no heartbeat (deregistered).
        assert len(list(fq.queue_dir(tmp_path).glob("*.json"))) >= 1
        assert list(fq.leases_dir(tmp_path).glob("*.lease")) == []
        assert list(fq.heartbeats_dir(tmp_path).glob("*.json")) == []
        assert "1 unit(s) completed" in out


class TestEngineIntegration:
    def test_engine_default_backend_is_local(self):
        engine = SweepEngine(jobs=3)
        assert isinstance(engine.backend, LocalPoolBackend)
        assert engine.backend.jobs == 3
        assert engine.backend.name == "local"

    def test_backend_env_var(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", f"file:{tmp_path}")
        engine = SweepEngine()
        assert isinstance(engine.backend, FileQueueBackend)
        assert engine.backend.root == tmp_path

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("carrier-pigeon")
        with pytest.raises(ValueError, match="file:<campaign-dir>"):
            resolve_backend("file")
        with pytest.raises(ValueError, match="takes no argument"):
            resolve_backend("local:extra")

    def test_file_backend_campaign_matches_local(self, tmp_path, monkeypatch):
        """Engine-level equivalence: file-queue campaign == jobs=1 run."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        spec = tiny_panel()
        baseline = SweepEngine(jobs=1, use_cache=False).run_panel(
            spec, simulate=True, **SIM_KWARGS
        )
        campaign = tmp_path / "campaign"
        backend = FileQueueBackend(
            campaign,
            lease_timeout=30.0,
            heartbeat_timeout=30.0,
            poll_interval=0.05,
            speculate_factor=None,
        )
        worker = make_worker(campaign)
        wt = threading.Thread(target=worker.run)
        wt.start()
        try:
            result = SweepEngine(use_cache=False, backend=backend).run_panel(
                spec, simulate=True, **SIM_KWARGS
            )
        finally:
            worker.request_stop()
            wt.join(timeout=30.0)
        assert [
            (p.rate, p.latency, p.saturated) for p in result.simulation.points
        ] == [
            (p.rate, p.latency, p.saturated) for p in baseline.simulation.points
        ]
        assert result.simulation.failures == []
        assert campaign_leftovers(campaign) == []
