"""Tests for the ASCII chart renderer (repro.viz)."""

import math

import pytest

from repro.core.results import SweepPoint, SweepResult
from repro.viz import ascii_plot, plot_sweeps


class TestAsciiPlot:
    def test_basic_render(self):
        chart = ascii_plot({"m": [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]})
        assert "o" in chart
        assert "latency (cycles)" in chart
        assert "traffic (messages/cycle)" in chart

    def test_marker_per_series(self):
        chart = ascii_plot(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 3)]}
        )
        assert "o a" in chart and "x b" in chart
        assert "o" in chart and "x" in chart

    def test_nonfinite_dropped(self):
        chart = ascii_plot({"m": [(0.0, 1.0), (1.0, math.inf), (2.0, 3.0)]})
        assert "(no finite" not in chart

    def test_all_nonfinite(self):
        chart = ascii_plot({"m": [(0.0, math.inf)]})
        assert "no finite" in chart

    def test_y_cap_clips(self):
        capped = ascii_plot({"m": [(0, 10), (1, 1e6)]}, y_cap=100.0)
        assert "100" in capped
        assert "1e+06" not in capped

    def test_size_validated(self):
        with pytest.raises(ValueError):
            ascii_plot({"m": [(0, 1)]}, width=4)
        with pytest.raises(ValueError):
            ascii_plot({"m": [(0, 1)]}, height=2)

    def test_constant_series(self):
        chart = ascii_plot({"m": [(0.0, 5.0), (1.0, 5.0)]})
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_plot({"m": [(0, 1), (1, 2)]}, width=40, height=10)
        lines = chart.splitlines()
        # header + height rows + axis + labels
        assert len(lines) == 1 + 10 + 2


class TestPlotSweeps:
    def test_sweep_plot(self):
        sweep = SweepResult(
            label="model",
            points=[
                SweepPoint(1e-4, 50.0, False),
                SweepPoint(2e-4, 80.0, False),
                SweepPoint(3e-4, math.inf, True),
            ],
        )
        chart = plot_sweeps([sweep])
        assert "model" in chart

    def test_two_sweeps(self):
        a = SweepResult("model", [SweepPoint(1e-4, 50.0, False)])
        b = SweepResult("sim", [SweepPoint(1e-4, 45.0, False)])
        chart = plot_sweeps([a, b])
        assert "model" in chart and "sim" in chart
