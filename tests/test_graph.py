"""Unit tests for repro.topology.graph (networkx views and metrics)."""

import pytest

from repro.topology import KAryNCube
from repro.topology.graph import (
    average_distance,
    bisection_channel_count,
    diameter,
    to_networkx,
)


class TestExport:
    def test_node_and_edge_counts(self):
        net = KAryNCube(k=4, n=2)
        g = to_networkx(net)
        assert g.number_of_nodes() == 16
        assert g.number_of_edges() == 32

    def test_edge_attributes(self):
        net = KAryNCube(k=3, n=2)
        g = to_networkx(net)
        assert g[(2, 0)][(0, 0)]["dim"] == 0
        assert g[(0, 2)][(0, 0)]["dim"] == 1

    def test_graph_metadata(self):
        g = to_networkx(KAryNCube(k=5, n=2))
        assert g.graph["k"] == 5 and g.graph["n"] == 2

    def test_bidirectional_edges(self):
        net = KAryNCube(k=3, n=1, bidirectional=True)
        g = to_networkx(net)
        assert g.has_edge((0,), (1,)) and g.has_edge((1,), (0,))


class TestMetrics:
    def test_diameter_matches_formula(self):
        for k, n in ((4, 2), (3, 3)):
            net = KAryNCube(k=k, n=n)
            assert diameter(net) == net.diameter

    def test_diameter_bidirectional(self):
        net = KAryNCube(k=6, n=2, bidirectional=True)
        assert diameter(net) == net.diameter == 6

    def test_average_distance_close_to_formula(self):
        # Exact mean over ordered pairs = n*(k-1)/2 * N/(N-1): the
        # closed form n*(k-1)/2 averages displacement over all N
        # destinations including self.
        net = KAryNCube(k=4, n=2)
        exact = average_distance(net)
        n_nodes = net.num_nodes
        assert exact == pytest.approx(
            net.mean_message_hops * n_nodes / (n_nodes - 1)
        )

    def test_bisection_count_unidirectional(self):
        net = KAryNCube(k=4, n=2)
        # k rings of dimension 0, each crossing the cut twice (cut +
        # wrap-around), one direction only.
        assert bisection_channel_count(net) == 2 * 4

    def test_bisection_count_bidirectional(self):
        net = KAryNCube(k=4, n=2, bidirectional=True)
        assert bisection_channel_count(net) == 4 * 4

    def test_bisection_requires_even_radix(self):
        with pytest.raises(ValueError):
            bisection_channel_count(KAryNCube(k=5, n=2))
