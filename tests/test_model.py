"""Tests for the paper's analytical model (repro.core.model)."""

import math

import pytest

from repro.core.model import BlockingServicePolicy, HotSpotLatencyModel
from repro.core.uniform import UniformLatencyModel


@pytest.fixture(scope="module")
def model16():
    return HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.2)


class TestValidation:
    def test_radix(self):
        with pytest.raises(ValueError):
            HotSpotLatencyModel(k=2, message_length=32, hotspot_fraction=0.1)

    def test_message_length(self):
        with pytest.raises(ValueError):
            HotSpotLatencyModel(k=8, message_length=0, hotspot_fraction=0.1)

    def test_hotspot_fraction(self):
        with pytest.raises(ValueError):
            HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=1.0)
        with pytest.raises(ValueError):
            HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=-0.1)

    def test_vcs(self):
        with pytest.raises(ValueError):
            HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.1, num_vcs=1)

    def test_negative_rate(self, model16):
        with pytest.raises(ValueError):
            model16.evaluate(-1e-4)

    def test_policy_from_string(self):
        m = HotSpotLatencyModel(
            k=8, message_length=16, hotspot_fraction=0.1, blocking_service="holding"
        )
        assert m.blocking_service is BlockingServicePolicy.HOLDING


class TestZeroLoad:
    def test_zero_load_finite_and_exact_structure(self, model16):
        res = model16.evaluate(0.0)
        assert res.finite
        assert res.iterations == 0
        # No blocking, no waiting, no multiplexing at zero load.
        assert res.mean_multiplexing_x == pytest.approx(1.0)
        assert res.mean_multiplexing_hot_ring == pytest.approx(1.0)
        assert res.breakdown.regular_source_wait == 0.0
        assert res.max_utilization == 0.0

    def test_zero_load_latency_value(self):
        """Literal entrance convention: every class is charged the full
        k-channel pipeline, so S_r = (weighted) k or 2k + Lm."""
        k, lm = 8, 16
        m = HotSpotLatencyModel(
            k=k, message_length=lm, hotspot_fraction=0.2, trip_averaging=False
        )
        res = m.evaluate(0.0)
        p = m.probabilities
        # y-only classes: k + Lm; x-only: k + Lm; x->y: 2k + Lm.
        s_r = (
            (p.p_hot_y_only + p.p_nonhot_y_only) * (k + lm)
            + p.p_enter_x * p.p_x_only_given_x * (k + lm)
            + p.p_enter_x
            * (p.p_x_to_hot_given_x + p.p_x_to_nonhot_given_x)
            * (2 * k + lm)
        )
        # Hot classes at zero load: from hot ring distance j: j + Lm;
        # from (j, t): j + t(+0 if t=k) + Lm.
        n = k * k
        s_h_y = sum(j + lm for j in range(1, k)) / (n - 1)
        s_h_x = sum(
            j + (t if t < k else 0) + lm
            for j in range(1, k)
            for t in range(1, k + 1)
        ) / (n - 1)
        expected = 0.8 * s_r + 0.2 * (s_h_y + s_h_x)
        assert res.latency == pytest.approx(expected)

    def test_trip_averaging_lowers_zero_load_latency(self):
        lit = HotSpotLatencyModel(
            k=16, message_length=32, hotspot_fraction=0.2, trip_averaging=False
        )
        avg = HotSpotLatencyModel(
            k=16, message_length=32, hotspot_fraction=0.2, trip_averaging=True
        )
        assert avg.evaluate(0.0).latency < lit.evaluate(0.0).latency


class TestLoadBehaviour:
    def test_latency_monotone_in_rate(self, model16):
        rates = [0.00005, 0.0001, 0.0002, 0.0003, 0.0004, 0.0005]
        lats = [model16.evaluate(r).latency for r in rates]
        assert all(a < b for a, b in zip(lats, lats[1:]))

    def test_saturation_flag(self, model16):
        assert model16.evaluate(0.001).saturated
        assert model16.evaluate(0.001).latency == math.inf

    def test_saturation_rate_bisection(self, model16):
        sat = model16.saturation_rate(hi=0.01)
        assert not model16.evaluate(sat * 0.98).saturated
        assert model16.evaluate(sat * 1.02).saturated

    def test_saturation_decreases_with_h(self):
        sats = []
        for h in (0.2, 0.4, 0.7):
            m = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=h)
            sats.append(m.saturation_rate(hi=0.01))
        assert sats[0] > sats[1] > sats[2]

    def test_saturation_decreases_with_message_length(self):
        m32 = HotSpotLatencyModel(k=16, message_length=32, hotspot_fraction=0.4)
        m100 = HotSpotLatencyModel(k=16, message_length=100, hotspot_fraction=0.4)
        assert m32.saturation_rate(hi=0.01) > m100.saturation_rate(hi=0.01)

    def test_saturation_near_bandwidth_bound(self):
        """Saturation must sit near the hot-sink bandwidth limit
        lam*h*k(k-1)*(Lm+1) = 1 (the regular share shifts it slightly
        lower)."""
        k, lm, h = 16, 32, 0.4
        m = HotSpotLatencyModel(k=k, message_length=lm, hotspot_fraction=h)
        bound = 1.0 / (h * k * (k - 1) * (lm + 1))
        sat = m.saturation_rate(hi=0.01)
        assert 0.5 * bound < sat < bound

    def test_max_utilization_approaches_one_at_saturation(self, model16):
        sat = model16.saturation_rate(hi=0.01)
        res = model16.evaluate(sat * 0.99)
        assert res.max_utilization == pytest.approx(1.0, abs=0.05)

    def test_multiplexing_degrees_bounded(self, model16):
        res = model16.evaluate(0.0004)
        for v in (
            res.mean_multiplexing_x,
            res.mean_multiplexing_hot_ring,
            res.mean_multiplexing_nonhot_ring,
        ):
            assert 1.0 <= v <= 2.0

    def test_hot_ring_multiplexing_highest(self, model16):
        res = model16.evaluate(0.0004)
        assert res.mean_multiplexing_hot_ring >= res.mean_multiplexing_nonhot_ring


class TestBreakdown:
    def test_components_sum(self, model16):
        res = model16.evaluate(0.0003)
        b = res.breakdown
        expected = 0.8 * b.regular_total + 0.2 * b.hot_total
        assert res.latency == pytest.approx(expected)

    def test_hot_messages_slower_than_regular(self, model16):
        # Hot messages funnel into the congested ring: their mean
        # latency exceeds the regular mean at moderate load.
        res = model16.evaluate(0.0004)
        assert res.breakdown.hot_total > res.breakdown.regular_total

    def test_breakdown_none_when_saturated(self, model16):
        assert model16.evaluate(0.01).breakdown is None


class TestPolicies:
    def test_policy_saturation_ordering(self):
        """ENTRANCE (self-referential) saturates earliest, HOLDING next,
        TRANSMISSION (bandwidth-only) last."""
        sats = {}
        for policy in BlockingServicePolicy:
            m = HotSpotLatencyModel(
                k=16,
                message_length=32,
                hotspot_fraction=0.2,
                blocking_service=policy,
            )
            sats[policy] = m.saturation_rate(hi=0.01)
        assert (
            sats[BlockingServicePolicy.ENTRANCE]
            <= sats[BlockingServicePolicy.HOLDING]
            <= sats[BlockingServicePolicy.TRANSMISSION]
        )

    def test_policies_agree_at_light_load(self):
        rate = 2e-5
        lats = []
        for policy in BlockingServicePolicy:
            m = HotSpotLatencyModel(
                k=16,
                message_length=32,
                hotspot_fraction=0.2,
                blocking_service=policy,
            )
            lats.append(m.evaluate(rate).latency)
        assert max(lats) - min(lats) < 0.05 * min(lats)


class TestUniformConsistency:
    def test_h_zero_matches_uniform_model(self):
        """At h = 0 the hot-spot machinery must reduce to the uniform
        baseline (same conventions)."""
        k, lm = 8, 16
        hot = HotSpotLatencyModel(
            k=k,
            message_length=lm,
            hotspot_fraction=0.0,
            blocking_service=BlockingServicePolicy.TRANSMISSION,
        )
        uni = UniformLatencyModel(k=k, n=2, message_length=lm)
        for rate in (0.0, 0.0005, 0.001, 0.002):
            a = hot.evaluate(rate).latency
            b = uni.evaluate(rate).latency
            assert a == pytest.approx(b, rel=0.05), rate


class TestSweep:
    def test_sweep_points(self, model16):
        sweep = model16.sweep([1e-5, 1e-4, 1e-2], label="t")
        assert sweep.label == "t"
        assert [p.rate for p in sweep.points] == [1e-5, 1e-4, 1e-2]
        assert sweep.points[-1].saturated
        assert sweep.saturation_rate() == 1e-2
        assert len(sweep.finite_points()) == 2
