"""Unit tests for repro.queueing.mg1 (eq 28)."""

import math

import pytest

from repro.queueing.mg1 import mg1_waiting_time, mg1_waiting_time_cs2


class TestEq28:
    def test_zero_rate_no_wait(self):
        assert mg1_waiting_time(0.0, 50.0, 32.0) == 0.0

    def test_zero_service_no_wait(self):
        assert mg1_waiting_time(0.1, 0.0, 32.0) == 0.0

    def test_saturation_infinite(self):
        assert mg1_waiting_time(0.1, 10.0, 8.0) == math.inf
        assert mg1_waiting_time(0.2, 10.0, 8.0) == math.inf

    def test_matches_literal_eq28_form(self):
        lam, s, lm = 0.004, 40.0, 32.0
        # Eq (28) exactly as printed:
        expected = lam * s**2 * (1 + (s - lm) ** 2 / s**2) / (2 * (1 - lam * s))
        assert mg1_waiting_time(lam, s, lm) == pytest.approx(expected)

    def test_deterministic_when_service_equals_length(self):
        # S == Lm: zero variance, M/D/1 -> W = rho*S / (2(1-rho)).
        lam, s = 0.01, 32.0
        rho = lam * s
        assert mg1_waiting_time(lam, s, s) == pytest.approx(
            rho * s / (2 * (1 - rho))
        )

    def test_monotone_in_rate(self):
        waits = [mg1_waiting_time(lam, 20.0, 16.0) for lam in (0.01, 0.02, 0.04)]
        assert waits == sorted(waits)
        assert waits[0] < waits[-1]

    def test_monotone_in_service(self):
        waits = [mg1_waiting_time(0.01, s, 16.0) for s in (20.0, 40.0, 80.0)]
        assert waits == sorted(waits)

    @pytest.mark.parametrize("lam,s,lm", [(-1, 1, 1), (1, -1, 1), (1, 1, -1)])
    def test_validation(self, lam, s, lm):
        with pytest.raises(ValueError):
            mg1_waiting_time(lam, s, lm)


class TestExplicitCv:
    def test_md1_special_case(self):
        lam, s = 0.02, 25.0
        rho = lam * s
        assert mg1_waiting_time_cs2(lam, s, 0.0) == pytest.approx(
            rho * s / (2 * (1 - rho))
        )

    def test_mm1_special_case(self):
        lam, s = 0.02, 25.0
        rho = lam * s
        # M/M/1: W = rho*S/(1-rho).
        assert mg1_waiting_time_cs2(lam, s, 1.0) == pytest.approx(
            rho * s / (1 - rho)
        )

    def test_saturation(self):
        assert mg1_waiting_time_cs2(0.1, 10.0, 1.0) == math.inf

    def test_cv_validated(self):
        with pytest.raises(ValueError):
            mg1_waiting_time_cs2(0.01, 10.0, -0.5)

    def test_agrees_with_eq28_at_matching_cv(self):
        lam, s, lm = 0.005, 40.0, 32.0
        cs2 = (s - lm) ** 2 / s**2
        assert mg1_waiting_time(lam, s, lm) == pytest.approx(
            mg1_waiting_time_cs2(lam, s, cs2)
        )
