"""Property-based stress tests of the cycle engine.

Randomised workloads over randomised small networks must preserve the
engine's global invariants: message conservation, complete VC release,
non-negative buffer occupancies bounded by depth, per-channel flit
accounting, and (via the watchdog) deadlock freedom.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Simulation, SimulationConfig
from repro.simulator.network import TorusWorkload


def drain(workload, guard=200_000):
    workload._arrivals.clear()
    steps = 0
    while workload.engine.messages:
        workload.engine.step()
        steps += 1
        assert steps < guard, "network failed to drain"


@st.composite
def small_configs(draw):
    k = draw(st.integers(3, 6))
    n = draw(st.integers(1, 3))
    routing = draw(st.sampled_from(["deterministic", "adaptive"]))
    num_vcs = draw(st.integers(3 if routing == "adaptive" else 2, 5))
    return SimulationConfig(
        k=k,
        n=n,
        num_vcs=num_vcs,
        buffer_depth=draw(st.integers(1, 4)),
        message_length=draw(st.integers(1, 12)),
        rate=draw(st.floats(1e-4, 8e-3)),
        hotspot_fraction=draw(st.floats(0.0, 0.8)),
        routing=routing,
        model_ejection=draw(st.booleans()),
        warmup_cycles=0,
        measure_cycles=draw(st.integers(1_500, 4_000)),
        seed=draw(st.integers(0, 2**16)),
    )


class TestEngineInvariants:
    @given(cfg=small_configs())
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_release(self, cfg):
        w = TorusWorkload(cfg)
        w.run()
        c = w.engine.counters
        assert c.generated == c.completed + c.backlog
        drain(w)
        # Queued messages live in engine.messages too, so a full drain
        # implies empty source queues and zero backlog.
        assert not w.engine.messages
        assert w.engine.counters.backlog == 0
        assert not any(w.engine._source_queues.values())
        for pool in w.engine.pools:
            assert pool.busy_count == 0
            assert sorted(
                v for free in pool.free_by_class for v in free
            ) == list(range(cfg.num_vcs))

    @given(cfg=small_configs())
    @settings(max_examples=15, deadline=None)
    def test_flit_accounting(self, cfg):
        w = TorusWorkload(cfg)
        w.run()
        drain(w)
        # Total flit moves = sum over channels of per-channel counts.
        assert w.engine.counters.flit_moves == int(
            w.engine.channel_flit_counts.sum()
        )
        # Every channel carried whole messages: counts divisible checks
        # are not valid per channel (messages interleave), but totals
        # are multiples of message length when everything drained.
        assert w.engine.counters.flit_moves % cfg.message_length == 0

    @given(cfg=small_configs())
    @settings(max_examples=10, deadline=None)
    def test_latencies_bounded_below(self, cfg):
        """Every measured latency >= message length (the tail must
        stream Lm flits through the last channel)."""
        w = TorusWorkload(cfg)
        w.run()
        if w.all_stats.count:
            assert w.all_stats.min >= cfg.message_length
