"""Unit tests for repro.queueing.vc_multiplexing (eqs 33-35)."""

import numpy as np
import pytest

from repro.queueing.vc_multiplexing import (
    mean_busy_vcs,
    multiplexing_degree,
    vc_occupancy_probabilities,
)


class TestOccupancy:
    def test_probabilities_sum_to_one(self):
        p = vc_occupancy_probabilities(0.01, 40.0, 3)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_zero_load_all_idle(self):
        p = vc_occupancy_probabilities(0.0, 40.0, 2)
        assert p[0] == pytest.approx(1.0)

    def test_saturated_pins_full(self):
        p = vc_occupancy_probabilities(0.1, 20.0, 2)  # rho = 2
        assert p[-1] == 1.0

    def test_matches_eq33_recursion(self):
        lam, s, V = 0.005, 50.0, 4
        rho = lam * s
        q = [1.0]
        for v in range(1, V):
            q.append(q[-1] * rho)
        q.append(q[-1] * rho / (1 - rho))
        q = np.array(q)
        expected = q / q.sum()
        assert np.allclose(vc_occupancy_probabilities(lam, s, V), expected)

    def test_two_vcs_recursion(self):
        # For V = 2 the chain is q = [1, rho/(1-rho)] -- the v=1 state is
        # the capped one.
        lam, s = 0.004, 50.0
        rho = lam * s
        p = vc_occupancy_probabilities(lam, s, 2)
        q = np.array([1.0, rho, rho * rho / (1 - rho)])
        assert np.allclose(p, q / q.sum())

    def test_validation(self):
        with pytest.raises(ValueError):
            vc_occupancy_probabilities(0.1, 1.0, 0)
        with pytest.raises(ValueError):
            vc_occupancy_probabilities(-0.1, 1.0, 2)
        with pytest.raises(ValueError):
            vc_occupancy_probabilities(0.1, -1.0, 2)


class TestDegree:
    def test_unity_at_zero_load(self):
        assert multiplexing_degree(0.0, 40.0, 2) == 1.0

    def test_equals_v_at_saturation(self):
        assert multiplexing_degree(0.1, 20.0, 2) == pytest.approx(2.0)
        assert multiplexing_degree(0.5, 20.0, 4) == pytest.approx(4.0)

    def test_bounded_by_one_and_v(self):
        for lam in (0.001, 0.005, 0.01, 0.018):
            v_bar = multiplexing_degree(lam, 50.0, 3)
            assert 1.0 <= v_bar <= 3.0

    def test_monotone_in_load(self):
        degrees = [multiplexing_degree(lam, 50.0, 2) for lam in
                   (0.001, 0.004, 0.008, 0.012, 0.016, 0.019)]
        assert degrees == sorted(degrees)

    def test_eq35_by_hand(self):
        lam, s, V = 0.006, 60.0, 2
        p = vc_occupancy_probabilities(lam, s, V)
        expected = (1 * p[1] + 4 * p[2]) / (1 * p[1] + 2 * p[2])
        assert multiplexing_degree(lam, s, V) == pytest.approx(expected)


class TestMeanBusy:
    def test_increases_with_load(self):
        busy = [mean_busy_vcs(lam, 50.0, 2) for lam in (0.001, 0.01, 0.019)]
        assert busy == sorted(busy)

    def test_saturated_all_busy(self):
        assert mean_busy_vcs(1.0, 50.0, 3) == pytest.approx(3.0)
