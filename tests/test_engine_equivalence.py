"""Cross-engine equivalence: SoA engine vs reference engine.

The structure-of-arrays engine is only allowed to be *faster* than the
reference engine, never different: delivered-message streams (ids,
completion cycles, generation times), aggregate counters and
per-channel flit counts must agree bit for bit on every configuration —
deterministic and adaptive routing, uniform and hot-spot traffic, with
and without ejection modelling, for both the C and the numpy kernel.

A hypothesis property sweeps random small configurations; pinned
example cases keep the matrix covered even on --hypothesis-seed reruns.
"""

import os
from contextlib import contextmanager
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    CycleEngine,
    Simulation,
    SimulationConfig,
    SoACycleEngine,
    resolve_engine_kind,
)
from repro.simulator.kernel import c_kernel_available
from repro.simulator.network import TorusWorkload
from repro.simulator.soa import resolve_soa_kernel


@contextmanager
def _env(name, value):
    old = os.environ.get(name)
    try:
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


def run_traced(cfg: SimulationConfig, engine: str, kernel: str = "auto"):
    """Run a workload and capture everything that must match."""
    with _env("REPRO_SOA_KERNEL", kernel):
        w = TorusWorkload(replace(cfg, engine=engine))
        deliveries = []
        original = w.engine.on_delivery

        def hook(msg, cycle):
            deliveries.append((msg.msg_id, cycle, msg.generated_at, msg.is_hot))
            original(msg, cycle)

        w.engine.on_delivery = hook
        w.run()
    c = w.engine.counters
    return {
        "deliveries": deliveries,
        "counters": (c.generated, c.completed, c.flit_moves, c.cycles_run),
        "channel_flits": w.engine.channel_flit_counts.copy(),
        "mean": w.all_stats.mean,
        "count": w.all_stats.count,
    }


def assert_identical(ref, soa, label):
    assert ref["counters"] == soa["counters"], label
    assert ref["deliveries"] == soa["deliveries"], label
    assert np.array_equal(ref["channel_flits"], soa["channel_flits"]), label
    assert ref["count"] == soa["count"], label
    if ref["count"]:
        assert ref["mean"] == soa["mean"], label


def available_kernels():
    kernels = ["numpy"]
    if c_kernel_available():
        kernels.append("c")
    return kernels


@st.composite
def equivalence_configs(draw):
    routing = draw(st.sampled_from(["deterministic", "adaptive"]))
    return SimulationConfig(
        k=draw(st.integers(2, 5)),
        n=draw(st.integers(1, 2)),
        routing=routing,
        num_vcs=draw(st.integers(3 if routing == "adaptive" else 2, 5)),
        buffer_depth=draw(st.integers(1, 4)),
        message_length=draw(st.integers(1, 10)),
        rate=draw(st.floats(2e-4, 8e-3, allow_nan=False)),
        hotspot_fraction=draw(st.sampled_from([0.0, 0.2, 0.6])),
        model_ejection=draw(st.booleans()),
        warmup_cycles=draw(st.sampled_from([0, 250])),
        measure_cycles=draw(st.integers(800, 2_000)),
        seed=draw(st.integers(0, 2**16)),
    )


class TestEquivalenceProperty:
    @given(cfg=equivalence_configs())
    @settings(max_examples=20, deadline=None)
    def test_soa_matches_reference(self, cfg):
        ref = run_traced(cfg, "reference")
        for kernel in available_kernels():
            soa = run_traced(cfg, "soa", kernel)
            assert_identical(ref, soa, f"kernel={kernel} cfg={cfg}")


PINNED_CASES = [
    # (k, n, routing, vcs, depth, lm, h, ejection, rate)
    (4, 2, "deterministic", 2, 4, 8, 0.0, False, 2e-3),
    (4, 2, "deterministic", 2, 1, 8, 0.3, False, 3e-3),
    (3, 3, "deterministic", 3, 2, 5, 0.5, True, 2e-3),
    (5, 2, "deterministic", 4, 3, 1, 0.2, False, 1e-3),
    (4, 2, "adaptive", 3, 2, 8, 0.3, False, 3e-3),
    (4, 2, "adaptive", 4, 3, 6, 0.0, True, 2e-3),
    (6, 2, "adaptive", 3, 1, 10, 0.6, False, 2e-3),
    (2, 4, "deterministic", 2, 2, 4, 0.1, False, 4e-3),
]


class TestEquivalencePinned:
    @pytest.mark.parametrize(
        "k,n,routing,vcs,depth,lm,h,ejection,rate", PINNED_CASES
    )
    def test_pinned_case(self, k, n, routing, vcs, depth, lm, h, ejection, rate):
        cfg = SimulationConfig(
            k=k,
            n=n,
            routing=routing,
            num_vcs=vcs,
            buffer_depth=depth,
            message_length=lm,
            rate=rate,
            hotspot_fraction=h,
            model_ejection=ejection,
            warmup_cycles=200,
            measure_cycles=3_000,
            seed=k * 100 + vcs,
        )
        ref = run_traced(cfg, "reference")
        for kernel in available_kernels():
            soa = run_traced(cfg, "soa", kernel)
            assert_identical(ref, soa, f"kernel={kernel}")

    def test_bidirectional_case(self):
        cfg = SimulationConfig(
            k=4,
            n=2,
            bidirectional=True,
            num_vcs=5,
            message_length=12,
            rate=2e-3,
            warmup_cycles=0,
            measure_cycles=3_000,
            seed=23,
        )
        ref = run_traced(cfg, "reference")
        for kernel in available_kernels():
            assert_identical(ref, run_traced(cfg, "soa", kernel), kernel)

    def test_kernels_agree_with_each_other(self):
        if not c_kernel_available():
            pytest.skip("no C compiler available")
        cfg = SimulationConfig(
            k=4, message_length=8, rate=2e-3, hotspot_fraction=0.2,
            warmup_cycles=0, measure_cycles=4_000, seed=3,
        )
        a = run_traced(cfg, "soa", "c")
        b = run_traced(cfg, "soa", "numpy")
        assert_identical(a, b, "c vs numpy")


class TestEngineSelection:
    BASE = SimulationConfig(
        k=4, message_length=4, rate=1e-3, warmup_cycles=0,
        measure_cycles=500, seed=1,
    )

    def test_default_is_soa(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        w = TorusWorkload(self.BASE)
        assert isinstance(w.engine, SoACycleEngine)
        assert w.engine_kind == "soa"

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        w = TorusWorkload(self.BASE)
        assert type(w.engine) is CycleEngine
        assert w.engine_kind == "reference"

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        w = TorusWorkload(replace(self.BASE, engine="soa"))
        assert isinstance(w.engine, SoACycleEngine)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_engine_kind("auto")

    def test_bad_config_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            replace(self.BASE, engine="turbo")

    def test_bad_kernel_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_KERNEL", "fortran")
        with pytest.raises(ValueError, match="REPRO_SOA_KERNEL"):
            resolve_soa_kernel()

    def test_engine_argument_normalized(self, monkeypatch):
        # Case- and whitespace-insensitive, empty means auto — the same
        # normalisation $REPRO_ENGINE gets.
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_kind("  SoA ") == "soa"
        assert resolve_engine_kind("REFERENCE") == "reference"
        assert resolve_engine_kind("") == "soa"
        assert resolve_engine_kind(" Auto\t") == "soa"

    def test_engine_env_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "  Reference ")
        assert resolve_engine_kind("auto") == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "")
        assert resolve_engine_kind("auto") == "soa"

    def test_bad_engine_argument_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with pytest.raises(ValueError, match="turbo"):
            resolve_engine_kind("turbo")

    def test_kernel_argument_normalized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOA_KERNEL", raising=False)
        assert resolve_soa_kernel(" NumPy ") == "numpy"
        assert resolve_soa_kernel("") in ("c", "numpy")  # empty == auto

    def test_kernel_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_KERNEL", "c")
        assert resolve_soa_kernel("numpy") == "numpy"

    def test_bad_kernel_argument_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOA_KERNEL", raising=False)
        with pytest.raises(ValueError, match="fortran"):
            resolve_soa_kernel("fortran")

    def test_simulation_result_identical_across_engines(self):
        ref = Simulation(replace(self.BASE, engine="reference")).run()
        soa = Simulation(replace(self.BASE, engine="soa")).run()
        assert ref.mean_latency == soa.mean_latency
        assert ref.num_completed == soa.num_completed
        assert ref.cycles_run == soa.cycles_run
        assert ref.max_channel_utilization == soa.max_channel_utilization


class TestSoAInternals:
    """The SoA engine keeps the reference engine's public invariants."""

    def test_pools_drain_clean(self):
        cfg = SimulationConfig(
            k=4, message_length=6, rate=2e-3, hotspot_fraction=0.3,
            warmup_cycles=0, measure_cycles=3_000, seed=9, engine="soa",
        )
        w = TorusWorkload(cfg)
        w.run()
        w._arrivals.clear()
        guard = 0
        while w.engine.messages:
            w.engine.step()
            guard += 1
            assert guard < 100_000
        for pool in w.engine.pools:
            assert pool.busy_count == 0
            assert all(h == -1 for h in pool.holders)
        assert not np.any(w.engine._busy_cnt)
        assert not np.any(w.engine._avail[: w.engine._n_slots])

    def test_conservation(self):
        cfg = SimulationConfig(
            k=4, message_length=8, rate=2e-3, warmup_cycles=0,
            measure_cycles=4_000, seed=2, engine="soa",
        )
        w = TorusWorkload(cfg)
        w.run()
        c = w.engine.counters
        assert c.generated == c.completed + c.backlog
        assert c.flit_moves == int(w.engine.channel_flit_counts.sum())
