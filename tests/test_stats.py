"""Unit tests for repro.simulator.stats."""

import math

import numpy as np
import pytest

from repro.simulator.stats import BatchMeans, LatencyStats


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(50, size=500)
        s = LatencyStats()
        for x in data:
            s.record(float(x))
        assert s.mean == pytest.approx(float(np.mean(data)))
        assert s.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert s.min == pytest.approx(float(data.min()))
        assert s.max == pytest.approx(float(data.max()))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1.0)

    def test_hops_accumulate(self):
        s = LatencyStats()
        s.record(10, hops=3)
        s.record(20, hops=5)
        assert s.mean_hops == pytest.approx(4.0)

    def test_merge_equals_sequential(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(1, 100, size=300)
        whole = LatencyStats()
        for x in data:
            whole.record(float(x))
        a, b = LatencyStats(), LatencyStats()
        for x in data[:120]:
            a.record(float(x))
        for x in data[120:]:
            b.record(float(x))
        a.merge(b)
        assert a.count == whole.count
        assert a.mean == pytest.approx(whole.mean)
        assert a.variance == pytest.approx(whole.variance)

    def test_merge_with_empty(self):
        a = LatencyStats()
        b = LatencyStats()
        b.record(5.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 5.0
        b.merge(LatencyStats())
        assert b.count == 1


class TestBatchMeans:
    def test_batches_formed(self):
        bm = BatchMeans(batch_size=10)
        for i in range(35):
            bm.record(float(i))
        assert bm.num_batches == 3
        assert bm.batch_averages[0] == pytest.approx(4.5)

    def test_ci_requires_two_batches(self):
        bm = BatchMeans(batch_size=10)
        for i in range(10):
            bm.record(1.0)
        assert bm.confidence_interval() is None

    def test_ci_zero_for_constant_data(self):
        bm = BatchMeans(batch_size=5)
        for _ in range(25):
            bm.record(42.0)
        assert bm.mean() == 42.0
        assert bm.confidence_interval() == pytest.approx(0.0)

    def test_ci_covers_true_mean(self):
        rng = np.random.default_rng(3)
        bm = BatchMeans(batch_size=100)
        for x in rng.exponential(10.0, size=10_000):
            bm.record(float(x))
        ci = bm.confidence_interval(0.95)
        assert ci is not None
        assert abs(bm.mean() - 10.0) < 3 * ci  # generous but meaningful

    def test_relative_half_width(self):
        bm = BatchMeans(batch_size=5)
        for _ in range(25):
            bm.record(10.0)
        assert bm.relative_half_width() == pytest.approx(0.0)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            BatchMeans(batch_size=0)
