"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_model_defaults(self):
        args = build_parser().parse_args(["model", "--rate", "1e-4"])
        assert args.k == 16 and args.lm == 32 and args.h == 0.2


class TestModelCommand:
    def test_single_rate(self, capsys):
        assert main(["model", "--k", "8", "--lm", "16", "--h", "0.3",
                     "--rate", "2e-4"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_saturated_rate(self, capsys):
        assert main(["model", "--k", "8", "--lm", "16", "--h", "0.3",
                     "--rate", "0.05"]) == 0
        assert "SATURATED" in capsys.readouterr().out

    def test_sweep_with_plot(self, capsys):
        assert main(["model", "--k", "8", "--lm", "16", "--h", "0.3",
                     "--sweep", "5", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "saturated" in out
        assert "latency (cycles)" in out  # chart axis label

    def test_uniform_when_h_zero(self, capsys):
        assert main(["model", "--k", "8", "--lm", "16", "--h", "0",
                     "--rate", "1e-3"]) == 0
        assert "latency" in capsys.readouterr().out

    def test_missing_rate_and_sweep(self, capsys):
        assert main(["model", "--k", "8"]) == 2
        assert "rate" in capsys.readouterr().err

    def test_literal_entrance_flag(self, capsys):
        assert main(["model", "--k", "8", "--lm", "16", "--h", "0.3",
                     "--rate", "2e-4", "--literal-entrance"]) == 0


class TestSaturationCommand:
    def test_reports_bound(self, capsys):
        assert main(["saturation", "--k", "8", "--lm", "16", "--h", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "saturation rate" in out
        assert "bandwidth bound" in out


class TestSimulateCommand:
    def test_small_run(self, capsys):
        assert main([
            "simulate", "--k", "4", "--lm", "8", "--h", "0.2",
            "--rate", "2e-3", "--cycles", "5000", "--warmup", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean latency" in out
        assert "saturated: False" in out

    def test_ejection_flag(self, capsys):
        assert main([
            "simulate", "--k", "4", "--lm", "8", "--h", "0.2",
            "--rate", "2e-3", "--cycles", "3000", "--warmup", "300",
            "--ejection",
        ]) == 0
        assert "mean latency" in capsys.readouterr().out


class TestPanelCommands:
    def test_list_panels(self, capsys):
        assert main(["list-panels"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1_h20", "fig2_h70"):
            assert name in out

    def test_panel_model_only(self, capsys):
        assert main(["panel", "fig1_h40"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "saturated" in out

    def test_panel_plot(self, capsys):
        assert main(["panel", "fig1_h40", "--plot"]) == 0
        assert "latency (cycles)" in capsys.readouterr().out

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            main(["panel", "fig9_h99"])

    def test_panel_sweep_flags_parsed(self):
        args = build_parser().parse_args(
            ["panel", "fig1_h40", "--simulate", "--jobs", "4", "--no-cache",
             "--seed", "9", "--batch", "8"]
        )
        assert args.jobs == 4 and args.no_cache and args.seed == 9
        assert args.batch == 8

    def test_panel_batch_defaults_to_env(self):
        args = build_parser().parse_args(["panel", "fig1_h40"])
        assert args.batch is None  # engine falls back to $REPRO_SIM_BATCH

    def test_panel_batch_rejects_zero(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["panel", "fig1_h40", "--batch", "0"])

    def test_panel_jobs_model_only(self, capsys):
        # --jobs with a model-only run exercises the engine path without
        # spawning workers (there is nothing to simulate).
        assert main(["panel", "fig1_h40", "--jobs", "2", "--no-cache"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure_model_only(self, capsys):
        assert main(["figure", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("Figure 1") == 3  # one table per panel

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "9"])


class TestWorkerCommand:
    def test_worker_defaults(self):
        args = build_parser().parse_args(["worker", "/shared/campaign"])
        assert args.command == "worker"
        assert args.campaign_dir == "/shared/campaign"
        assert args.id is None
        assert args.poll == 0.2
        assert args.heartbeat == 5.0
        assert args.lease_duration == 60.0
        assert args.once is False
        assert args.max_units is None

    def test_worker_flags_parsed(self):
        args = build_parser().parse_args(
            ["worker", "c", "--id", "w1", "--poll", "0.05",
             "--heartbeat", "0.5", "--lease-duration", "10",
             "--once", "--max-units", "3"]
        )
        assert args.id == "w1" and args.poll == 0.05
        assert args.heartbeat == 0.5 and args.lease_duration == 10.0
        assert args.once and args.max_units == 3

    def test_worker_rejects_zero_max_units(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "c", "--max-units", "0"])


class TestSweepBackendFlags:
    def test_backend_default_none(self):
        # None lets the engine fall back to $REPRO_BACKEND, then "local".
        args = build_parser().parse_args(["panel", "fig1_h40"])
        assert args.backend is None
        assert args.allow_failures is False

    def test_backend_and_allow_failures_parsed(self):
        args = build_parser().parse_args(
            ["figure", "1", "--backend", "file:/shared/c", "--allow-failures"]
        )
        assert args.backend == "file:/shared/c"
        assert args.allow_failures is True


class _StubEngine:
    """run_panel stand-in returning a canned result with failures."""

    def __init__(self, failures):
        from types import SimpleNamespace

        from repro.resilience import ExecutorStats

        self.stats = ExecutorStats()
        sim = SimpleNamespace(failures=list(failures), points=[])
        self._result = SimpleNamespace(simulation=sim, model=None)

    def run_panel(self, spec, **kwargs):
        return self._result


def _stub_failure():
    from types import SimpleNamespace

    return SimpleNamespace(
        index=2, rate=0.12, kind="worker-dead", attempts=5, message="boom"
    )


class TestFailureExitCodes:
    """`repro panel` exits non-zero when points exhausted their retries."""

    @pytest.fixture(autouse=True)
    def _stub_rendering(self, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "format_panel_table", lambda result: "table")

    def test_partial_sweep_exits_nonzero(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "_sweep_engine", lambda args: _StubEngine([_stub_failure()])
        )
        assert main(["panel", "fig1_h40"]) == 1
        captured = capsys.readouterr()
        assert "FAILED point 2" in captured.out
        assert "--allow-failures" in captured.err

    def test_allow_failures_opts_out(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "_sweep_engine", lambda args: _StubEngine([_stub_failure()])
        )
        assert main(["panel", "fig1_h40", "--allow-failures"]) == 0
        assert capsys.readouterr().err == ""

    def test_clean_sweep_exits_zero(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_sweep_engine", lambda args: _StubEngine([]))
        assert main(["panel", "fig1_h40"]) == 0
        assert capsys.readouterr().err == ""
