"""Property-based tests for :class:`repro.core.fixed_point.FixedPointSolver`.

Complements the example-based tests in ``test_fixed_point.py`` with
hypothesis-driven properties over random affine contractions
``x -> A x + b`` (diagonal ``A``, spectral radius < 1 — every such map
has a unique fixed point the iteration must find):

* a solve restarted from its own converged state terminates in at most
  two iterations and stays at the same fixed point — the contract the
  sweep engine's warm starting relies on;
* invalid solver parameters always raise ``ValueError``;
* a map that produces non-finite values reports ``SATURATED`` with the
  last finite state.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixed_point import FixedPointSolver, FixedPointStatus

finite = dict(allow_nan=False, allow_infinity=False)

contractions = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-0.9, max_value=0.9, **finite),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0, **finite),
            min_size=n, max_size=n,
        ),
    )
)


@settings(deadline=None, max_examples=50)
@given(contractions, st.floats(min_value=0.3, max_value=1.0, **finite))
def test_warm_restart_converges_within_two_iterations(ab, damping):
    a, b = np.array(ab[0]), np.array(ab[1])
    solver = FixedPointSolver(tol=1e-10, max_iterations=50_000, damping=damping)
    update = lambda x: a * x + b

    cold = solver.solve(update, np.zeros_like(b))
    assert cold.status is FixedPointStatus.CONVERGED
    expected = b / (1.0 - a)
    assert np.allclose(cold.state, expected, rtol=1e-6, atol=1e-6)

    warm = solver.solve(update, cold.state)
    assert warm.status is FixedPointStatus.CONVERGED
    assert warm.iterations <= 2
    # The solver's criterion bounds the *step*, not the distance to the
    # fixed point: convergence stops once max|dx| < tol*(1 + max|x|), so
    # the converged state can still sit tol*(1+|x|)*f/(1-f) away from
    # the true fixed point, where f <= 1-damping+damping*|a| <= 0.97 is
    # the damped contraction factor.  With |x| <= 1000 and tol=1e-10
    # that is ~3e-6; the warm restart may legitimately move that far.
    assert np.allclose(warm.state, cold.state, rtol=0.0, atol=1e-5)


@settings(deadline=None, max_examples=30)
@given(st.floats(max_value=0.0, **finite))
def test_nonpositive_tolerance_rejected(tol):
    with pytest.raises(ValueError):
        FixedPointSolver(tol=tol)


@settings(deadline=None, max_examples=30)
@given(
    st.one_of(
        st.floats(max_value=0.0, **finite),
        st.floats(min_value=1.0, exclude_min=True, allow_nan=False),
    )
)
def test_out_of_range_damping_rejected(damping):
    with pytest.raises(ValueError):
        FixedPointSolver(damping=damping)


@settings(deadline=None, max_examples=30)
@given(st.integers(max_value=0))
def test_nonpositive_iteration_budget_rejected(budget):
    with pytest.raises(ValueError):
        FixedPointSolver(max_iterations=budget)


@settings(deadline=None, max_examples=30)
@given(
    st.floats(min_value=1e100, max_value=1e300, **finite),
    st.floats(min_value=0.1, max_value=100.0, **finite),
)
def test_exploding_map_reports_saturated(scale, x0):
    """Any map whose values overflow to inf must report SATURATED and
    return the last finite iterate."""
    solver = FixedPointSolver(damping=1.0, max_iterations=1_000)
    with np.errstate(over="ignore"):
        result = solver.solve(lambda x: x * scale, np.array([x0]))
    assert result.status is FixedPointStatus.SATURATED
    assert np.all(np.isfinite(result.state))
    assert not result.converged


@settings(deadline=None, max_examples=30)
@given(st.floats(min_value=0.1, max_value=10.0, **finite))
def test_nan_map_reports_saturated(x0):
    solver = FixedPointSolver()
    result = solver.solve(lambda x: np.full_like(x, np.nan), np.array([x0]))
    assert result.status is FixedPointStatus.SATURATED
    assert result.state[0] == pytest.approx(x0)
