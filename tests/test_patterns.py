"""Unit tests for repro.traffic.patterns (destination distributions)."""

import numpy as np
import pytest

from repro.topology import KAryNCube
from repro.traffic.patterns import (
    BitReversalPattern,
    HotSpotPattern,
    MatrixPattern,
    TransposePattern,
    UniformPattern,
)


@pytest.fixture
def net():
    return KAryNCube(k=4, n=2)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestUniform:
    def test_never_self(self, net, rng):
        pattern = UniformPattern(net)
        for _ in range(2000):
            assert pattern.draw(5, rng) != 5

    def test_all_destinations_reachable(self, net, rng):
        pattern = UniformPattern(net)
        seen = {pattern.draw(0, rng) for _ in range(4000)}
        assert seen == set(range(1, net.num_nodes))

    def test_empirical_uniformity(self, net, rng):
        pattern = UniformPattern(net)
        counts = np.zeros(net.num_nodes)
        trials = 30_000
        for _ in range(trials):
            counts[pattern.draw(3, rng)] += 1
        expected = trials / (net.num_nodes - 1)
        nonself = np.delete(counts, 3)
        assert counts[3] == 0
        # chi-square-ish bound: each cell within 5 sigma
        sigma = np.sqrt(expected)
        assert np.all(np.abs(nonself - expected) < 5 * sigma)

    def test_probability_vector(self, net):
        p = UniformPattern(net).destination_probabilities(7)
        assert p[7] == 0.0
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(p[p > 0], 1.0 / (net.num_nodes - 1))


class TestHotSpot:
    def test_fraction_validation(self, net):
        with pytest.raises(ValueError):
            HotSpotPattern(net, 1.5)
        with pytest.raises(ValueError):
            HotSpotPattern(net, -0.1)

    def test_default_hot_node_is_origin(self, net):
        p = HotSpotPattern(net, 0.3)
        assert p.hotspot_node == (0, 0)
        assert p.hotspot_rank == 0

    def test_custom_hot_node(self, net):
        p = HotSpotPattern(net, 0.3, hotspot_node=(2, 3))
        assert p.hotspot_rank == net.rank((2, 3))

    def test_hot_node_validated(self, net):
        with pytest.raises(ValueError):
            HotSpotPattern(net, 0.3, hotspot_node=(4, 0))

    def test_empirical_hot_fraction(self, net, rng):
        h = 0.4
        pattern = HotSpotPattern(net, h)
        trials = 20_000
        hits = sum(pattern.draw(9, rng) == 0 for _ in range(trials))
        # expected share: h + (1-h)/(N-1)
        expected = h + (1 - h) / (net.num_nodes - 1)
        assert hits / trials == pytest.approx(expected, abs=0.02)

    def test_hot_node_sends_only_regular(self, net, rng):
        pattern = HotSpotPattern(net, 0.9)
        draws = [pattern.draw(pattern.hotspot_rank, rng) for _ in range(3000)]
        assert pattern.hotspot_rank not in draws
        # and they must look uniform over the other nodes
        assert len(set(draws)) == net.num_nodes - 1

    def test_probability_vector_sums_to_one(self, net):
        pattern = HotSpotPattern(net, 0.25)
        for src in (0, 5, 15):
            p = pattern.destination_probabilities(src)
            assert p.sum() == pytest.approx(1.0)
            assert p[src] == 0.0

    def test_probability_vector_hot_mass(self, net):
        pattern = HotSpotPattern(net, 0.25)
        p = pattern.destination_probabilities(6)
        n = net.num_nodes
        assert p[0] == pytest.approx(0.25 + 0.75 / (n - 1))

    def test_h_zero_equals_uniform(self, net):
        hot = HotSpotPattern(net, 0.0)
        uni = UniformPattern(net)
        for src in range(net.num_nodes):
            assert np.allclose(
                hot.destination_probabilities(src),
                uni.destination_probabilities(src),
            )

    def test_is_hot_message_classifier(self, net):
        pattern = HotSpotPattern(net, 0.5)
        assert pattern.is_hot_message(3, 0)
        assert not pattern.is_hot_message(0, 3)
        assert not pattern.is_hot_message(3, 4)


class TestPermutations:
    def test_transpose_maps_coordinates(self, net, rng):
        pattern = TransposePattern(net)
        assert pattern.draw(net.rank((1, 3)), rng) == net.rank((3, 1))

    def test_transpose_diagonal_falls_back_to_uniform(self, net, rng):
        pattern = TransposePattern(net)
        src = net.rank((2, 2))
        draws = {pattern.draw(src, rng) for _ in range(500)}
        assert src not in draws
        assert len(draws) > 1

    def test_transpose_requires_2d(self):
        with pytest.raises(ValueError):
            TransposePattern(KAryNCube(k=4, n=3))

    def test_bit_reversal(self, rng):
        net = KAryNCube(k=4, n=2)  # 16 nodes, 4 bits
        pattern = BitReversalPattern(net)
        assert pattern.draw(0b0001, rng) == 0b1000
        assert pattern.draw(0b0110, rng) == 0b0110 or True  # fixed point path
        # fixed points fall back to uniform, never self:
        assert pattern.draw(0b0110, rng) != 0b0110

    def test_bit_reversal_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitReversalPattern(KAryNCube(k=3, n=2))


class TestMatrix:
    def test_draw_follows_matrix(self, rng):
        net = KAryNCube(k=2, n=1)
        m = [[0.0, 1.0], [1.0, 0.0]]
        pattern = MatrixPattern(net, m)
        assert pattern.draw(0, rng) == 1
        assert pattern.draw(1, rng) == 0

    def test_rows_must_sum_to_one(self):
        net = KAryNCube(k=2, n=1)
        with pytest.raises(ValueError):
            MatrixPattern(net, [[0.0, 0.5], [1.0, 0.0]])

    def test_diagonal_must_be_zero(self):
        net = KAryNCube(k=2, n=1)
        with pytest.raises(ValueError):
            MatrixPattern(net, [[0.5, 0.5], [1.0, 0.0]])

    def test_shape_checked(self):
        net = KAryNCube(k=2, n=1)
        with pytest.raises(ValueError):
            MatrixPattern(net, [[0.0, 1.0]])

    def test_negative_entries_rejected(self):
        net = KAryNCube(k=2, n=1)
        with pytest.raises(ValueError):
            MatrixPattern(net, [[0.0, 1.0], [2.0, -1.0]])

    def test_empirical_distribution(self, rng):
        net = KAryNCube(k=4, n=1)
        m = [
            [0.0, 0.5, 0.25, 0.25],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.2, 0.3, 0.5, 0.0],
        ]
        pattern = MatrixPattern(net, m)
        counts = np.zeros(4)
        for _ in range(10_000):
            counts[pattern.draw(0, rng)] += 1
        assert counts[0] == 0
        assert counts[1] / 10_000 == pytest.approx(0.5, abs=0.03)
        assert counts[2] / 10_000 == pytest.approx(0.25, abs=0.03)
