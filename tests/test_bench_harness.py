"""Tests for the repro.bench harness and the `repro bench` CLI command."""

import json

import pytest

from repro import bench
from repro.cli import main


class TestHarness:
    def test_run_sim_once_counts(self):
        cfg = bench.bench_sim_config(quick=True)
        run = bench.run_sim_once(cfg)
        assert run.cycles_run > 0
        assert run.completed > 0
        assert run.flit_moves >= run.completed * cfg.message_length
        assert run.engine in ("soa", "reference")

    def test_throughput_stats(self):
        run = bench.SimRun(
            cycles_run=1000, flit_moves=4000, completed=10,
            engine="soa", kernel="c",
        )
        stats = bench.throughput_stats(run, 0.5)
        assert stats["cycles_per_sec"] == 2000.0
        assert stats["flits_per_sec"] == 8000.0

    def test_build_and_write_report(self, tmp_path):
        report = bench.build_report(quick=True, rounds=1)
        assert report["kind"] == "repro-bench"
        assert report["simulator"]["cycles_per_sec"] > 0
        assert report["model"]["solves_per_sec"] > 0
        assert report["model"]["kernel"] in ("scalar", "vector")
        assert report["model_batch"]["points_per_sec"] > 0
        assert report["model_batch"]["points"] == len(bench.bench_model_rates())
        assert report["model_batch"]["kernel"] == report["model"]["kernel"]
        assert len(report["config_hash"]) == 16
        path = bench.write_report(report, tmp_path)
        assert path.name.startswith("BENCH_")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )

    def test_measure_model_records_kernel(self):
        out = bench.measure_model(rounds=1, kernel="vector")
        assert out["kernel"] == "vector"
        assert out["solves_per_sec"] > 0

    def test_measure_model_batch_panel_shaped(self):
        out = bench.measure_model_batch(rounds=1)
        assert out["points"] >= 5
        assert out["points_per_sec"] > 0

    def test_write_report_explicit_file(self, tmp_path):
        report = {"timestamp": "2026-01-01T00:00:00+00:00", "git_rev": "abc"}
        path = bench.write_report(report, tmp_path / "BENCH_x.json")
        assert path == tmp_path / "BENCH_x.json"
        assert path.exists()

    @staticmethod
    def _report(cycles, solves, kernel="vector", quick=True):
        return {
            "quick": quick,
            "simulator": {"cycles_per_sec": cycles},
            "model": {"solves_per_sec": solves, "kernel": kernel},
        }

    def test_check_regression_pass_and_fail(self):
        fast = self._report(50_000.0, 200.0)
        slow = self._report(30_000.0, 150.0)
        # Within 2x either way: no failure.
        assert bench.check_regression(fast, slow) == []
        assert bench.check_regression(slow, fast) == []
        crawl = self._report(4_000.0, 150.0)
        failures = bench.check_regression(crawl, fast)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_check_regression_gates_model_solves(self):
        fast = self._report(50_000.0, 200.0)
        slow_model = self._report(50_000.0, 40.0)
        failures = bench.check_regression(slow_model, fast)
        assert len(failures) == 1
        assert "model throughput regressed" in failures[0]

    def test_check_regression_gates_batched_panel(self):
        fast = self._report(50_000.0, 200.0)
        fast["model_batch"] = {"points_per_sec": 1_000.0}
        slow_batch = self._report(50_000.0, 200.0)
        slow_batch["model_batch"] = {"points_per_sec": 100.0}
        failures = bench.check_regression(slow_batch, fast)
        assert len(failures) == 1
        assert "batched model throughput regressed" in failures[0]
        # Pre-batch baselines (no model_batch section) skip this gate.
        assert bench.check_regression(fast, self._report(50_000.0, 200.0)) == []

    def test_measure_sim_batch_quick(self):
        out = bench.measure_sim_batch(rounds=1, quick=True, batch=3)
        assert out["batch"] == 3
        assert out["cycles_run"] > 0
        assert out["seconds_sequential"] > 0
        assert out["seconds_batched"] > 0
        assert out["speedup"] == pytest.approx(
            out["seconds_sequential"] / out["seconds_batched"]
        )
        assert out["bit_identical"] is True
        assert out["kernel"] in ("c", "numpy")

    def test_check_regression_gates_sim_batch(self):
        fast = self._report(50_000.0, 200.0)
        fast["sim_batch"] = {
            "cycles_per_sec_batched": 1_000_000.0, "bit_identical": True,
        }
        slow = self._report(50_000.0, 200.0)
        slow["sim_batch"] = {
            "cycles_per_sec_batched": 100_000.0, "bit_identical": True,
        }
        failures = bench.check_regression(slow, fast)
        assert len(failures) == 1
        assert "batched simulator throughput regressed" in failures[0]
        # Pre-batch baselines (no sim_batch section) skip the gate.
        assert bench.check_regression(fast, self._report(50_000.0, 200.0)) == []

    def test_check_regression_fails_on_batch_divergence(self):
        report = self._report(50_000.0, 200.0)
        report["sim_batch"] = {
            "cycles_per_sec_batched": 1e9, "bit_identical": False,
        }
        failures = bench.check_regression(report, self._report(50_000.0, 200.0))
        assert any("bit-identical" in f for f in failures)

    def test_check_regression_model_kernel_mismatch(self):
        vec = self._report(50_000.0, 200.0, kernel="vector")
        sca = self._report(50_000.0, 150.0, kernel="scalar")
        failures = bench.check_regression(sca, vec)
        assert any("model-kernel mismatch" in f for f in failures)

    def test_check_regression_tolerates_pre_kernel_baseline(self):
        # PR-4-era baselines have no model.kernel field; the model gate
        # still applies, only the kernel comparability check is skipped.
        new = self._report(50_000.0, 200.0)
        old = {
            "quick": True,
            "simulator": {"cycles_per_sec": 50_000.0},
            "model": {"solves_per_sec": 20.0},
        }
        assert bench.check_regression(new, old) == []
        failures = bench.check_regression(old | {"model": {"solves_per_sec": 20.0}}, new)
        assert any("model throughput regressed" in f for f in failures)

    def test_check_regression_missing_model_metrics(self):
        new = self._report(50_000.0, 200.0)
        old = {"quick": True, "simulator": {"cycles_per_sec": 50_000.0}}
        failures = bench.check_regression(new, old)
        assert any("model.solves_per_sec" in f for f in failures)

    def test_check_regression_quick_mismatch_flagged(self):
        quick = {"quick": True, "simulator": {"cycles_per_sec": 50_000.0}}
        full = {"quick": False, "simulator": {"cycles_per_sec": 50_000.0}}
        failures = bench.check_regression(quick, full)
        assert any("quick-mode mismatch" in f for f in failures)

    def test_check_regression_malformed_baseline(self):
        report = {"quick": True, "simulator": {"cycles_per_sec": 1.0}}
        assert bench.check_regression(report, {}) != []


class TestCli:
    def test_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_ci.json"
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--output", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["simulator"]["cycles_per_sec"] > 0
        captured = capsys.readouterr().out
        assert "cycles/s" in captured

    def test_bench_check_against_derated_self_passes(self, tmp_path):
        # Comparing two independent wall-clock measurements against the
        # 2x gate would be timing-flaky (single-round quick runs vary
        # ~2x on noisy machines), so derate the recorded baseline well
        # below any plausible re-measurement instead.
        out = tmp_path / "BENCH_base.json"
        assert main(["bench", "--quick", "--rounds", "1",
                     "--output", str(out)]) == 0
        baseline = json.loads(out.read_text())
        baseline["simulator"]["cycles_per_sec"] /= 100.0
        baseline["model"]["solves_per_sec"] /= 100.0
        baseline["model_batch"]["points_per_sec"] /= 100.0
        baseline["sim_batch"]["cycles_per_sec_batched"] /= 100.0
        out.write_text(json.dumps(baseline))
        assert main(["bench", "--quick", "--rounds", "1",
                     "--check", str(out)]) == 0

    def test_bench_check_fails_on_regression(self, tmp_path, capsys):
        baseline = {
            "quick": True,
            "git_rev": "cafe",
            "simulator": {"cycles_per_sec": 1e12},
        }
        path = tmp_path / "BENCH_fast.json"
        path.write_text(json.dumps(baseline))
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--check", str(path)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_bench_check_missing_baseline(self, tmp_path):
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--check", str(tmp_path / "missing.json")])
        assert rc == 2

    def test_simulate_engine_flag(self, capsys):
        rc = main(["simulate", "--k", "4", "--lm", "4", "--rate", "1e-3",
                   "--cycles", "2000", "--engine", "reference"])
        assert rc == 0
        assert "completed" in capsys.readouterr().out
