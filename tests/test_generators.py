"""Unit tests for repro.traffic.generators (Poisson sources)."""

import numpy as np
import pytest

from repro.topology import KAryNCube
from repro.traffic.generators import (
    GeneratedMessage,
    MessageSource,
    PoissonProcess,
    build_sources,
)
from repro.traffic.patterns import UniformPattern


@pytest.fixture
def net():
    return KAryNCube(k=4, n=2)


@pytest.fixture
def pattern(net):
    return UniformPattern(net)


class TestPoissonProcess:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(-0.1)

    def test_zero_rate_generates_nothing(self):
        p = PoissonProcess(0.0)
        rng = np.random.default_rng(0)
        assert all(p.arrivals(rng) == 0 for _ in range(100))

    def test_empirical_rate(self):
        p = PoissonProcess(0.25)
        rng = np.random.default_rng(7)
        total = sum(p.arrivals(rng) for _ in range(40_000))
        assert total / 40_000 == pytest.approx(0.25, rel=0.05)

    def test_poisson_variance(self):
        # Poisson: variance equals mean.
        p = PoissonProcess(0.5)
        rng = np.random.default_rng(11)
        samples = np.array([p.arrivals(rng) for _ in range(40_000)])
        assert samples.var() == pytest.approx(samples.mean(), rel=0.1)


class TestMessageSource:
    def test_generates_valid_messages(self, pattern):
        src = MessageSource(3, PoissonProcess(2.0), pattern, message_length=8)
        rng = np.random.default_rng(5)
        msgs = src.generate(cycle=17, rng=rng)
        assert msgs, "rate 2.0 should generate messages most cycles"
        for m in msgs:
            assert isinstance(m, GeneratedMessage)
            assert m.source == 3
            assert m.dest != 3
            assert m.length == 8
            assert m.generated_at == 17

    def test_source_rank_validated(self, pattern):
        with pytest.raises(ValueError):
            MessageSource(16, PoissonProcess(1.0), pattern, message_length=4)

    def test_length_validated(self, pattern):
        with pytest.raises(ValueError):
            MessageSource(0, PoissonProcess(1.0), pattern, message_length=0)

    def test_callable_length(self, pattern):
        src = MessageSource(
            0,
            PoissonProcess(3.0),
            pattern,
            message_length=lambda rng: int(rng.integers(1, 5)),
        )
        rng = np.random.default_rng(3)
        lengths = {m.length for m in src.generate(0, rng)}
        assert lengths <= {1, 2, 3, 4}

    def test_callable_length_validated(self, pattern):
        src = MessageSource(
            0, PoissonProcess(5.0), pattern, message_length=lambda rng: 0
        )
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            src.generate(0, rng)


class TestBuildSources:
    def test_one_source_per_node(self, net, pattern):
        sources = build_sources(net, rate=0.1, pattern=pattern, message_length=4)
        assert len(sources) == net.num_nodes
        assert [s.source_rank for s in sources] == list(range(net.num_nodes))

    def test_shared_process_rate(self, net, pattern):
        sources = build_sources(net, rate=0.2, pattern=pattern, message_length=4)
        assert all(s.process.rate == 0.2 for s in sources)
