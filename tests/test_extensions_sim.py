"""Tests for simulator extensions: bidirectional links and explicit
ejection channels."""

from dataclasses import replace

import pytest

from repro.simulator import Simulation, SimulationConfig
from repro.simulator.network import TorusWorkload

BASE = SimulationConfig(
    k=8,
    n=2,
    message_length=16,
    rate=1.5e-3,
    hotspot_fraction=0.3,
    warmup_cycles=1_000,
    measure_cycles=25_000,
    seed=21,
)


class TestBidirectional:
    def test_halves_mean_hops(self):
        uni = Simulation(BASE).run()
        bi = Simulation(replace(BASE, bidirectional=True)).run()
        # Unidirectional k=8: ~7 hops mean; bidirectional minimal: ~4.
        assert uni.mean_hops == pytest.approx(7.11, rel=0.05)
        assert bi.mean_hops == pytest.approx(4.06, rel=0.08)

    def test_lowers_latency_at_equal_load(self):
        uni = Simulation(BASE).run()
        bi = Simulation(replace(BASE, bidirectional=True)).run()
        assert bi.mean_latency < uni.mean_latency

    def test_raises_saturation_load(self):
        """Halved hot-path channel load (two directions share the sink
        column) pushes the saturation point up."""
        rate = 2.6e-3  # saturates the unidirectional hot column
        uni = Simulation(
            replace(BASE, rate=rate, measure_cycles=40_000)
        ).run()
        bi = Simulation(
            replace(BASE, rate=rate, bidirectional=True, measure_cycles=40_000)
        ).run()
        assert uni.saturated or uni.mean_latency > 2 * bi.mean_latency
        assert not bi.saturated

    def test_conservation(self):
        w = TorusWorkload(replace(BASE, bidirectional=True))
        w.run()
        c = w.engine.counters
        assert c.generated == c.completed + c.backlog

    def test_no_vc_leak(self):
        w = TorusWorkload(replace(BASE, bidirectional=True, rate=5e-4))
        w.run()
        w._arrivals.clear()
        guard = 0
        while w.engine.messages:
            w.engine.step()
            guard += 1
            assert guard < 50_000
        assert all(p.busy_count == 0 for p in w.engine.pools)


class TestEjectionModelling:
    def test_adds_one_hop_latency_at_light_load(self):
        light = replace(BASE, rate=2e-4, measure_cycles=40_000)
        a = Simulation(light).run()
        b = Simulation(replace(light, model_ejection=True)).run()
        # One extra channel on every route: +~1-2 cycles, not more at
        # light load.
        assert b.mean_latency - a.mean_latency == pytest.approx(1.5, abs=1.0)

    def test_hot_ejection_is_bottleneck(self):
        """With a real ejection channel, the hot node's ejection port
        (which carries ALL hot traffic) saturates before the network
        would: measured ejection utilisation tops the network's."""
        cfg = replace(BASE, rate=2.2e-3, model_ejection=True, measure_cycles=40_000)
        w = TorusWorkload(cfg)
        w.run()
        util = w.measured_channel_utilization()
        hot_eject = util[w.ejection_channel_id(0)]
        network_max = util[: w._num_network_channels].max()
        assert hot_eject >= network_max * 0.9

    def test_ejection_channel_id_guarded(self):
        w = TorusWorkload(BASE)
        with pytest.raises(ValueError):
            w.ejection_channel_id(0)

    def test_counters_include_ejection_moves(self):
        cfg = replace(BASE, rate=5e-4, model_ejection=True, measure_cycles=10_000)
        w = TorusWorkload(cfg)
        w.run()
        # Every completed message crossed Lm ejection flits.
        eject_flits = w.engine.channel_flit_counts[w._num_network_channels :].sum()
        assert eject_flits >= w.engine.counters.completed * cfg.message_length
