"""Golden regression tests: the model curves of the paper's figures.

The benchmark suite writes each regenerated panel to
``benchmarks/results/<panel>.txt``.  These tests pin the *model* column
of every Figure 1 / Figure 2 panel against those checked-in tables, so a
refactor of the solver, the equations or the sweep engine cannot
silently shift the reproduction.

Tolerance: the tables print latencies rounded to 0.1 cycles, so the
comparison allows 0.5% relative error (plus the 0.06-cycle rounding
slack) — far above solver noise (tolerance 1e-10, warm- and cold-started
solves agree to ~1e-9), far below any physically meaningful drift.
Saturated grid points must match exactly: saturation moving by even one
grid step changes where the reproduced curve ends.

The simulation column is *not* pinned — it depends on seeds and run
lengths — but its golden values remain in the tables for eyeballing.
"""

import math
import pathlib

import pytest

from repro.experiments import get_panel, run_panel_model_only

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"

PANELS = ["fig1_h20", "fig1_h40", "fig1_h70", "fig2_h20", "fig2_h40", "fig2_h70"]

REL_TOL = 5e-3
ABS_TOL = 0.06  # table rounding: one half of 0.1 cycles, plus slack


def load_golden_model_curve(name):
    """Parse (rate, model latency | inf) rows from a results table."""
    path = RESULTS_DIR / f"{name}.txt"
    rows = []
    for line in path.read_text().splitlines():
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 3:
            continue
        try:
            rate = float(parts[0])
        except ValueError:
            continue  # header row
        model = math.inf if parts[1] == "saturated" else float(parts[1])
        rows.append((rate, model))
    return rows


@pytest.mark.parametrize("name", PANELS)
def test_model_curve_matches_golden(name):
    golden = load_golden_model_curve(name)
    assert len(golden) >= 6, f"golden table for {name} is malformed"

    result = run_panel_model_only(get_panel(name))
    points = result.model.points
    assert len(points) == len(golden), "grid changed: regenerate the goldens"

    for point, (g_rate, g_latency) in zip(points, golden):
        assert point.rate == pytest.approx(g_rate, rel=1e-4)
        if math.isinf(g_latency):
            assert point.saturated, (
                f"{name}: model no longer saturates at rate {g_rate}"
            )
        else:
            assert not point.saturated, (
                f"{name}: model now saturates at rate {g_rate}"
            )
            assert point.latency == pytest.approx(
                g_latency, rel=REL_TOL, abs=ABS_TOL
            ), f"{name}: latency drifted at rate {g_rate}"


def test_goldens_present():
    missing = [n for n in PANELS if not (RESULTS_DIR / f"{n}.txt").exists()]
    assert not missing, f"golden tables missing: {missing}"
