"""Cross-kernel equivalence: vector model kernel vs scalar oracle.

The array-native model kernel is only allowed to be *faster* than the
per-channel-loop implementation, never different: over radix ``k``,
message length ``Lm``, VC count ``V``, hot-spot fraction ``h``,
blocking policy and offered load, both kernels must report the same
saturation classification (bit-identical booleans) and latencies that
agree to far below any physically meaningful tolerance — the only
permitted divergence is floating-point summation order (loop-carried
adds vs ``cumsum``/axis reductions), which the converged fixed point
damps to ~1e-9 relative.

A hypothesis property sweeps random configurations; pinned example
matrices keep the (k, Lm, V, h) coverage even on --hypothesis-seed
reruns.  Batched sweeps (warm-start chaining on) and the multi-probe
saturation search are pinned against their sequential scalar
counterparts too, since those paths rewire the solve structure, not
just the arithmetic.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    BlockingServicePolicy,
    HotSpotLatencyModel,
    resolve_model_kernel,
)
from repro.core.uniform import UniformLatencyModel

REL_TOL = 1e-7


def make_pair(k, lm, h, vcs, policy="transmission", trip_averaging=True):
    kwargs = dict(
        k=k,
        message_length=lm,
        hotspot_fraction=h,
        num_vcs=vcs,
        blocking_service=policy,
        trip_averaging=trip_averaging,
    )
    return (
        HotSpotLatencyModel(kernel="scalar", **kwargs),
        HotSpotLatencyModel(kernel="vector", **kwargs),
    )


def assert_results_match(a, b, label=""):
    """Scalar result ``a`` vs vector result ``b`` for the same load."""
    assert a.saturated == b.saturated, f"saturation classification split {label}"
    assert a.rate == b.rate, label
    if a.saturated:
        assert math.isinf(a.latency) and math.isinf(b.latency), label
        return
    assert a.latency == pytest.approx(b.latency, rel=REL_TOL), label
    assert a.max_utilization == pytest.approx(
        b.max_utilization, rel=REL_TOL, abs=1e-12
    ), label
    assert a.mean_multiplexing_x == pytest.approx(
        b.mean_multiplexing_x, rel=REL_TOL
    ), label
    assert a.mean_multiplexing_hot_ring == pytest.approx(
        b.mean_multiplexing_hot_ring, rel=REL_TOL
    ), label
    assert a.mean_multiplexing_nonhot_ring == pytest.approx(
        b.mean_multiplexing_nonhot_ring, rel=REL_TOL
    ), label
    if a.breakdown is not None:
        assert b.breakdown is not None, label
        assert a.breakdown.regular_total == pytest.approx(
            b.breakdown.regular_total, rel=REL_TOL
        ), label
        assert a.breakdown.hot_total == pytest.approx(
            b.breakdown.hot_total, rel=REL_TOL
        ), label
        assert a.breakdown.regular_source_wait == pytest.approx(
            b.breakdown.regular_source_wait, rel=REL_TOL, abs=1e-12
        ), label


@st.composite
def kernel_configs(draw):
    k = draw(st.integers(3, 10))
    lm = draw(st.integers(1, 48))
    h = draw(st.sampled_from([0.0, 0.05, 0.2, 0.4, 0.7, 0.9]))
    vcs = draw(st.integers(2, 6))
    policy = draw(
        st.sampled_from(["transmission", "holding", "entrance"])
    )
    trip = draw(st.booleans())
    # Loads spanning light load to past saturation: scale by the
    # hot-sink bandwidth bound (regular-path bound at h = 0).
    if h > 0:
        bound = 1.0 / (h * k * (k - 1) * (lm + 1))
    else:
        bound = 2.0 / ((k - 1) * (lm + 1))
    frac = draw(st.sampled_from([0.0, 0.1, 0.5, 0.8, 1.5]))
    return k, lm, h, vcs, policy, trip, frac * bound


class TestEquivalenceProperty:
    @given(cfg=kernel_configs())
    @settings(max_examples=25, deadline=None)
    def test_vector_matches_scalar(self, cfg):
        k, lm, h, vcs, policy, trip, rate = cfg
        scalar, vector = make_pair(k, lm, h, vcs, policy, trip)
        assert_results_match(
            scalar.evaluate(rate), vector.evaluate(rate), f"cfg={cfg}"
        )


# (k, Lm, V, h) matrix pinned across hypothesis reruns; rates chosen at
# light load, moderate load, near saturation, and past saturation.
PINNED_MATRIX = [
    (16, 32, 2, 0.2),
    (16, 32, 2, 0.4),
    (16, 100, 2, 0.7),
    (16, 100, 4, 0.4),
    (8, 16, 3, 0.0),
    (8, 64, 2, 0.9),
    (5, 1, 2, 0.5),
    (3, 8, 6, 0.3),
]


class TestEquivalencePinned:
    @pytest.mark.parametrize("k,lm,vcs,h", PINNED_MATRIX)
    def test_pinned_case(self, k, lm, vcs, h):
        scalar, vector = make_pair(k, lm, h, vcs)
        if h > 0:
            bound = 1.0 / (h * k * (k - 1) * (lm + 1))
        else:
            bound = 2.0 / ((k - 1) * (lm + 1))
        for frac in (0.0, 0.25, 0.6, 0.9, 1.2, 3.0):
            rate = frac * bound
            assert_results_match(
                scalar.evaluate(rate),
                vector.evaluate(rate),
                f"k={k} Lm={lm} V={vcs} h={h} rate={rate}",
            )

    @pytest.mark.parametrize("policy", list(BlockingServicePolicy))
    def test_policies(self, policy):
        scalar, vector = make_pair(8, 16, 0.4, 3, policy=policy)
        for rate in (0.0, 2e-4, 8e-4, 2e-3, 1e-2):
            assert_results_match(
                scalar.evaluate(rate),
                vector.evaluate(rate),
                f"policy={policy} rate={rate}",
            )

    def test_warm_started_sweep_matches_scalar_sweep(self):
        """The one-batch chained sweep must land on the scalar warm
        sweep's curve: same saturation split (bit-identical flags),
        latencies within solver tolerance."""
        scalar, vector = make_pair(16, 32, 0.4, 2)
        rates = np.linspace(0.0, 3.4e-4, 24)
        s = scalar.sweep(rates, warm_start=True)
        v = vector.sweep(rates, warm_start=True)
        assert [p.saturated for p in s.points] == [
            p.saturated for p in v.points
        ]
        for p, q in zip(s.points, v.points):
            if not p.saturated:
                assert q.latency == pytest.approx(p.latency, rel=REL_TOL)

    def test_saturation_search_matches_bisection(self):
        scalar, vector = make_pair(16, 32, 0.4, 2)
        a = scalar.saturation_rate(hi=0.01, tol=1e-7)
        b = vector.saturation_rate(hi=0.01, tol=1e-7)
        # tol bounds the final *bracket width* (absolute, hi < 1), so
        # the two searches' endpoints agree to within two brackets.
        assert b == pytest.approx(a, abs=2e-7)
        # And each endpoint classifies consistently across kernels.
        assert scalar.evaluate(b).saturated and vector.evaluate(a).saturated


class TestUniformEquivalence:
    PINNED = [
        (16, 2, 32, 2, "transmission"),
        (8, 3, 16, 3, "transmission"),
        (5, 2, 4, 2, "holding"),
        (16, 2, 100, 2, "entrance"),
        (4, 1, 8, 2, "transmission"),
    ]

    @pytest.mark.parametrize("k,n,lm,vcs,policy", PINNED)
    def test_pinned_case(self, k, n, lm, vcs, policy):
        kwargs = dict(
            k=k, n=n, message_length=lm, num_vcs=vcs, blocking_service=policy
        )
        scalar = UniformLatencyModel(kernel="scalar", **kwargs)
        vector = UniformLatencyModel(kernel="vector", **kwargs)
        bound = 2.0 / (n * (k - 1) * (lm + 1))
        for frac in (0.0, 0.2, 0.6, 0.9, 1.5):
            rate = frac * bound
            a, b = scalar.evaluate(rate), vector.evaluate(rate)
            assert a.saturated == b.saturated, (k, n, lm, vcs, policy, rate)
            if not a.saturated:
                assert b.latency == pytest.approx(a.latency, rel=REL_TOL)
                assert b.max_utilization == pytest.approx(
                    a.max_utilization, rel=REL_TOL, abs=1e-12
                )

    def test_chained_sweep_matches(self):
        scalar = UniformLatencyModel(k=16, n=2, message_length=32, kernel="scalar")
        vector = UniformLatencyModel(k=16, n=2, message_length=32, kernel="vector")
        rates = np.linspace(0.0, 1.6e-3, 20)
        s, v = scalar.sweep(rates), vector.sweep(rates)
        assert [p.saturated for p in s.points] == [p.saturated for p in v.points]
        for p, q in zip(s.points, v.points):
            if not p.saturated:
                assert q.latency == pytest.approx(p.latency, rel=REL_TOL)


class TestKernelSelection:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_MODEL_KERNEL", raising=False)
        assert resolve_model_kernel() == "vector"
        m = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.2)
        assert m.kernel == "vector"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_KERNEL", "scalar")
        m = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.2)
        assert m.kernel == "scalar"
        u = UniformLatencyModel(k=8, n=2, message_length=16)
        assert u.kernel == "scalar"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_KERNEL", "scalar")
        m = HotSpotLatencyModel(
            k=8, message_length=16, hotspot_fraction=0.2, kernel="vector"
        )
        assert m.kernel == "vector"

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_KERNEL", "simd")
        with pytest.raises(ValueError, match="REPRO_MODEL_KERNEL"):
            resolve_model_kernel()

    def test_bad_argument_raises(self):
        with pytest.raises(ValueError, match="kernel"):
            HotSpotLatencyModel(
                k=8, message_length=16, hotspot_fraction=0.2, kernel="simd"
            )


class TestBatchContract:
    """evaluate_batch invariants beyond pointwise equivalence."""

    def test_batch_matches_individual_evaluates(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        rates = [0.0, 1e-4, 8e-4, 2e-3, 0.05]
        batch = model.evaluate_batch(rates, chain=False)
        for rate, res in zip(rates, batch):
            solo = model.evaluate(rate)
            assert res.saturated == solo.saturated
            if not res.saturated:
                assert res.latency == solo.latency  # identical solve path
                assert res.iterations == solo.iterations

    def test_unordered_rates_preserve_input_order(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        rates = [8e-4, 0.0, 2e-4]
        out = model.evaluate_batch(rates, chain=False)
        assert [r.rate for r in out] == rates
        assert out[1].iterations == 0  # zero load needs no solve

    def test_initials_warm_start_batch(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        cold = model.evaluate(5e-4)
        warm = model.evaluate_batch(
            [5e-4], initials=[cold.fixed_point_state], chain=False
        )[0]
        assert warm.iterations <= 2
        assert warm.latency == pytest.approx(cold.latency, rel=1e-9)

    def test_zero_rate_ignores_warm_initial(self):
        """Rate 0 must use the exact zero-load state even when a warm
        initial from a loaded solve is supplied (the scalar contract)."""
        for model in (
            HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.4),
            UniformLatencyModel(k=8, n=2, message_length=16),
        ):
            loaded = model.evaluate(2e-4)
            warm_zero = model.evaluate(0.0, initial=loaded.fixed_point_state)
            assert warm_zero.latency == model.evaluate(0.0).latency
            assert warm_zero.iterations == 0

    def test_bad_initials_shape_raises(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        with pytest.raises(ValueError, match="shape"):
            model.evaluate_batch([1e-4], initials=[np.zeros(3)])
        with pytest.raises(ValueError, match="initial states"):
            model.evaluate_batch([1e-4, 2e-4], initials=[None])

    def test_negative_rate_raises(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        with pytest.raises(ValueError, match="non-negative"):
            model.evaluate_batch([1e-4, -1e-4])

    def test_empty_batch(self):
        model = HotSpotLatencyModel(k=8, message_length=16, hotspot_fraction=0.3)
        assert model.evaluate_batch([]) == []
