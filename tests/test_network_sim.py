"""End-to-end tests of the flit-level simulation (TorusWorkload/Simulation)."""

import math
from dataclasses import replace

import pytest

from repro.simulator import Simulation, SimulationConfig
from repro.simulator.network import TorusWorkload
from repro.traffic.patterns import TransposePattern


BASE = SimulationConfig(
    k=4,
    n=2,
    message_length=8,
    rate=2e-3,
    hotspot_fraction=0.0,
    warmup_cycles=1_000,
    measure_cycles=15_000,
    seed=11,
)


class TestConservation:
    def test_messages_conserved(self):
        w = TorusWorkload(BASE)
        w.run()
        c = w.engine.counters
        assert c.generated == c.completed + c.backlog
        assert c.backlog == len(w.engine.messages) + sum(
            len(q) for q in w.engine._source_queues.values()
        )

    def test_flit_moves_equal_length_times_hops(self):
        """Every completed message moved exactly length*hops flits, so
        total moves >= completed contribution (in-flight residue aside)."""
        w = TorusWorkload(BASE)
        w.run()
        # Drain what's left by running with arrivals exhausted.
        # (Simply bound-check: moves per completion between min and max
        # possible.)
        lm = BASE.message_length
        min_hops, max_hops = 1, 2 * (BASE.k - 1)
        c = w.engine.counters
        assert c.flit_moves >= c.completed * lm * min_hops
        assert c.flit_moves <= c.generated * lm * max_hops

    def test_no_vc_leak_after_drain(self):
        cfg = replace(BASE, rate=5e-4, measure_cycles=5_000)
        w = TorusWorkload(cfg)
        w.run()
        # Run on without new arrivals until in-flight messages drain.
        w._arrivals.clear()
        guard = 0
        while w.engine.messages:
            w.engine.step()
            guard += 1
            assert guard < 50_000
        for pool in w.engine.pools:
            assert pool.busy_count == 0


class TestStatisticsSanity:
    def test_mean_hops_matches_uniform_expectation(self):
        res = Simulation(BASE).run()
        # Uniform over N-1 destinations: E[hops] = n*(k-1)/2 * N/(N-1).
        n_nodes = BASE.num_nodes
        expected = 2 * (BASE.k - 1) / 2 * n_nodes / (n_nodes - 1)
        assert res.mean_hops == pytest.approx(expected, rel=0.05)

    def test_zero_load_latency(self):
        cfg = replace(BASE, rate=5e-5, measure_cycles=200_000, warmup_cycles=0)
        res = Simulation(cfg).run()
        # Nearly contention-free: latency ~ Lm + hops - 1.
        expected = BASE.message_length + res.mean_hops - 1
        assert res.mean_latency == pytest.approx(expected, rel=0.08)

    def test_channel_utilization_matches_rate_equation(self):
        """Measured per-channel flit utilisation must equal
        lam * k-bar * Lm * N/(N-1) under uniform traffic."""
        cfg = replace(BASE, rate=4e-3, measure_cycles=40_000)
        w = TorusWorkload(cfg)
        w.run()
        util = w.measured_channel_utilization()
        n_nodes = cfg.num_nodes
        expected = (
            cfg.rate * (cfg.k - 1) / 2 * cfg.message_length * n_nodes / (n_nodes - 1)
        )
        assert util.mean() == pytest.approx(expected, rel=0.1)

    def test_determinism(self):
        a = Simulation(BASE).run()
        b = Simulation(BASE).run()
        assert a.mean_latency == b.mean_latency
        assert a.num_completed == b.num_completed

    def test_seed_changes_stream(self):
        a = Simulation(BASE).run()
        b = Simulation(replace(BASE, seed=12)).run()
        assert a.mean_latency != b.mean_latency

    def test_zero_rate(self):
        res = Simulation(replace(BASE, rate=0.0)).run()
        assert res.num_completed == 0
        assert math.isnan(res.mean_latency)
        assert not res.saturated


class TestHotSpotWorkload:
    def test_hot_message_share(self):
        cfg = replace(BASE, hotspot_fraction=0.5, rate=1e-3)
        w = TorusWorkload(cfg)
        w.run()
        total = w.all_stats.count
        hot = w.hot_stats.count
        # Destination-based classification: h + (1-h)/(N-1).
        expected = 0.5 + 0.5 / (cfg.num_nodes - 1)
        assert hot / total == pytest.approx(expected, abs=0.05)

    def test_hot_messages_slower(self):
        cfg = replace(
            BASE, hotspot_fraction=0.4, rate=2.5e-3, measure_cycles=40_000
        )
        w = TorusWorkload(cfg)
        w.run()
        assert w.hot_stats.mean > w.regular_stats.mean

    def test_hot_sink_is_hottest_channel(self):
        cfg = replace(
            BASE, hotspot_fraction=0.6, rate=2e-3, measure_cycles=40_000
        )
        sim = Simulation(cfg)
        res = sim.run()
        assert res.hot_sink_utilization == pytest.approx(
            res.max_channel_utilization, rel=0.15
        )

    def test_custom_hot_node(self):
        cfg = replace(BASE, hotspot_fraction=0.5, hotspot_node=(2, 3))
        w = TorusWorkload(cfg)
        assert w.pattern.hotspot_rank == w.network.rank((2, 3))
        w.run()
        assert w.hot_stats.count > 0


class TestSaturationDetection:
    def test_overload_flags_saturated(self):
        # Way past the bandwidth bound: k=4, Lm=8 uniform saturates
        # around lam ~ 1/((k-1)/2*Lm) ~ 0.083.
        cfg = replace(BASE, rate=0.2, measure_cycles=30_000, warmup_cycles=500)
        res = Simulation(cfg).run()
        assert res.saturated

    def test_moderate_load_not_saturated(self):
        res = Simulation(BASE).run()
        assert not res.saturated

    def test_hotspot_saturates_earlier_than_uniform(self):
        rate = 0.02  # below uniform saturation, above hot-spot one
        uni = Simulation(replace(BASE, rate=rate, measure_cycles=30_000)).run()
        hot = Simulation(
            replace(
                BASE, rate=rate, hotspot_fraction=0.5, measure_cycles=30_000
            )
        ).run()
        assert not uni.saturated
        assert hot.saturated


class TestCustomPattern:
    def test_transpose_pattern_runs(self):
        w = TorusWorkload(BASE, pattern=TransposePattern(TorusWorkload(BASE).network))
        w.run()
        assert w.all_stats.count > 0
        # No hot classification under a non-hot-spot pattern.
        assert w.hot_stats.count == 0
