"""Tests for the uniform-traffic baseline model (repro.core.uniform)."""

import math

import pytest

from repro.core.uniform import UniformLatencyModel


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(k=2, n=2, message_length=8)
        with pytest.raises(ValueError):
            UniformLatencyModel(k=8, n=0, message_length=8)
        with pytest.raises(ValueError):
            UniformLatencyModel(k=8, n=2, message_length=0)
        with pytest.raises(ValueError):
            UniformLatencyModel(k=8, n=2, message_length=8, num_vcs=1)

    def test_zero_load_structure(self):
        k, lm = 8, 16
        m = UniformLatencyModel(k=k, n=2, message_length=lm, trip_averaging=False)
        res = m.evaluate(0.0)
        assert res.finite
        # Literal convention: entry dim 0 (weight k/(k+1)) costs
        # k + mix(continuation), entry dim 1 costs k + Lm.
        assert res.latency > lm + k  # at least one full ring + drain
        assert res.mean_multiplexing_x == 1.0
        # Default (trip-averaged) mode charges the mean trip instead.
        avg = UniformLatencyModel(k=k, n=2, message_length=lm).evaluate(0.0)
        assert lm < avg.latency < res.latency

    def test_monotone_in_rate(self):
        m = UniformLatencyModel(k=8, n=2, message_length=16)
        lats = [m.evaluate(r).latency for r in (0.0005, 0.001, 0.002, 0.004)]
        assert all(a < b for a, b in zip(lats, lats[1:]))

    def test_saturates(self):
        m = UniformLatencyModel(k=8, n=2, message_length=16)
        res = m.evaluate(0.05)
        assert res.saturated and res.latency == math.inf

    def test_saturation_near_bandwidth_bound(self):
        """The model saturates below the pure bandwidth bound
        lam*(k-1)/2*(Lm+1) = 1 (the source-queue term of eq 32 — whose
        service time is the full network latency — gives out first) but
        within a factor ~2 of it."""
        k, lm = 8, 16
        m = UniformLatencyModel(k=k, n=2, message_length=lm)
        bound = 1.0 / ((k - 1) / 2 * (lm + 1))
        assert not m.evaluate(bound * 0.5).saturated
        assert m.evaluate(bound * 1.05).saturated

    def test_dimension_count_raises_latency(self):
        m2 = UniformLatencyModel(k=6, n=2, message_length=16)
        m3 = UniformLatencyModel(k=6, n=3, message_length=16)
        assert m3.evaluate(0.001).latency > m2.evaluate(0.001).latency

    def test_trip_averaging_lowers_latency(self):
        lit = UniformLatencyModel(k=8, n=2, message_length=16, trip_averaging=False)
        avg = UniformLatencyModel(k=8, n=2, message_length=16, trip_averaging=True)
        assert avg.evaluate(0.001).latency < lit.evaluate(0.001).latency

    def test_sweep(self):
        m = UniformLatencyModel(k=8, n=2, message_length=16)
        sw = m.sweep([0.001, 0.05])
        assert not sw.points[0].saturated
        assert sw.points[1].saturated

    def test_negative_rate_rejected(self):
        m = UniformLatencyModel(k=8, n=2, message_length=16)
        with pytest.raises(ValueError):
            m.evaluate(-0.1)


class TestPolicyVariants:
    def test_holding_policy_more_conservative(self):
        base = dict(k=8, n=2, message_length=16)
        tx = UniformLatencyModel(**base, blocking_service="transmission")
        hold = UniformLatencyModel(**base, blocking_service="holding")
        rate = 0.004
        a, b = tx.evaluate(rate), hold.evaluate(rate)
        if not b.saturated:
            assert b.latency >= a.latency
        else:
            assert not a.saturated or a.latency == math.inf
