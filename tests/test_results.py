"""Tests for the result dataclasses (repro.core.results)."""

import math

import pytest

from repro.core.results import (
    LatencyBreakdown,
    ModelResult,
    SweepPoint,
    SweepResult,
)


class TestLatencyBreakdown:
    def test_totals(self):
        b = LatencyBreakdown(
            regular_hot_ring=1.0,
            regular_nonhot_ring=2.0,
            regular_enter_x=3.0,
            hot_from_hot_ring=4.0,
            hot_from_x=5.0,
            regular_source_wait=0.5,
            regular_network_latency=6.0,
        )
        assert b.regular_total == pytest.approx(6.0)
        assert b.hot_total == pytest.approx(9.0)


class TestModelResult:
    def test_finite_flags(self):
        ok = ModelResult(rate=1e-4, latency=50.0, saturated=False, iterations=3)
        assert ok.finite
        sat = ModelResult(rate=1e-2, latency=math.inf, saturated=True, iterations=1)
        assert not sat.finite

    def test_nan_latency_not_finite(self):
        weird = ModelResult(rate=0.0, latency=math.nan, saturated=False, iterations=0)
        assert not weird.finite


class TestSweepResult:
    def _sweep(self):
        return SweepResult(
            label="s",
            points=[
                SweepPoint(1e-4, 10.0, False),
                SweepPoint(2e-4, 20.0, False),
                SweepPoint(3e-4, math.inf, True),
                SweepPoint(4e-4, math.inf, True),
            ],
        )

    def test_accessors(self):
        s = self._sweep()
        assert s.rates == [1e-4, 2e-4, 3e-4, 4e-4]
        assert s.latencies[:2] == [10.0, 20.0]

    def test_finite_points(self):
        assert len(self._sweep().finite_points()) == 2

    def test_saturation_rate_first_saturated(self):
        assert self._sweep().saturation_rate() == 3e-4

    def test_no_saturation(self):
        s = SweepResult(label="s", points=[SweepPoint(1e-4, 10.0, False)])
        assert s.saturation_rate() is None
