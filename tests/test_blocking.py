"""Unit tests for repro.queueing.blocking (eqs 26-30)."""

import math

import pytest

from repro.queueing.blocking import (
    BlockingInputs,
    blocking_delay,
    blocking_probability,
    weighted_service_time,
)
from repro.queueing.mg1 import mg1_waiting_time


class TestInputs:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BlockingInputs(-0.1, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BlockingInputs(0.1, -0.2, 1.0, 1.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            BlockingInputs(0.1, 0.1, -1.0, 1.0)


class TestWeightedService:
    def test_eq30_weighting(self):
        inp = BlockingInputs(lam=0.02, gam=0.01, s_lam=30.0, s_gam=60.0)
        assert weighted_service_time(inp) == pytest.approx(
            (0.02 * 30 + 0.01 * 60) / 0.03
        )

    def test_zero_traffic(self):
        assert weighted_service_time(BlockingInputs(0, 0, 10, 10)) == 0.0

    def test_single_class_reduces_to_its_service(self):
        inp = BlockingInputs(lam=0.02, gam=0.0, s_lam=30.0, s_gam=99.0)
        assert weighted_service_time(inp) == 30.0


class TestProbability:
    def test_eq27(self):
        inp = BlockingInputs(0.01, 0.02, 30.0, 10.0)
        assert blocking_probability(inp) == pytest.approx(0.01 * 30 + 0.02 * 10)

    def test_clamped_to_one(self):
        inp = BlockingInputs(1.0, 1.0, 30.0, 10.0)
        assert blocking_probability(inp) == 1.0

    def test_zero_at_zero_load(self):
        assert blocking_probability(BlockingInputs(0, 0, 30, 10)) == 0.0


class TestDelay:
    def test_zero_when_no_traffic(self):
        assert blocking_delay(BlockingInputs(0, 0, 30, 10), 32) == 0.0

    def test_infinite_at_saturation(self):
        # utilisation = 0.05*30 = 1.5 >= 1
        assert blocking_delay(BlockingInputs(0.05, 0, 30, 0), 16) == math.inf

    def test_eq26_product_form(self):
        inp = BlockingInputs(0.004, 0.002, 40.0, 35.0)
        s_bar = weighted_service_time(inp)
        expected = blocking_probability(inp) * mg1_waiting_time(
            0.006, s_bar, 32.0
        )
        assert blocking_delay(inp, 32.0) == pytest.approx(expected)

    def test_monotone_in_hot_rate(self):
        delays = [
            blocking_delay(BlockingInputs(0.003, g, 40.0, 35.0), 32.0)
            for g in (0.0, 0.005, 0.01, 0.015)
        ]
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]

    def test_symmetric_in_class_labels(self):
        a = blocking_delay(BlockingInputs(0.003, 0.004, 40.0, 20.0), 32.0)
        b = blocking_delay(BlockingInputs(0.004, 0.003, 20.0, 40.0), 32.0)
        assert a == pytest.approx(b)

    def test_finite_below_saturation(self):
        d = blocking_delay(BlockingInputs(0.01, 0.01, 40.0, 40.0), 32.0)
        assert 0 < d < math.inf
