"""Unit tests for repro.core.equations (path probabilities + recurrences)."""

import itertools

import numpy as np
import pytest

from repro.core.equations import (
    PathProbabilities,
    chained_service_profile,
    hot_x_service_profile,
    hot_y_service_profile,
    regular_service_profile,
)
from repro.topology import KAryNCube


class TestPathProbabilities:
    @pytest.mark.parametrize("k", [3, 4, 8, 16])
    def test_total_is_one(self, k):
        assert PathProbabilities(k=k).total() == pytest.approx(1.0)

    def test_eq12_eq13_eq14_coefficients(self):
        p = PathProbabilities(k=16)
        assert p.p_hot_y_only == pytest.approx(1 / (16 * 17))
        assert p.p_nonhot_y_only == pytest.approx(15 / (16 * 17))
        assert p.p_enter_x == pytest.approx(16 / 17)

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_matches_pair_enumeration(self, k):
        """The class probabilities are exact for uniform destinations."""
        net = KAryNCube(k=k, n=2)
        hot = (0, 0)
        counts = {"hy": 0, "hybar": 0, "x_only": 0, "xhy": 0, "xhybar": 0}
        n = net.num_nodes
        for s, d in itertools.product(net.nodes(), repeat=2):
            if s == d:
                continue
            if s[0] == d[0]:  # same column: y-only
                if d[0] == hot[0]:
                    counts["hy"] += 1
                else:
                    counts["hybar"] += 1
            else:
                if s[1] == d[1]:
                    counts["x_only"] += 1
                elif d[0] == hot[0]:
                    counts["xhy"] += 1
                else:
                    counts["xhybar"] += 1
        total = n * (n - 1)
        p = PathProbabilities(k=k)
        assert counts["hy"] / total == pytest.approx(p.p_hot_y_only)
        assert counts["hybar"] / total == pytest.approx(p.p_nonhot_y_only)
        assert counts["x_only"] / total == pytest.approx(
            p.p_enter_x * p.p_x_only_given_x
        )
        assert counts["xhy"] / total == pytest.approx(
            p.p_enter_x * p.p_x_to_hot_given_x
        )
        assert counts["xhybar"] / total == pytest.approx(
            p.p_enter_x * p.p_x_to_nonhot_given_x
        )


class TestRegularProfile:
    def test_zero_blocking_closed_form(self):
        prof = regular_service_profile(k=8, blocking=0.0, message_length=32)
        assert prof.shape == (8,)
        assert np.allclose(prof, np.arange(1, 9) + 32)

    def test_blocking_added_per_hop(self):
        prof = regular_service_profile(k=4, blocking=2.5, message_length=10)
        assert np.allclose(prof, np.arange(1, 5) * 3.5 + 10)

    def test_recurrence_equivalence(self):
        # S_j = 1 + B + S_{j-1}, S_1 = 1 + B + Lm.
        b, lm, k = 1.7, 20, 6
        prof = regular_service_profile(k, b, lm)
        assert prof[0] == pytest.approx(1 + b + lm)
        for j in range(1, k):
            assert prof[j] == pytest.approx(1 + b + prof[j - 1])

    def test_infinite_blocking_propagates(self):
        prof = regular_service_profile(4, np.inf, 8)
        assert np.all(np.isinf(prof))

    def test_validation(self):
        with pytest.raises(ValueError):
            regular_service_profile(1, 0.0, 8)
        with pytest.raises(ValueError):
            regular_service_profile(4, 0.0, 0)


class TestChainedProfile:
    def test_chains_into_next_dimension(self):
        prof = chained_service_profile(k=4, blocking=0.0, next_dimension_entry=50.0)
        assert np.allclose(prof, np.arange(1, 5) + 50.0)

    def test_recurrence(self):
        b, entry, k = 0.8, 44.0, 5
        prof = chained_service_profile(k, b, entry)
        assert prof[0] == pytest.approx(1 + b + entry)
        for j in range(1, k):
            assert prof[j] == pytest.approx(1 + b + prof[j - 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            chained_service_profile(4, 0.0, -1.0)


class TestHotYProfile:
    def test_zero_blocking(self):
        prof = hot_y_service_profile(8, np.zeros(7), 32)
        assert np.allclose(prof, np.arange(1, 8) + 32)

    def test_position_dependent_blocking(self):
        b = np.array([5.0, 0.0, 1.0])
        prof = hot_y_service_profile(4, b, 10)
        assert prof[0] == pytest.approx(1 + 5 + 10)
        assert prof[1] == pytest.approx(1 + 0 + prof[0])
        assert prof[2] == pytest.approx(1 + 1 + prof[1])

    def test_accepts_length_k_padding(self):
        prof = hot_y_service_profile(4, np.zeros(4), 10)
        assert prof.shape == (3,)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            hot_y_service_profile(4, np.zeros(2), 10)


class TestHotXProfile:
    def test_last_hop_cases(self):
        k, lm = 4, 16
        hy = hot_y_service_profile(k, np.zeros(k - 1), lm)
        prof = hot_x_service_profile(k, np.zeros((k - 1, k)), hy, lm)
        assert prof.shape == (k - 1, k)
        # j=1, hot row (t=k): delivers -> 1 + Lm.
        assert prof[0, k - 1] == pytest.approx(1 + lm)
        # j=1, t<k: chains into hot ring at distance t.
        for t in range(1, k):
            assert prof[0, t - 1] == pytest.approx(1 + hy[t - 1])

    def test_j_recurrence(self):
        k, lm = 5, 8
        rng = np.random.default_rng(0)
        b = rng.uniform(0, 3, size=(k - 1, k))
        hy = hot_y_service_profile(k, np.zeros(k - 1), lm)
        prof = hot_x_service_profile(k, b, hy, lm)
        for j in range(1, k - 1):
            for t in range(k):
                assert prof[j, t] == pytest.approx(1 + b[j, t] + prof[j - 1, t])

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            hot_x_service_profile(4, np.zeros((2, 4)), np.zeros(3), 8)
        with pytest.raises(ValueError):
            hot_x_service_profile(4, np.zeros((3, 4)), np.zeros(2), 8)

    def test_zero_load_total_distance(self):
        """At zero load S^h_x(j,t) = j + t + Lm for t<k (x hops + y hops
        + drain) and j + Lm for t = k."""
        k, lm = 6, 20
        hy = hot_y_service_profile(k, np.zeros(k - 1), lm)
        prof = hot_x_service_profile(k, np.zeros((k - 1, k)), hy, lm)
        for j in range(1, k):
            for t in range(1, k + 1):
                expected = j + (t if t < k else 0) + lm
                assert prof[j - 1, t - 1] == pytest.approx(expected)
