"""Unit tests for repro.core.fixed_point."""

import numpy as np
import pytest

from repro.core.fixed_point import (
    FixedPointSolver,
    FixedPointStatus,
)


class TestConvergence:
    def test_linear_contraction(self):
        # x -> 0.5 x + 1 has fixed point 2.
        solver = FixedPointSolver(tol=1e-12, damping=1.0)
        result = solver.solve(lambda x: 0.5 * x + 1.0, np.array([0.0]))
        assert result.converged
        assert result.state[0] == pytest.approx(2.0, abs=1e-9)

    def test_vector_fixed_point(self):
        a = np.array([[0.3, 0.1], [0.0, 0.4]])
        b = np.array([1.0, 2.0])
        solver = FixedPointSolver()
        result = solver.solve(lambda x: a @ x + b, np.zeros(2))
        expected = np.linalg.solve(np.eye(2) - a, b)
        assert result.converged
        assert np.allclose(result.state, expected, atol=1e-7)

    def test_damping_stabilises_oscillation(self):
        # x -> -0.99 x + 2 oscillates with plain iteration but has fixed
        # point ~1.005; damping converges it quickly.
        solver = FixedPointSolver(damping=0.5, tol=1e-10)
        result = solver.solve(lambda x: -0.99 * x + 2.0, np.array([10.0]))
        assert result.converged
        assert result.state[0] == pytest.approx(2.0 / 1.99, abs=1e-6)

    def test_iterations_reported(self):
        solver = FixedPointSolver(tol=1e-10, damping=1.0)
        result = solver.solve(lambda x: 0.5 * x, np.array([1.0]))
        assert result.iterations > 1
        assert result.residual < 1e-10


class TestSaturation:
    def test_inf_reports_saturated(self):
        solver = FixedPointSolver()
        result = solver.solve(lambda x: np.array([np.inf]), np.array([1.0]))
        assert result.status is FixedPointStatus.SATURATED
        assert not result.converged

    def test_nan_reports_saturated(self):
        solver = FixedPointSolver()
        result = solver.solve(lambda x: np.array([np.nan]), np.array([1.0]))
        assert result.status is FixedPointStatus.SATURATED

    def test_divergence_hits_budget(self):
        solver = FixedPointSolver(max_iterations=50, damping=1.0)
        result = solver.solve(lambda x: 2.0 * x + 1.0, np.array([1.0]))
        assert result.status is FixedPointStatus.MAX_ITERATIONS


class TestValidation:
    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            FixedPointSolver(tol=0.0)

    def test_bad_damping(self):
        with pytest.raises(ValueError):
            FixedPointSolver(damping=0.0)
        with pytest.raises(ValueError):
            FixedPointSolver(damping=1.5)

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            FixedPointSolver(max_iterations=0)

    def test_nonfinite_initial_rejected(self):
        solver = FixedPointSolver()
        with pytest.raises(ValueError):
            solver.solve(lambda x: x, np.array([np.inf]))

    def test_shape_change_rejected(self):
        solver = FixedPointSolver()
        with pytest.raises(ValueError):
            solver.solve(lambda x: np.zeros(3), np.zeros(2))
